//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of the proptest API the workspace's property
//! suites use: the [`proptest!`] test macro with `#![proptest_config]`,
//! range / tuple / [`strategy::Just`] / [`prop_oneof!`] /
//! [`collection::vec`] strategies, [`strategy::Strategy::prop_map`], and
//! the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   rendered via `Debug`, but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   full module path, so failures reproduce across runs. Set
//!   `PROPTEST_SEED=<u64>` to explore a different stream, and
//!   `PROPTEST_CASES=<n>` to override the case count.

pub mod test_runner {
    //! Test-case driver: config and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Resolves the effective case count (`PROPTEST_CASES` wins).
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic RNG used to generate test cases (the vendored
    /// `rand::rngs::SmallRng`, so the workspace carries one RNG core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: rand::rngs::SmallRng,
    }

    impl TestRng {
        /// Derives a reproducible RNG from a test's identity string,
        /// mixed with `PROPTEST_SEED` when set.
        pub fn deterministic(identity: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in identity.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = extra.parse::<u64>() {
                    h ^= seed.rotate_left(17);
                }
            }
            use rand::SeedableRng;
            Self {
                rng: rand::rngs::SmallRng::seed_from_u64(h),
            }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.rng.next_u64()
        }

        /// Uniform value in `[0, bound)` (rejection sampled, unbiased).
        pub fn below(&mut self, bound: u64) -> u64 {
            use rand::Rng;
            debug_assert!(bound > 0);
            if bound == 1 {
                return 0;
            }
            self.rng.gen_range(0..bound)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Primitive types generable by [`any`].
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T` (see [`any`]).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates arbitrary values of a primitive type: `any::<u64>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block runs
/// `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Build each strategy once; the loop only generates from it
                // (the inner `let` shadows the strategy with its value).
                $(let $arg = $strat;)+
                for _case in 0..cfg.effective_cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Token {
        Num(u64),
        Flag,
    }

    fn token_strategy() -> impl Strategy<Value = Token> {
        prop_oneof![(0u64..100).prop_map(Token::Num), Just(Token::Flag)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, y in -3i64..3) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..10, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_tuples(t in (0usize..3, crate::collection::vec(token_strategy(), 1..4))) {
            let (idx, toks) = t;
            prop_assert!(idx < 3);
            prop_assert!(!toks.is_empty());
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
