//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no network access, so this vendored shim
//! provides the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, matching the
//! algorithm family of the real `SmallRng` on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic per seed but are NOT bit-identical to the
//! real crate's — seeded data generation stays reproducible within this
//! repository, which is all the workload generators require.

/// A random number generator core: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next uniformly random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly random 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed type (kept opaque; only [`SeedableRng::seed_from_u64`] is used here).
    type Seed;

    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a half-open or inclusive range.
///
/// Mirroring the real crate, [`SampleRange`] has single blanket impls over
/// `Range<T>` / `RangeInclusive<T>` for `T: SampleUniform` — that shape is
/// what lets type inference flow through `rng.gen_range(0..5)` from the
/// surrounding expression (e.g. a slice index forcing `usize`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample in `[low, high]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + sample_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + sample_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                low + (uniform_f64(rng.next_u64()) as $t) * (high - low)
            }

            fn sample_inclusive<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                Self::sample_half_open(rng, low, high)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Uniform sample in `[0, span)` by rejection, avoiding modulo bias.
fn sample_below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Widening-multiply trick on 64-bit spans; rejection keeps it unbiased.
    let span64 = span as u64;
    if span == span64 as u128 {
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    }
    // Spans above 2^64 never occur for the ranges this workspace samples.
    let hi = rng.next_u64() as u128;
    let lo = rng.next_u64() as u128;
    ((hi << 64) | lo) % span
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++ (the algorithm family of the real
    /// `SmallRng` on 64-bit platforms), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.s = [n0, n1, n2, n3];
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Extension trait adding random operations to slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(0usize..=7);
            assert!(u <= 7);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should not be identity");
    }
}
