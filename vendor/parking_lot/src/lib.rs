//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this vendored shim maps
//! the subset of the `parking_lot` API the workspace uses onto `std::sync`
//! primitives. Semantics differ from the real crate only in fairness and
//! performance, never in correctness: poisoning is swallowed (parking_lot
//! locks do not poison), and guards are the `std` guard types re-exported
//! under the `parking_lot` names.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(41);
        *l.write() += 1;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
