//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of the Criterion API the workspace's benches use
//! — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures for real — per-sample wall-clock medians over an adaptively
//! chosen iteration count — but performs no statistical regression
//! analysis, produces no HTML reports, and keeps runs short. Swap in the
//! real crate (same manifests, same bench sources) when network access and
//! publication-grade statistics are needed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; harness flags like `--bench` are skipped.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Mirrors the real API: CLI args are already applied in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks `f` outside of any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.filter.as_deref(), 20, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter rendering.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier rendering only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every iteration.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// `iter_batched` with per-iteration batches, as the real crate allows.
    pub fn iter_batched<S, O, Setup, R>(&mut self, setup: Setup, routine: R, _size: BatchSize)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

/// Batch sizing hint (accepted for compatibility; batches are size 1).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

fn run_benchmark(
    name: &str,
    filter: Option<&str>,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    // Calibration sample: find an iteration count that makes one sample
    // take roughly 5ms, so cheap routines aren't all-noise.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<60} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter_with_setup(|| vec![x; 8], |v| v.iter().sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 0.5).to_string(), "f/0.5");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
