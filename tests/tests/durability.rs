//! Crash-point-exhaustive recovery testing.
//!
//! The strong durability property: run a randomized workload against a
//! [`DurableWriter`] on the fault-injecting `SimFs`, crash at **every**
//! filesystem-operation boundary (append, fsync, rename, dir-fsync,
//! remove — the fuse trips the k-th op and every one after it), tear and
//! occasionally bit-flip whatever was not synced, recover — and the
//! recovered table must be **byte-identical** (via `state_image`: rows,
//! patch sets, anchors, advisor counters, routing cursor, statement
//! counter) to the original run's state at some published epoch. Under
//! the syncing WAL policies the recovered epoch must additionally cover
//! every publish that returned `Ok` before the crash.
//!
//! `stress_crash_recovery` is the seeded CI lane: `PI_DUR_ITERS` scales
//! the number of randomized workloads swept exhaustively.

use std::io;
use std::sync::Arc;

use patchindex::{Constraint, Design, IndexedTable, MaintenanceMode, MaintenancePolicy, SortDir};
use pi_durability::{state_image, DurableOptions, DurableWriter, SyncPolicy};
use pi_storage::dfs::{DurableFs, SimFs};
use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

const PARTS: usize = 3;
const DIR: &str = "/db";

/// One workload statement. Partition/slot choices are seeds resolved
/// against the live state at apply time, so a statement stream replays
/// deterministically from any prefix.
#[derive(Debug, Clone)]
enum Stmt {
    Insert(Vec<i64>),
    Modify {
        pid: usize,
        rid_seeds: Vec<u32>,
        value: i64,
    },
    Delete {
        pid: usize,
        rid_seeds: Vec<u32>,
    },
    AddIndex {
        kind: u8,
    },
    DropIndex {
        seed: usize,
    },
    Recompute {
        seed: usize,
    },
    Flush,
    Feedback {
        seed: usize,
        saved: f64,
    },
    Publish,
}

fn fresh() -> IndexedTable {
    let mut t = Table::new(
        "crash",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
        PARTS,
        Partitioning::RoundRobin,
    );
    for pid in 0..PARTS {
        let base = pid as i64 * 100;
        t.load_partition(
            pid,
            &[
                ColumnData::Int(vec![base, base + 1, base + 2, base + 3]),
                ColumnData::Int(vec![base, base, base + 7, base + 9]),
            ],
        );
    }
    t.propagate_all();
    IndexedTable::new(t)
}

fn index_kind(kind: u8) -> (usize, Constraint, Design) {
    match kind % 5 {
        0 => (1, Constraint::NearlyUnique, Design::Bitmap),
        1 => (1, Constraint::NearlyUnique, Design::Identifier),
        2 => (0, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap),
        3 => (
            0,
            Constraint::NearlySorted(SortDir::Desc),
            Design::Identifier,
        ),
        _ => (1, Constraint::NearlyConstant, Design::Bitmap),
    }
}

/// Applies one statement; returns whether it was a successful publish.
/// An `Err` means the statement was neither logged nor applied.
fn apply(dw: &mut DurableWriter, stmt: &Stmt) -> io::Result<bool> {
    let nidx = dw.staging().indexes().len();
    match stmt {
        Stmt::Insert(values) => {
            // Keys derive from the statement counter: deterministic
            // across the reference run, fused reruns and WAL replay.
            let base = 100_000 + dw.staging().statements() as i64 * 100;
            let rows: Vec<Vec<Value>> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| vec![Value::Int(base + i as i64), Value::Int(v)])
                .collect();
            dw.insert(&rows)?;
        }
        Stmt::Modify {
            pid,
            rid_seeds,
            value,
        } => {
            let pid = pid % PARTS;
            let len = dw.staging().table().partition(pid).visible_len();
            if len > 0 {
                let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
                rids.sort_unstable();
                rids.dedup();
                let values: Vec<Value> = rids.iter().map(|_| Value::Int(*value)).collect();
                dw.modify(pid, &rids, 1, &values)?;
            }
        }
        Stmt::Delete { pid, rid_seeds } => {
            let pid = pid % PARTS;
            let len = dw.staging().table().partition(pid).visible_len();
            if len > 0 {
                let rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
                dw.delete(pid, &rids)?;
            }
        }
        Stmt::AddIndex { kind } => {
            if nidx < 4 {
                let (col, constraint, design) = index_kind(*kind);
                dw.add_index(col, constraint, design)?;
            }
        }
        Stmt::DropIndex { seed } => {
            if nidx > 0 {
                dw.drop_index(seed % nidx)?;
            }
        }
        Stmt::Recompute { seed } => {
            if nidx > 0 {
                dw.recompute_index(seed % nidx)?;
            }
        }
        Stmt::Flush => dw.flush_maintenance()?,
        Stmt::Feedback { seed, saved } => {
            if nidx > 0 {
                dw.record_query_feedback(seed % nidx, *saved)?;
            }
        }
        Stmt::Publish => {
            dw.publish()?;
            return Ok(true);
        }
    }
    Ok(false)
}

struct Run {
    /// `images[e]` = state image at published epoch `e` (0 = creation).
    images: Vec<Vec<u8>>,
    /// Publishes that returned `Ok`.
    ok_publishes: u64,
    /// Whether `DurableWriter::create` itself succeeded.
    created: bool,
}

/// Creates a durable table and pushes the statement stream through it,
/// stopping at the first IO error, snapshotting the state image at each
/// successful publish.
fn drive(fs: Arc<SimFs>, stmts: &[Stmt], policy: MaintenancePolicy, opts: DurableOptions) -> Run {
    let dyn_fs: Arc<dyn DurableFs> = fs;
    let (_handle, mut dw) =
        match DurableWriter::create(fresh().with_policy(policy), dyn_fs, DIR, opts) {
            Ok(pair) => pair,
            Err(_) => {
                return Run {
                    images: Vec::new(),
                    ok_publishes: 0,
                    created: false,
                }
            }
        };
    let mut images = vec![state_image(dw.staging())];
    for stmt in stmts {
        match apply(&mut dw, stmt) {
            Ok(true) => images.push(state_image(dw.staging())),
            Ok(false) => {}
            Err(_) => break,
        }
    }
    let ok_publishes = images.len() as u64 - 1;
    Run {
        images,
        ok_publishes,
        created: true,
    }
}

fn opts_for(sync: SyncPolicy) -> DurableOptions {
    DurableOptions {
        sync,
        // Small segments and frequent checkpoints/compactions so the
        // crash sweep crosses every protocol transition, not just the
        // happy middle of one giant segment.
        wal_segment_bytes: 256,
        checkpoint_every: 2,
        compact_every: 2,
    }
}

/// The exhaustive sweep: crash at every `stride`-th IO boundary of the
/// workload and check the recovery property at each.
fn crash_sweep(stmts: &[Stmt], policy: MaintenancePolicy, sync: SyncPolicy, stride: u64) {
    let opts = opts_for(sync);
    let reference_fs = Arc::new(SimFs::new());
    let reference = drive(reference_fs.clone(), stmts, policy, opts);
    assert!(reference.created, "unfused run must not fail");
    let total_ops = reference_fs.ops();

    let mut crash_point = 1u64;
    while crash_point <= total_ops {
        let fs = Arc::new(SimFs::new());
        fs.set_fuse(Some(crash_point));
        let run = drive(fs.clone(), stmts, policy, opts);
        fs.crash(crash_point.wrapping_mul(0x9E37_79B9) ^ 0x5EED);

        let recovered = DurableWriter::recover(fs.clone(), DIR, opts, policy);
        if !run.created {
            // Crashed before (or right at) making the initial manifest
            // durable: recovery either finds no table, or finds epoch 0.
            if let Ok((_h, dw, report)) = recovered {
                assert_eq!(report.epoch, 0, "crash point {crash_point}");
                assert_eq!(
                    state_image(dw.staging()),
                    reference.images[0],
                    "crash point {crash_point}"
                );
            }
        } else {
            let (_h, dw, report) = recovered
                .unwrap_or_else(|e| panic!("crash point {crash_point}: recovery failed: {e}"));
            if sync != SyncPolicy::OsBuffered {
                assert!(
                    report.epoch >= run.ok_publishes,
                    "crash point {crash_point}: acknowledged epoch lost \
                     (recovered {}, acknowledged {})",
                    report.epoch,
                    run.ok_publishes
                );
            }
            assert!(
                report.epoch <= run.ok_publishes + 1,
                "crash point {crash_point}: recovered past the workload"
            );
            assert_eq!(
                state_image(dw.staging()),
                reference.images[report.epoch as usize],
                "crash point {crash_point}: epoch {} diverged",
                report.epoch
            );
            dw.staging().check_consistency();
        }
        crash_point += stride;
    }
}

/// Deterministic statement stream shared by the exhaustive sweeps.
fn stream(seed: u64, len: usize) -> Vec<Stmt> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = vec![
        Stmt::AddIndex { kind: 0 },
        Stmt::AddIndex { kind: 2 },
        Stmt::Publish,
    ];
    for _ in 0..len {
        out.push(match rng.gen_range(0..13) {
            0..=3 => Stmt::Insert(
                (0..rng.gen_range(1..5))
                    .map(|_| rng.gen_range(-50i64..50))
                    .collect(),
            ),
            4 | 5 => Stmt::Modify {
                pid: rng.gen_range(0..PARTS),
                rid_seeds: (0..rng.gen_range(1..4)).map(|_| rng.next_u32()).collect(),
                value: rng.gen_range(-50..50),
            },
            6 => Stmt::Delete {
                pid: rng.gen_range(0..PARTS),
                rid_seeds: vec![rng.next_u32()],
            },
            7 => Stmt::AddIndex {
                kind: rng.gen_range(0..5),
            },
            8 => Stmt::DropIndex {
                seed: rng.next_u32() as usize,
            },
            9 => Stmt::Recompute {
                seed: rng.next_u32() as usize,
            },
            10 => Stmt::Flush,
            11 => Stmt::Feedback {
                seed: rng.next_u32() as usize,
                saved: rng.gen_range(0..100) as f64,
            },
            _ => Stmt::Publish,
        });
    }
    out.push(Stmt::Publish);
    out
}

fn eager() -> MaintenancePolicy {
    MaintenancePolicy::default()
}

fn deferred() -> MaintenancePolicy {
    MaintenancePolicy {
        mode: MaintenanceMode::Deferred { flush_rows: 4 },
        ..MaintenancePolicy::default()
    }
}

#[test]
fn crash_every_io_boundary_every_record() {
    crash_sweep(&stream(0xA11CE, 26), eager(), SyncPolicy::EveryRecord, 1);
}

#[test]
fn crash_every_io_boundary_every_publish() {
    crash_sweep(&stream(0xA11CE, 26), eager(), SyncPolicy::EveryPublish, 1);
}

#[test]
fn crash_every_io_boundary_deferred_maintenance() {
    crash_sweep(
        &stream(0x0B0B_51ED, 22),
        deferred(),
        SyncPolicy::EveryRecord,
        1,
    );
}

#[test]
fn os_buffered_still_recovers_a_published_prefix() {
    crash_sweep(&stream(0xFACADE, 22), eager(), SyncPolicy::OsBuffered, 3);
}

/// A flipped bit in the retained WAL (silent media corruption rather
/// than a torn write) must degrade recovery to an earlier published
/// epoch, never derail it or corrupt state.
#[test]
fn bit_flip_in_the_wal_degrades_to_an_earlier_epoch() {
    let opts = DurableOptions {
        // Checkpoint rarely so the WAL tail carries real recovery weight.
        checkpoint_every: 100,
        ..opts_for(SyncPolicy::EveryRecord)
    };
    let policy = eager();
    let stmts = stream(0xF1A6, 20);
    let reference_fs = Arc::new(SimFs::new());
    let reference = drive(reference_fs.clone(), &stmts, policy, opts);

    for flip_seed in 0u64..8 {
        let fs = Arc::new(SimFs::new());
        let run = drive(fs.clone(), &stmts, policy, opts);
        assert!(run.created);
        // Flip one bit somewhere in the newest WAL segment.
        let segs: Vec<_> = fs
            .list(std::path::Path::new(DIR))
            .unwrap()
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
            })
            .collect();
        let seg = segs.last().unwrap();
        let len = fs.len(seg).unwrap();
        let mut rng = SmallRng::seed_from_u64(flip_seed);
        fs.flip_bit(seg, rng.gen_range(0..len), rng.gen_range(0..8));

        let (_h, dw, report) = DurableWriter::recover(fs.clone(), DIR, opts, policy).unwrap();
        assert!(report.epoch <= run.ok_publishes);
        assert_eq!(
            state_image(dw.staging()),
            reference.images[report.epoch as usize],
            "flip seed {flip_seed}"
        );
        dw.staging().check_consistency();
    }
}

// Randomized streams, sampled crash points, both syncing policies.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn random_streams_survive_sampled_crash_points(
        seed in any::<u32>(),
        len in 12usize..28,
    ) {
        let stmts = stream(seed as u64, len);
        crash_sweep(&stmts, eager(), SyncPolicy::EveryRecord, 7);
        crash_sweep(&stmts, eager(), SyncPolicy::EveryPublish, 7);
    }
}

/// Seeded stress lane (CI raises `PI_DUR_ITERS`): full exhaustive sweeps
/// over longer randomized workloads in both maintenance modes.
#[test]
fn stress_crash_recovery() {
    let iters: usize = std::env::var("PI_DUR_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut rng = SmallRng::seed_from_u64(0xD0_0B1E);
    for _ in 0..iters {
        let stmts = stream(rng.next_u64(), rng.gen_range(18..36));
        crash_sweep(&stmts, eager(), SyncPolicy::EveryRecord, 1);
        crash_sweep(&stmts, deferred(), SyncPolicy::EveryPublish, 1);
    }
}
