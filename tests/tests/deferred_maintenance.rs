//! Deferred maintenance end-to-end: under *arbitrary* interleavings of
//! inserts, modifies, deletes and mid-stream flushes, the deferred flush
//! must reproduce the eager patch sets **byte-identically** for NUC and
//! NCC (including cross-partition NUC collisions), and the
//! staged-exception routing must keep queries correct before any flush.

use std::panic::{catch_unwind, AssertUnwindSafe};

use patchindex::{Constraint, Design, IndexedTable, MaintenanceMode, MaintenancePolicy, SortDir};
use pi_datagen::MicroKind;
use pi_exec::ops::sort::SortOrder;
use pi_integration::micro;
use pi_planner::{execute, execute_count, optimize, Plan, QueryEngine, NO_INDEXES};
use pi_storage::Value;
use proptest::prelude::*;

fn deferred_policy(flush_rows: usize) -> MaintenancePolicy {
    MaintenancePolicy {
        mode: MaintenanceMode::Deferred { flush_rows },
        ..MaintenancePolicy::default()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Modify {
        pid: usize,
        rid_seeds: Vec<u32>,
        values: Vec<i64>,
    },
    Delete {
        pid: usize,
        rid_seeds: Vec<u32>,
    },
    /// Explicit mid-stream flush (no-op for the eager twin).
    Flush,
}

/// Values are drawn from a small pool so collisions — also across
/// partitions — happen all the time.
fn op_strategy() -> impl Strategy<Value = Op> {
    let insert = || proptest::collection::vec(-30i64..30, 1..10).prop_map(Op::Insert);
    let modify = || {
        (
            0usize..3,
            proptest::collection::vec(any::<u32>(), 1..6),
            proptest::collection::vec(-30i64..30, 6..7),
        )
            .prop_map(|(pid, rid_seeds, values)| Op::Modify {
                pid,
                rid_seeds,
                values,
            })
    };
    prop_oneof![
        insert(),
        insert(),
        modify(),
        modify(),
        (0usize..3, proptest::collection::vec(any::<u32>(), 1..5))
            .prop_map(|(pid, rid_seeds)| Op::Delete { pid, rid_seeds }),
        Just(Op::Flush),
    ]
}

fn apply(it: &mut IndexedTable, op: &Op, next_key: &mut i64) {
    match op {
        Op::Insert(values) => {
            let rows: Vec<Vec<Value>> = values
                .iter()
                .map(|&v| {
                    *next_key += 1;
                    vec![Value::Int(*next_key), Value::Int(v)]
                })
                .collect();
            it.insert(&rows);
        }
        Op::Modify {
            pid,
            rid_seeds,
            values,
        } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            let vals: Vec<Value> = rids
                .iter()
                .zip(values.iter().cycle())
                .map(|(_, &v)| Value::Int(v))
                .collect();
            it.modify(*pid, &rids, 1, &vals);
        }
        Op::Delete { pid, rid_seeds } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            let rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            it.delete(*pid, &rids);
        }
        Op::Flush => it.flush_maintenance(),
    }
}

/// Per-partition patch rowIDs of one index.
fn patch_sets(it: &IndexedTable, slot: usize) -> Vec<Vec<u64>> {
    (0..it.index(slot).partition_count())
        .map(|pid| it.index(slot).partition(pid).store.patch_rids())
        .collect()
}

/// Runs the same op stream through an eager twin and a deferred twin
/// (identical seeded dataset), final-flushes the deferred one and returns
/// both tables for comparison.
fn run_twins(
    kind: MicroKind,
    constraint: Constraint,
    design: Design,
    flush_rows: usize,
    ops: &[Op],
) -> (IndexedTable, IndexedTable, usize) {
    let mut eager = IndexedTable::new(micro(300, 0.1, kind).table);
    let mut deferred =
        IndexedTable::new(micro(300, 0.1, kind).table).with_policy(deferred_policy(flush_rows));
    let slot = eager.add_index(1, constraint, design);
    assert_eq!(deferred.add_index(1, constraint, design), slot);
    let (mut k1, mut k2) = (1_000_000i64, 1_000_000i64);
    for op in ops {
        apply(&mut eager, op, &mut k1);
        apply(&mut deferred, op, &mut k2);
    }
    deferred.flush_maintenance();
    (eager, deferred, slot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // NUC, both designs: byte-identical patch sets after the flush, for
    // random insert/modify/delete/flush interleavings over 3 partitions.
    #[test]
    fn nuc_deferred_flush_matches_eager_byte_identically(
        ops in proptest::collection::vec(op_strategy(), 1..14),
        bitmap in any::<bool>(),
    ) {
        let design = if bitmap { Design::Bitmap } else { Design::Identifier };
        let (eager, deferred, slot) =
            run_twins(MicroKind::Nuc, Constraint::NearlyUnique, design, usize::MAX, &ops);
        eager.check_consistency();
        deferred.check_consistency();
        prop_assert_eq!(patch_sets(&eager, slot), patch_sets(&deferred, slot));
        prop_assert_eq!(eager.index(slot).nrows(), deferred.index(slot).nrows());
    }

    // Auto-flush thresholds cut the stream at arbitrary points; the
    // result must not depend on where the flushes landed.
    #[test]
    fn nuc_auto_flush_threshold_is_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..14),
        flush_rows in 1usize..12,
    ) {
        let (eager, deferred, slot) = run_twins(
            MicroKind::Nuc, Constraint::NearlyUnique, Design::Bitmap, flush_rows, &ops);
        deferred.check_consistency();
        prop_assert_eq!(patch_sets(&eager, slot), patch_sets(&deferred, slot));
    }

    // NCC replay: byte-identical including the order-sensitive constant
    // adoption.
    #[test]
    fn ncc_deferred_flush_matches_eager_byte_identically(
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let (eager, deferred, slot) = run_twins(
            MicroKind::Nuc, Constraint::NearlyConstant, Design::Bitmap, usize::MAX, &ops);
        eager.check_consistency();
        deferred.check_consistency();
        prop_assert_eq!(patch_sets(&eager, slot), patch_sets(&deferred, slot));
    }

    // NSC: the deferred flush runs ONE merged LIS extension per
    // partition, which may keep strictly more rows than eager's
    // per-statement greedy extensions — never fewer, and never an
    // inconsistent state. (Deletes excluded: after a flush divergence
    // the twins' rowID spaces are no longer comparable under deletes.)
    #[test]
    fn nsc_deferred_flush_consistent_and_no_worse_than_eager(
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let ops: Vec<Op> =
            ops.into_iter().filter(|op| !matches!(op, Op::Delete { .. })).collect();
        let (eager, deferred, slot) = run_twins(
            MicroKind::Nsc,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
            usize::MAX,
            &ops,
        );
        eager.check_consistency();
        deferred.check_consistency();
        prop_assert!(
            deferred.index(slot).exception_count() <= eager.index(slot).exception_count()
        );
    }

    // The staged-exception contract: while NSC maintenance is pending,
    // the rewritten sort query still matches the reference result — all
    // staged rows are routed through the exception flow, so the kept flow
    // really is sorted. (NUC plans exploiting patch/kept value
    // disjointness instead fall under the flush-before-query contract,
    // exercised in `check_consistency_pending_vs_flushed`.)
    #[test]
    fn nsc_queries_stay_correct_while_maintenance_pending(
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let mut it = IndexedTable::new(micro(300, 0.1, MicroKind::Nsc).table)
            .with_policy(deferred_policy(usize::MAX));
        let slot = it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let mut next_key = 1_000_000i64;
        for op in &ops {
            apply(&mut it, op, &mut next_key);
            // No flush here: query with whatever is pending right now.
            // (The facade never flushes NSC-bound plans either — staged
            // rows route through the exception flow.)
            let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
            let reference = execute(&plan, it.table(), NO_INDEXES);
            let pending_before = it.index(slot).has_pending();
            let got = it.query(&plan);
            prop_assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
            prop_assert_eq!(it.index(slot).has_pending(), pending_before);
        }
    }
}

/// The flush contract of `check_consistency`: a staged collision makes the
/// check fail (the partner row is only patched by the flush), queries stay
/// correct regardless, and after `flush_maintenance()` the check passes.
#[test]
fn check_consistency_pending_vs_flushed() {
    let mut it = IndexedTable::new(micro(300, 0.0, MicroKind::Nuc).table)
        .with_policy(deferred_policy(usize::MAX));
    let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    assert_eq!(it.index(slot).exception_count(), 0);

    // Duplicate an existing value within one partition: the staged row is
    // conservatively patched, but its partner (a kept row with the same
    // value) is not — exactly the state check_consistency must reject.
    let existing = it.table().partition(0).value_at(1, 0);
    let Value::Int(dup) = existing else {
        panic!("int column")
    };
    it.modify(0, &[1], 1, &[Value::Int(dup)]);
    assert!(it.index(slot).has_pending());

    // The flush-before-query contract for NUC: the distinct rewrite
    // exploits that patch values never appear among kept rows — exactly
    // the invariant a staged-but-unflushed collision suspends. The
    // conservative routing never *loses* rows, so the rewritten count can
    // only exceed the reference until the flush restores the invariant.
    // (Hand-wiring planner + executor bypasses the facade's
    // NUC-disjointness flush on purpose here.)
    let plan = Plan::scan(vec![1]).distinct(vec![0]);
    let reference = execute_count(&plan, it.table(), NO_INDEXES);
    let pending_cat = it.catalog();
    let opt = optimize(plan.clone(), &pending_cat, false);
    assert!(execute_count(&opt, it.table(), it.indexes()) >= reference);

    // Consistency (and with it the disjointness the rewrite needs) only
    // holds again after the flush.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let pending_check = catch_unwind(AssertUnwindSafe(|| it.check_consistency()));
    std::panic::set_hook(hook);
    assert!(
        pending_check.is_err(),
        "pending collision must fail the consistency check"
    );

    it.flush_maintenance();
    it.check_consistency();
    assert_eq!(it.index(slot).exception_count(), 2);
    // Flushed: the rewritten plan is exact again — and the facade, which
    // would have flushed up front, agrees.
    assert_eq!(it.query_count(&plan), reference);
}

/// The facade closes the stale-pending-state hole the direct wiring
/// leaves open: a NUC-bound distinct through `QueryEngine::query` flushes
/// first and is exact even while a collision is staged.
#[test]
fn query_engine_flushes_nuc_disjointness_plans() {
    let mut it = IndexedTable::new(micro(300, 0.0, MicroKind::Nuc).table)
        .with_policy(deferred_policy(usize::MAX));
    let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    let Value::Int(dup) = it.table().partition(0).value_at(1, 0) else {
        panic!("int column")
    };
    it.modify(0, &[1], 1, &[Value::Int(dup)]);
    assert!(it.index(slot).has_pending());

    let plan = Plan::scan(vec![1]).distinct(vec![0]);
    let reference = execute_count(&plan, it.table(), NO_INDEXES);
    assert_eq!(it.query_count(&plan), reference);
    assert!(
        !it.index(slot).has_pending(),
        "facade must flush the bound NUC index"
    );
    it.check_consistency();
}

/// Regression: a value acquired and abandoned entirely while pending
/// (insert 7, modify it to 8) must patch exactly what eager would have
/// patched — nothing, unless a third row held 7 in the meantime.
#[test]
fn transient_values_reproduce_eager_semantics() {
    for (values, touch_existing) in [(vec![7i64, 8], false), (vec![7, 8], true)] {
        let mut eager = IndexedTable::new(micro(60, 0.0, MicroKind::Nuc).table);
        let mut deferred = IndexedTable::new(micro(60, 0.0, MicroKind::Nuc).table)
            .with_policy(deferred_policy(usize::MAX));
        let slot_e = eager.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let slot_d = deferred.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        for it in [&mut eager, &mut deferred] {
            // Pin a known value onto an existing row, or not.
            if touch_existing {
                it.modify(0, &[0], 1, &[Value::Int(values[0])]);
            }
            let addr = it.insert(&[vec![Value::Int(777), Value::Int(values[0])]])[0];
            it.modify(addr.partition, &[addr.rid], 1, &[Value::Int(values[1])]);
        }
        deferred.flush_maintenance();
        eager.check_consistency();
        deferred.check_consistency();
        assert_eq!(
            patch_sets(&eager, slot_e),
            patch_sets(&deferred, slot_d),
            "touch_existing={touch_existing}"
        );
    }
}

/// Checkpointing mid-epoch would persist conservative patch bits without
/// the value histories needed to ever repair them — it must refuse.
#[test]
#[should_panic(expected = "flush deferred maintenance")]
fn checkpoint_with_pending_maintenance_panics() {
    let mut it = IndexedTable::new(micro(60, 0.0, MicroKind::Nuc).table)
        .with_policy(deferred_policy(usize::MAX));
    let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    it.insert(&[vec![Value::Int(7_000_000), Value::Int(1)]]);
    assert!(it.index(slot).has_pending());
    let path = std::env::temp_dir().join("pi_pending_checkpoint_test.bin");
    let _ = it.index(slot).checkpoint(&path);
}

/// Regression: a rowID repeated within one modify statement (last-wins,
/// accepted by the table and by eager maintenance) must not corrupt the
/// staged value history or the interval sweep.
#[test]
fn duplicate_rids_in_one_modify_statement() {
    let mut eager = IndexedTable::new(micro(60, 0.0, MicroKind::Nuc).table);
    let mut deferred = IndexedTable::new(micro(60, 0.0, MicroKind::Nuc).table)
        .with_policy(deferred_policy(usize::MAX));
    let slot = eager.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    assert_eq!(
        deferred.add_index(1, Constraint::NearlyUnique, Design::Bitmap),
        slot
    );
    for it in [&mut eager, &mut deferred] {
        // Same rid twice in one statement, then a genuine collision with
        // the post-statement value from another row.
        it.modify(0, &[2, 2], 1, &[Value::Int(500), Value::Int(501)]);
        it.modify(0, &[3], 1, &[Value::Int(501)]);
    }
    deferred.flush_maintenance();
    eager.check_consistency();
    deferred.check_consistency();
    assert_eq!(patch_sets(&eager, slot), patch_sets(&deferred, slot));
}
