//! Snapshot isolation under concurrent reads and background maintenance.
//!
//! The central property (the PR's acceptance bar): **every query result
//! observed by a concurrent reader thread during a randomized
//! insert/modify/delete/recompute stream is byte-identical to the same
//! query replayed on a single-threaded reference table holding exactly
//! the sequentially-consistent prefix of the stream that the reader's
//! snapshot epoch was published from.** The writer computes the
//! reference answers (index-free executions over its staging table) at
//! every publish; readers then look their snapshot's epoch up and demand
//! exact agreement — torn epochs, half-applied patch sets or a wrong
//! pending-NUC fallback would all surface as a mismatch.
//!
//! Value pools are partition-disjoint (KeyRange routing), mirroring how
//! the paper's microbenchmark partitions by the indexed column. Since
//! the cross-partition deduplication pass, recompute is globally sound
//! even for duplicate pools that straddle partitions — the adversarial
//! `cross_partition` test drives that case explicitly; this suite keeps
//! the paper's partition-disjoint shape.
//!
//! The `stress_reader_writer_storm` test scales with `PI_STRESS_ITERS` /
//! `PI_STRESS_THREADS` for the dedicated CI stress lane.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use patchindex::{
    ConcurrentTable, Constraint, Design, IndexedTable, MaintenanceMode, MaintenancePolicy, SortDir,
};
use pi_exec::ops::sort::SortOrder;
use pi_planner::{execute, execute_count, Plan, QueryEngine, NO_INDEXES};
use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PARTS: usize = 3;
/// Partition `p` owns keys `[p*1000, (p+1)*1000)` and values
/// `[p*100, p*100+40)` — duplicates happen constantly, but only within a
/// partition (see the module docs).
const VAL_POOL: i64 = 40;

fn base_table(rows_per_part: usize) -> Table {
    let mut t = Table::new(
        "conc",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
        PARTS,
        Partitioning::KeyRange {
            col: 0,
            boundaries: vec![1000, 2000],
        },
    );
    for pid in 0..PARTS {
        let keys: Vec<i64> = (0..rows_per_part as i64)
            .map(|i| pid as i64 * 1000 + i)
            .collect();
        // Start clean-ish: mostly unique, ascending values per partition.
        let vals: Vec<i64> = (0..rows_per_part as i64)
            .map(|i| pid as i64 * 100 + (i % VAL_POOL))
            .collect();
        t.load_partition(pid, &[ColumnData::Int(keys), ColumnData::Int(vals)]);
    }
    t.propagate_all();
    t
}

#[derive(Debug, Clone)]
enum Op {
    /// `(pid, value-offset)` rows, keys fresh per pid.
    Insert(Vec<(usize, i64)>),
    Modify {
        pid: usize,
        rid_seeds: Vec<u32>,
        val_seeds: Vec<i64>,
    },
    Delete {
        pid: usize,
        rid_seeds: Vec<u32>,
    },
    /// Recompute one index (seed picks the slot).
    Recompute(u8),
    Flush,
    Publish,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let insert =
        || proptest::collection::vec((0usize..PARTS, 0i64..VAL_POOL), 1..8).prop_map(Op::Insert);
    let modify = || {
        (
            0usize..PARTS,
            proptest::collection::vec(any::<u32>(), 1..6),
            proptest::collection::vec(0i64..VAL_POOL, 6..7),
        )
            .prop_map(|(pid, rid_seeds, val_seeds)| Op::Modify {
                pid,
                rid_seeds,
                val_seeds,
            })
    };
    prop_oneof![
        insert(),
        insert(),
        modify(),
        modify(),
        (0usize..PARTS, proptest::collection::vec(any::<u32>(), 1..4))
            .prop_map(|(pid, rid_seeds)| Op::Delete { pid, rid_seeds }),
        any::<u8>().prop_map(Op::Recompute),
        Just(Op::Flush),
        Just(Op::Publish),
    ]
}

/// Applies one op to the staging table behind the writer.
fn apply(it: &mut IndexedTable, op: &Op, next_key: &mut [i64; PARTS]) {
    match op {
        Op::Insert(rows) => {
            let rows: Vec<Vec<Value>> = rows
                .iter()
                .map(|&(pid, off)| {
                    next_key[pid] += 1;
                    // Keys stay inside the pid's KeyRange band.
                    let key = pid as i64 * 1000 + 100 + (next_key[pid] % 890);
                    vec![Value::Int(key), Value::Int(pid as i64 * 100 + off)]
                })
                .collect();
            it.insert(&rows);
        }
        Op::Modify {
            pid,
            rid_seeds,
            val_seeds,
        } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            let values: Vec<Value> = rids
                .iter()
                .zip(val_seeds.iter().cycle())
                .map(|(_, &off)| Value::Int(*pid as i64 * 100 + off))
                .collect();
            it.modify(*pid, &rids, 1, &values);
        }
        Op::Delete { pid, rid_seeds } => {
            let len = it.table().partition(*pid).visible_len();
            if len <= 2 {
                return; // keep partitions non-empty
            }
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            rids.truncate(len - 2);
            it.delete(*pid, &rids);
        }
        Op::Recompute(seed) => {
            if !it.indexes().is_empty() {
                it.recompute_index(*seed as usize % it.indexes().len());
            }
        }
        Op::Flush => it.flush_maintenance(),
        Op::Publish => {} // handled by the driver
    }
}

/// The per-epoch reference answers, computed index-free on the writer's
/// staging table at publish time.
#[derive(Debug, PartialEq)]
struct Expected {
    distinct: usize,
    sorted: Vec<i64>,
    rows: usize,
}

fn expected_of(it: &IndexedTable, distinct: &Plan, sort: &Plan) -> Expected {
    let sorted = execute(sort, it.table(), NO_INDEXES);
    Expected {
        distinct: execute_count(distinct, it.table(), NO_INDEXES),
        sorted: if sorted.is_empty() {
            Vec::new()
        } else {
            sorted.column(0).as_int().to_vec()
        },
        rows: it.table().visible_len(),
    }
}

/// Drives `ops` through a `TableWriter` while `nreaders` threads verify
/// every snapshot they can grab against the per-epoch reference answers.
/// Returns the number of reader verifications performed.
fn run_stream(ops: &[Op], policy: MaintenancePolicy, nreaders: usize) -> u64 {
    let mut it = IndexedTable::new(base_table(60)).with_policy(policy);
    it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    it.add_index(
        1,
        Constraint::NearlySorted(SortDir::Asc),
        Design::Identifier,
    );
    let distinct = Plan::scan(vec![1]).distinct(vec![0]);
    let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);

    let expected: Mutex<HashMap<u64, Expected>> = Mutex::new(HashMap::new());
    expected
        .lock()
        .unwrap()
        .insert(0, expected_of(&it, &distinct, &sort));
    let (handle, mut writer) = ConcurrentTable::new(it);
    let stop = AtomicBool::new(false);
    let verified = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..nreaders {
            let handle = handle.clone();
            let (stop, verified, expected) = (&stop, &verified, &expected);
            let (distinct, sort) = (&distinct, &sort);
            scope.spawn(move || loop {
                let mut snap = handle.snapshot();
                let got_distinct = snap.query_count(distinct);
                let sorted = snap.query(sort);
                let got_sorted: Vec<i64> = if sorted.is_empty() {
                    Vec::new()
                } else {
                    sorted.column(0).as_int().to_vec()
                };
                {
                    let map = expected.lock().unwrap();
                    let want = &map[&snap.epoch()];
                    assert_eq!(got_distinct, want.distinct, "epoch {}", snap.epoch());
                    assert_eq!(got_sorted, want.sorted, "epoch {}", snap.epoch());
                    assert_eq!(
                        snap.table().visible_len(),
                        want.rows,
                        "epoch {}",
                        snap.epoch()
                    );
                }
                verified.fetch_add(1, Ordering::Relaxed);
                // Check the stop flag *after* a full verification so
                // every run verifies at least one snapshot.
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            });
        }

        let mut next_key = [0i64; PARTS];
        for op in ops {
            apply(writer.staging_mut(), op, &mut next_key);
            if matches!(op, Op::Publish) {
                // The reference answer must exist before the epoch is
                // visible to any reader.
                let want = expected_of(writer.staging(), &distinct, &sort);
                let epoch = writer.epoch() + 1;
                expected.lock().unwrap().insert(epoch, want);
                writer.publish();
            }
        }
        // Final publish so the end state is read at least once.
        let want = expected_of(writer.staging(), &distinct, &sort);
        expected.lock().unwrap().insert(writer.epoch() + 1, want);
        writer.publish();
        stop.store(true, Ordering::Relaxed);
    });

    // The writer's own state stays sound too (flush first: deferred work
    // may be staged, and check_consistency demands exactness).
    let mut it = writer.into_inner();
    it.flush_maintenance();
    it.check_consistency();
    verified.load(Ordering::Relaxed)
}

fn eager() -> MaintenancePolicy {
    MaintenancePolicy::default()
}

fn deferred(flush_rows: usize) -> MaintenancePolicy {
    MaintenancePolicy {
        mode: MaintenanceMode::Deferred { flush_rows },
        ..MaintenancePolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Eager maintenance: every concurrently observed result equals its
    // epoch's sequential replay.
    #[test]
    fn concurrent_reads_are_sequentially_consistent_eager(
        ops in proptest::collection::vec(op_strategy(), 4..24),
    ) {
        let verified = run_stream(&ops, eager(), 2);
        prop_assert!(verified > 0);
    }

    // Deferred maintenance: snapshots may carry staged (pending) state —
    // including pending NUC indexes, where the reader-side fallback rule
    // must keep distinct counts exact without a flush.
    #[test]
    fn concurrent_reads_are_sequentially_consistent_deferred(
        ops in proptest::collection::vec(op_strategy(), 4..24),
        flush_rows in prop_oneof![Just(4usize), Just(64), Just(usize::MAX)],
    ) {
        let verified = run_stream(&ops, deferred(flush_rows), 2);
        prop_assert!(verified > 0);
    }
}

/// The CI stress lane: a seeded high-volume storm, scaled by
/// `PI_STRESS_ITERS` (randomized streams per policy) and
/// `PI_STRESS_THREADS` (reader threads). Defaults are smoke-sized; the
/// dedicated CI step raises both.
#[test]
fn stress_reader_writer_storm() {
    let iters: usize = std::env::var("PI_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let threads: usize = std::env::var("PI_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut total = 0u64;
    for iter in 0..iters {
        let mut rng = SmallRng::seed_from_u64(0x57AE55 + iter as u64);
        let ops: Vec<Op> = (0..120)
            .map(|_| match rng.gen_range(0..10) {
                0..=2 => Op::Insert(
                    (0..rng.gen_range(1..8))
                        .map(|_| (rng.gen_range(0..PARTS), rng.gen_range(0..VAL_POOL)))
                        .collect(),
                ),
                3..=5 => Op::Modify {
                    pid: rng.gen_range(0..PARTS),
                    rid_seeds: (0..rng.gen_range(1..12))
                        .map(|_| rng.gen_range(0..u32::MAX))
                        .collect(),
                    val_seeds: (0..6).map(|_| rng.gen_range(0..VAL_POOL)).collect(),
                },
                6 => Op::Delete {
                    pid: rng.gen_range(0..PARTS),
                    rid_seeds: (0..rng.gen_range(1..6))
                        .map(|_| rng.gen_range(0..u32::MAX))
                        .collect(),
                },
                7 => Op::Recompute(rng.gen_range(0..=u8::MAX)),
                8 => Op::Flush,
                _ => Op::Publish,
            })
            .collect();
        let policy = if iter % 2 == 0 { eager() } else { deferred(32) };
        total += run_stream(&ops, policy, threads);
    }
    assert!(total > 0, "stress readers must have verified snapshots");
    println!("stress: {total} reader verifications across {iters} storms x {threads} readers");
}

/// The advisor steps against the writer's staging state and publishes its
/// actions as a new epoch — readers keep verifying throughout.
#[test]
fn advisor_steps_through_the_writer() {
    use pi_advisor::{Advisor, AdvisorConfig};
    // Unique values: the sampled NUC match fraction is 1.0, so reader
    // query evidence alone decides whether the create rule fires.
    let mut t = Table::new(
        "adv",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
        PARTS,
        Partitioning::KeyRange {
            col: 0,
            boundaries: vec![1000, 2000],
        },
    );
    for pid in 0..PARTS {
        let keys: Vec<i64> = (0..200).map(|i| pid as i64 * 1000 + i).collect();
        let vals: Vec<i64> = (0..200).map(|i| pid as i64 * 10_000 + i * 7).collect();
        t.load_partition(pid, &[ColumnData::Int(keys), ColumnData::Int(vals)]);
    }
    t.propagate_all();
    let it = IndexedTable::new(t);
    let (handle, mut writer) = ConcurrentTable::new(it);
    let mut advisor = Advisor::new(AdvisorConfig {
        min_queries: 2,
        ..AdvisorConfig::default()
    });
    let distinct = Plan::scan(vec![1]).distinct(vec![0]);

    // Reader queries on snapshots feed the sink; the advisor absorbs that
    // evidence through the writer and auto-creates the index.
    let reference = execute_count(&distinct, handle.snapshot().table(), NO_INDEXES);
    for _ in 0..4 {
        let mut snap = handle.snapshot();
        assert_eq!(snap.query_count(&distinct), reference);
    }
    assert!(handle.snapshot().indexes().is_empty());
    let actions = advisor.step_writer(&mut writer);
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, pi_advisor::AdvisorAction::Created { .. })),
        "reader-reported workload evidence must drive the create rule: {actions:?}"
    );
    // The advised epoch serves the new index to fresh snapshots, with
    // identical results.
    let mut snap = handle.snapshot();
    assert_eq!(snap.indexes().len(), 1);
    assert!(snap.plan_query(&distinct).to_string().contains("PatchScan"));
    assert_eq!(snap.query_count(&distinct), reference);
}
