//! Property test for the `QueryEngine` facade: across random tables,
//! partition counts, index sets (NUC/NSC, both physical designs, several
//! indexes on one table) and random update streams — including
//! deferred-mode pending states and mid-stream flushes — every facade
//! result is byte-identical to the same logical plan executed as an
//! unoptimized full scan. Ordered outputs (sort, limit-over-sort) are
//! compared verbatim; bag outputs (distinct) are compared as canonically
//! sorted row sets, which for single-column integer results is exact
//! content equality.

use patchindex::{Constraint, Design, IndexedTable, MaintenanceMode, MaintenancePolicy, SortDir};
use pi_datagen::{generate, MicroKind, MicroSpec};
use pi_exec::ops::sort::SortOrder;
use pi_exec::Batch;
use pi_planner::{execute, Plan, QueryEngine, NO_INDEXES};
use pi_storage::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Modify {
        pid_seed: usize,
        rid_seeds: Vec<u32>,
        values: Vec<i64>,
    },
    Delete {
        pid_seed: usize,
        rid_seeds: Vec<u32>,
    },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(-40i64..40, 1..10).prop_map(Op::Insert),
        (
            0usize..8,
            proptest::collection::vec(any::<u32>(), 1..6),
            proptest::collection::vec(-40i64..40, 6..7)
        )
            .prop_map(|(pid_seed, rid_seeds, values)| Op::Modify {
                pid_seed,
                rid_seeds,
                values
            }),
        (0usize..8, proptest::collection::vec(any::<u32>(), 1..5)).prop_map(
            |(pid_seed, rid_seeds)| Op::Delete {
                pid_seed,
                rid_seeds
            }
        ),
        Just(Op::Flush),
    ]
}

fn apply(it: &mut IndexedTable, op: &Op, next_key: &mut i64) {
    let parts = it.table().partition_count();
    match op {
        Op::Insert(values) => {
            let rows: Vec<Vec<Value>> = values
                .iter()
                .map(|&v| {
                    *next_key += 1;
                    vec![Value::Int(*next_key), Value::Int(v)]
                })
                .collect();
            it.insert(&rows);
        }
        Op::Modify {
            pid_seed,
            rid_seeds,
            values,
        } => {
            let pid = pid_seed % parts;
            let len = it.table().partition(pid).visible_len();
            if len == 0 {
                return;
            }
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            let vals: Vec<Value> = rids
                .iter()
                .zip(values.iter().cycle())
                .map(|(_, &v)| Value::Int(v))
                .collect();
            it.modify(pid, &rids, 1, &vals);
        }
        Op::Delete {
            pid_seed,
            rid_seeds,
        } => {
            let pid = pid_seed % parts;
            let len = it.table().partition(pid).visible_len();
            if len == 0 {
                return;
            }
            let rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            it.delete(pid, &rids);
        }
        Op::Flush => it.flush_maintenance(),
    }
}

fn column_vec(b: &Batch) -> Vec<i64> {
    if b.is_empty() && b.width() == 0 {
        Vec::new()
    } else {
        b.column(0).as_int().to_vec()
    }
}

/// Compares facade vs unoptimized results for the whole query suite.
fn assert_queries_match(it: &mut IndexedTable, ctx: &str) {
    // DISTINCT val — bag output: canonical row order.
    let distinct = Plan::scan(vec![1]).distinct(vec![0]);
    let mut reference = column_vec(&execute(&distinct, it.table(), NO_INDEXES));
    let mut got = column_vec(&it.query(&distinct));
    reference.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, reference, "{ctx}: distinct");

    // ORDER BY val — verbatim.
    let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
    let reference = column_vec(&execute(&sort, it.table(), NO_INDEXES));
    let got = column_vec(&it.query(&sort));
    assert_eq!(got, reference, "{ctx}: sort");

    // SELECT DISTINCT … ORDER BY — sorted distinct values: self-checking
    // (strictly increasing), not just facade-vs-reference, so a lowering
    // that loses cross-partition dedup fails even if both paths share it.
    let distinct_sorted = Plan::scan(vec![1])
        .distinct(vec![0])
        .sort(vec![(0, SortOrder::Asc)]);
    let got = column_vec(&it.query(&distinct_sorted));
    assert!(
        got.windows(2).all(|w| w[0] < w[1]),
        "{ctx}: distinct+sort not unique-sorted"
    );
    let reference = column_vec(&execute(&distinct_sorted, it.table(), NO_INDEXES));
    assert_eq!(got, reference, "{ctx}: distinct+sort");

    // LIMIT over the sorted flow and over the plain scan — verbatim
    // (the scan limit exercises the per-partition pushdown).
    for n in [0usize, 3, 17, 1_000_000] {
        let top = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]).limit(n);
        let reference = column_vec(&execute(&top, it.table(), NO_INDEXES));
        let got = column_vec(&it.query(&top));
        assert_eq!(got, reference, "{ctx}: sort+limit {n}");

        let prefix = Plan::scan(vec![1]).limit(n);
        let reference = column_vec(&execute(&prefix, it.table(), NO_INDEXES));
        let got = column_vec(&it.query(&prefix));
        assert_eq!(got, reference, "{ctx}: scan+limit {n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn facade_matches_unoptimized_plans_under_random_streams(
        partitions in 1usize..5,
        e in prop_oneof![Just(0.0), Just(0.1), Just(0.6)],
        kind_nuc in any::<bool>(),
        nuc_bitmap in any::<bool>(),
        with_nsc in any::<bool>(),
        deferred in any::<bool>(),
        flush_rows in 1usize..16,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let kind = if kind_nuc { MicroKind::Nuc } else { MicroKind::Nsc };
        let ds = generate(&MicroSpec::new(400, e, kind).with_partitions(partitions));
        let policy = if deferred {
            MaintenancePolicy {
                mode: MaintenanceMode::Deferred { flush_rows },
                ..MaintenancePolicy::default()
            }
        } else {
            MaintenancePolicy::default()
        };
        let mut it = IndexedTable::new(ds.table).with_policy(policy);
        // Random index set on the value column — the catalog carries them
        // all and the facade picks per query. A NUC index is only created
        // on the NUC dataset: partition-local discovery assumes duplicate
        // values co-locate within a partition (the generator plants them
        // that way; update maintenance then enforces uniqueness globally
        // via the cross-partition collision join). An NSC index is valid
        // on any data — a messy column just yields a large patch set.
        if kind_nuc {
            it.add_index(
                1,
                Constraint::NearlyUnique,
                if nuc_bitmap { Design::Bitmap } else { Design::Identifier },
            );
        }
        if with_nsc || !kind_nuc {
            it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
            it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Identifier);
        }

        assert_queries_match(&mut it, "initial");
        let mut next_key = 1_000_000i64;
        for (i, op) in ops.iter().enumerate() {
            apply(&mut it, op, &mut next_key);
            // Mid-stream: pending deferred state included — the facade
            // must flush exactly when a chosen plan requires it.
            assert_queries_match(&mut it, &format!("after op {i} ({op:?})"));
        }
        // Any remaining pending state must flush clean.
        it.flush_maintenance();
        it.check_consistency();
        assert_queries_match(&mut it, "final");
    }
}
