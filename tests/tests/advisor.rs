//! Advisor lifecycle integration test: the three-phase grow/drift/storm
//! workload of `pi_datagen::drift` must drive the full observe → decide
//! → act loop — auto-create in the grow phase, drift-induced recompute
//! that restores `e` to near create-time levels, cost-based drop in the
//! storm — while every query result stays **byte-identical** to a
//! manually-managed reference table receiving the same update stream.

use patchindex::{Constraint, Design, IndexedTable};
use pi_advisor::{Advisor, AdvisorAction, AdvisorConfig, DropReason};
use pi_datagen::{DriftOp, DriftSpec};
use pi_exec::ops::sort::SortOrder;
use pi_planner::{execute, Plan, QueryEngine, NO_INDEXES};

fn config() -> AdvisorConfig {
    AdvisorConfig {
        recompute_margin: 0.05,
        drop_window: 3,
        ..AdvisorConfig::default()
    }
}

/// Sorted distinct over the advised column: deterministic output, and
/// its Distinct-over-Scan root is exactly what the query log records.
fn workload_query() -> Plan {
    Plan::scan(vec![DriftSpec::VAL_COL])
        .distinct(vec![0])
        .sort(vec![(0, SortOrder::Asc)])
}

fn apply(it: &mut IndexedTable, op: &DriftOp) {
    match op {
        DriftOp::Insert(rows) => {
            it.insert(rows);
        }
        DriftOp::Modify {
            pid,
            rids,
            col,
            values,
        } => {
            it.modify(*pid, rids, *col, values);
        }
        DriftOp::Query => {}
    }
}

/// Advisor-managed result vs the manually-managed reference, byte for
/// byte (both run through the same facade).
fn assert_identical(advised: &mut IndexedTable, manual: &mut IndexedTable, at: &str) {
    let q = workload_query();
    let a = advised.query(&q);
    let m = manual.query(&q);
    assert_eq!(a.len(), m.len(), "{at}: row counts diverged");
    assert_eq!(
        a.column(0).as_int(),
        m.column(0).as_int(),
        "{at}: results diverged"
    );
    // And both agree with the index-free ground truth.
    let reference = execute(&q, manual.table(), NO_INDEXES);
    assert_eq!(
        a.column(0).as_int(),
        reference.column(0).as_int(),
        "{at}: wrong results"
    );
}

#[test]
fn full_lifecycle_on_a_drifting_workload() {
    let spec = DriftSpec::new(6_000);
    let mut advised = IndexedTable::new(spec.base_table());
    let mut manual = IndexedTable::new(spec.base_table());
    let mut advisor = Advisor::new(config());
    let mut actions: Vec<AdvisorAction> = Vec::new();
    let phases = spec.phases();

    // ---- phase 1: grow — the advisor must create the index -------------
    let grow = &phases[0];
    for op in &grow.ops {
        apply(&mut advised, op);
        apply(&mut manual, op);
        if matches!(op, DriftOp::Query) {
            assert_identical(&mut advised, &mut manual, "grow");
            actions.extend(advisor.step(&mut advised));
        }
    }
    let created: Vec<&AdvisorAction> = actions
        .iter()
        .filter(|a| matches!(a, AdvisorAction::Created { .. }))
        .collect();
    assert_eq!(
        created.len(),
        1,
        "exactly one auto-create expected: {actions:?}"
    );
    let AdvisorAction::Created {
        column,
        constraint,
        sampled_e,
        discovered_e,
        ..
    } = created[0]
    else {
        unreachable!()
    };
    assert_eq!(*column, DriftSpec::VAL_COL);
    assert_eq!(*constraint, Constraint::NearlyUnique);
    assert!(*sampled_e >= config().create_threshold);
    assert!(*discovered_e > 0.99, "grow-phase data is unique");
    assert_eq!(advised.indexes().len(), 1);
    // The index wins the workload query: the facade binds it.
    assert!(
        advised
            .plan_query(&workload_query())
            .to_string()
            .contains("PatchScan"),
        "the created index must be chosen by the optimizer"
    );
    // Manual management mirrors the advisor's decision.
    manual.add_index(
        DriftSpec::VAL_COL,
        Constraint::NearlyUnique,
        Design::Identifier,
    );
    assert_identical(&mut advised, &mut manual, "post-create");

    // ---- phase 2: drift — recompute must restore e ---------------------
    let e_at_create = advised.index(0).match_fraction();
    let drift = &phases[1];
    let mut drifted_to: Option<f64> = None;
    let before = actions.len();
    for op in &drift.ops {
        apply(&mut advised, op);
        apply(&mut manual, op);
        if matches!(op, DriftOp::Query) {
            let e_now = advised.index(0).match_fraction();
            drifted_to = Some(drifted_to.map_or(e_now, |d: f64| d.min(e_now)));
            let new = advisor.step(&mut advised);
            // Mirror every advisor recompute on the manual table.
            for a in &new {
                if matches!(a, AdvisorAction::Recomputed { .. }) {
                    manual.recompute_index(0);
                }
            }
            actions.extend(new);
            assert_identical(&mut advised, &mut manual, "drift");
        }
    }
    let recomputes: Vec<&AdvisorAction> = actions[before..]
        .iter()
        .filter(|a| matches!(a, AdvisorAction::Recomputed { .. }))
        .collect();
    assert!(
        !recomputes.is_empty(),
        "drift must trigger a recompute: {actions:?}"
    );
    for r in &recomputes {
        let AdvisorAction::Recomputed {
            e_before,
            e_after,
            baseline_e,
            ..
        } = r
        else {
            unreachable!()
        };
        assert!(
            baseline_e - e_before > config().recompute_margin,
            "recompute fired before the margin: {r:?}"
        );
        assert!(e_after > e_before, "recompute must improve e: {r:?}");
        assert!(
            e_after - e_at_create > -0.01,
            "recompute must restore e to near create-time levels: {r:?}"
        );
    }
    assert!(
        drifted_to.unwrap() < e_at_create - config().recompute_margin,
        "the workload must actually have drifted"
    );

    // ---- phase 3: storm — maintenance domination must drop -------------
    let before = actions.len();
    let storm = &phases[2];
    for op in &storm.ops {
        apply(&mut advised, op);
        apply(&mut manual, op);
        actions.extend(advisor.step(&mut advised));
    }
    let drops: Vec<&AdvisorAction> = actions[before..]
        .iter()
        .filter(|a| matches!(a, AdvisorAction::Dropped { .. }))
        .collect();
    assert_eq!(
        drops.len(),
        1,
        "the storm must drop the index once: {actions:?}"
    );
    let AdvisorAction::Dropped {
        reason,
        maintenance_cost,
        query_benefit,
        ..
    } = drops[0]
    else {
        unreachable!()
    };
    assert_eq!(*reason, DropReason::CostDominated);
    assert!(maintenance_cost > query_benefit);
    assert!(
        advised.indexes().is_empty(),
        "no index must survive the storm"
    );
    assert!(
        !actions[before..]
            .iter()
            .any(|a| matches!(a, AdvisorAction::Created { .. })),
        "a dropped index must not oscillate back without fresh query evidence"
    );
    // Mirror the drop and compare end state.
    manual.drop_index(0);
    assert_identical(&mut advised, &mut manual, "post-drop");
    advised.check_consistency();
    manual.check_consistency();
}

/// The piggybacked form ([`pi_advisor::AdvisedTable`]) reaches the same
/// end state as on-demand stepping: driving the same workload through
/// the wrapper creates, recomputes and eventually drops without any
/// explicit `step()` call.
#[test]
fn advised_table_runs_the_lifecycle_hands_free() {
    let spec = DriftSpec::new(6_000);
    let cfg = AdvisorConfig {
        step_every: 1, // phases apply one statement per batch
        ..config()
    };
    let mut at = pi_advisor::AdvisedTable::new(IndexedTable::new(spec.base_table()), cfg);
    let q = workload_query();
    for phase in spec.phases() {
        for op in &phase.ops {
            match op {
                DriftOp::Insert(rows) => {
                    at.insert(rows);
                }
                DriftOp::Modify {
                    pid,
                    rids,
                    col,
                    values,
                } => {
                    at.modify(*pid, rids, *col, values);
                }
                DriftOp::Query => {
                    let got = at.query(&q);
                    let reference = execute(&q, at.inner().table(), NO_INDEXES);
                    assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
                }
            }
        }
    }
    let kinds: Vec<&str> = at
        .actions()
        .iter()
        .map(|a| match a {
            AdvisorAction::Created { .. } => "create",
            AdvisorAction::Recomputed { .. } => "recompute",
            AdvisorAction::Dropped { .. } => "drop",
        })
        .collect();
    assert!(kinds.contains(&"create"), "{kinds:?}");
    assert!(kinds.contains(&"recompute"), "{kinds:?}");
    assert!(kinds.contains(&"drop"), "{kinds:?}");
    at.inner().check_consistency();
}
