//! End-to-end tests of the `pi-server` TCP frontend.
//!
//! The central property (this PR's acceptance bar): **every response a
//! concurrent client observes is byte-identical to a single-threaded
//! replay of the statement prefix the response's `epochs` field names.**
//! Each write ack carries `(shard, seq)`; each query response carries
//! `epochs=<shard>:<epoch>@<seq>,...`. A query served at `shard s @ seq
//! q` must therefore equal the index-free reference answer over exactly
//! the statements with sequence `<= q` on each shard — no torn epochs,
//! no half-applied statements, no cache staleness, regardless of how
//! many clients were writing at the time.
//!
//! The suite also pins the two operational behaviours the wire protocol
//! documents: backpressure (a full statement queue rejects with
//! `ServerBusy` instead of blocking) and clean-shutdown drain (every
//! acknowledged statement reaches a published epoch before `shutdown`
//! returns).

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::Mutex;

use pi_planner::{execute, NO_INDEXES};
use pi_server::{
    batch_rows, body_lines, canonical_rows, header, header_field, render_rows, Client, QuerySpec,
    Server, ServerConfig,
};
use pi_storage::{DataType, Field, Partitioning, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use patchindex::IndexedTable;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
}

/// Parses `epochs=<shard>:<epoch>@<seq>,...` into per-shard seq watermarks.
fn parse_epoch_seqs(resp: &str, nshards: usize) -> Vec<u64> {
    let field = header_field(resp, "epochs").expect("epochs field");
    let mut seqs = vec![0u64; nshards];
    for tok in field.split(',') {
        let (shard, rest) = tok.split_once(':').expect("shard:epoch@seq");
        let (_epoch, seq) = rest.split_once('@').expect("epoch@seq");
        seqs[shard.parse::<usize>().unwrap()] = seq.parse().unwrap();
    }
    seqs
}

/// One client's recorded traffic: acked single-row inserts and full
/// query responses, in issue order.
struct ClientLog {
    /// (shard, seq, row) per acknowledged `INSERT`.
    writes: Vec<(usize, u64, Vec<Value>)>,
    /// (spec text, raw response) per `QUERY`.
    reads: Vec<(String, String)>,
}

/// Replays the statement prefix `seq <= watermark[shard]` for every
/// shard and returns the index-free reference response for `spec` —
/// byte-for-byte what the server should have sent.
fn reference_response(
    spec_text: &str,
    watermarks: &[u64],
    by_shard: &[BTreeMap<u64, Vec<Value>>],
    partitions_per_shard: usize,
) -> String {
    let spec = QuerySpec::parse(spec_text).unwrap();
    let plan = spec.fanout_plan();
    let mut rows = Vec::new();
    for (sid, log) in by_shard.iter().enumerate() {
        let mut it = IndexedTable::new(Table::new(
            format!("ref{sid}"),
            schema(),
            partitions_per_shard,
            Partitioning::RoundRobin,
        ));
        for (_, row) in log.range(..=watermarks[sid]) {
            it.insert(std::slice::from_ref(row));
        }
        it.flush_maintenance();
        rows.extend(batch_rows(&execute(&plan, it.table(), NO_INDEXES)));
    }
    let rows = canonical_rows(&spec, rows);
    format!(
        "OK rows={} cols={}{}",
        rows.len(),
        spec.output_width(),
        render_rows(&rows)
    )
}

/// Strips the `epochs=...` token from a response header so reference
/// and served responses compare on everything the replay determines
/// (epoch numbers depend on publish cadence, not on content).
fn without_epochs(resp: &str) -> String {
    let hdr: Vec<&str> = header(resp)
        .split(' ')
        .filter(|tok| !tok.starts_with("epochs="))
        .collect();
    let mut out = hdr.join(" ");
    for line in body_lines(resp) {
        out.push('\n');
        out.push_str(line);
    }
    out
}

/// Three clients hammer a 2-shard server with interleaved single-row
/// inserts and queries; every query response must match the
/// single-threaded index-free replay of its exact statement prefix.
#[test]
fn concurrent_clients_match_prefix_replay() {
    const NSHARDS: usize = 2;
    const PARTS: usize = 2;
    const CLIENTS: usize = 3;
    const OPS: usize = 120;
    const SPECS: [&str; 4] = [
        "scan 0,1 | sort 0:asc",
        "scan 1 | distinct 0",
        "scan 0,1 | sort 1:desc,0:asc | limit 7",
        "scan 1,0",
    ];

    let cfg = ServerConfig {
        shards: NSHARDS,
        publish_every: 1,
        ..ServerConfig::default()
    };
    let server = Server::empty(cfg, schema(), PARTS).unwrap();
    let addr = server.addr();

    let logs = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for cid in 0..CLIENTS {
            let logs = &logs;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE + cid as u64);
                let mut client = Client::connect(addr).unwrap();
                let mut log = ClientLog {
                    writes: Vec::new(),
                    reads: Vec::new(),
                };
                for i in 0..OPS {
                    if rng.gen_bool(0.6) {
                        // Globally unique key so replays are order-free
                        // across clients within one shard's seq order.
                        let k = (cid * 1_000_000 + i) as i64;
                        let v = rng.gen_range(0..50i64);
                        let resp = client.request(&format!("INSERT {k},{v}")).unwrap();
                        let acks = header_field(&resp, "shards").expect("insert ack");
                        let (shard, seq) = acks.split_once(':').unwrap();
                        log.writes.push((
                            shard.parse().unwrap(),
                            seq.parse().unwrap(),
                            vec![Value::Int(k), Value::Int(v)],
                        ));
                    } else {
                        let spec = SPECS[rng.gen_range(0..SPECS.len())];
                        let resp = client.request(&format!("QUERY {spec}")).unwrap();
                        assert!(resp.starts_with("OK "), "query failed: {resp}");
                        log.reads.push((spec.to_string(), resp));
                    }
                }
                logs.lock().unwrap().push(log);
            });
        }
    });

    let logs = logs.into_inner().unwrap();
    // Merge all clients' write acks into per-shard seq → row maps. Seq
    // order is apply order (assigned under the enqueue lock), so the
    // merged map *is* each shard's statement log.
    let mut by_shard: Vec<BTreeMap<u64, Vec<Value>>> = vec![BTreeMap::new(); NSHARDS];
    for log in &logs {
        for (shard, seq, row) in &log.writes {
            let prev = by_shard[*shard].insert(*seq, row.clone());
            assert!(prev.is_none(), "duplicate seq {seq} on shard {shard}");
        }
    }
    let mut audited = 0;
    for log in &logs {
        for (spec, resp) in &log.reads {
            let watermarks = parse_epoch_seqs(resp, NSHARDS);
            let expect = reference_response(spec, &watermarks, &by_shard, PARTS);
            assert_eq!(
                without_epochs(resp),
                expect,
                "divergence for {spec:?} at watermarks {watermarks:?}"
            );
            audited += 1;
        }
    }
    assert!(audited > 50, "too few queries audited: {audited}");
    server.shutdown();
}

/// With the writer parked, exactly `queue_capacity` statements are
/// admitted and the next is rejected `ServerBusy`; releasing the writer
/// drains the queue and the admitted rows become visible.
#[test]
fn backpressure_rejects_when_queue_full() {
    let cfg = ServerConfig {
        shards: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    };
    let server = Server::empty(cfg, schema(), 1).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let hold = server.hold_shard(0);
    for i in 0..4 {
        let resp = client.request(&format!("INSERT {i},{i}")).unwrap();
        assert!(resp.starts_with("OK "), "statement {i} rejected: {resp}");
    }
    let resp = client.request("INSERT 4,4").unwrap();
    assert!(
        resp.starts_with("ERR ServerBusy "),
        "expected ServerBusy, got: {resp}"
    );
    // The connection survives admission rejection — only framing errors
    // close it.
    assert_eq!(client.request("PING").unwrap(), "OK pong");

    drop(hold);
    client.request("PUBLISH").unwrap();
    let resp = client.request("COUNT scan 0").unwrap();
    assert_eq!(header_field(&resp, "count"), Some("4"));

    let metrics = client.request("METRICS").unwrap();
    assert!(
        metrics.contains("server.busy_rejections\":{\"count\":1")
            || metrics.contains("\"server.busy_rejections\":1")
            || metrics.contains("busy_rejections"),
        "busy rejection not surfaced in metrics: {metrics}"
    );
    server.shutdown();
}

/// Statements acked but not yet published when `shutdown` is called are
/// drained through a final publish: every ack is visible in the shard
/// tables after shutdown returns.
#[test]
fn clean_shutdown_drains_acked_statements() {
    const NSHARDS: usize = 2;
    const ROWS: i64 = 60;
    let cfg = ServerConfig {
        shards: NSHARDS,
        // Far beyond the statement count: nothing publishes during the
        // run, so visibility after shutdown proves the drain path.
        publish_every: 1_000_000,
        ..ServerConfig::default()
    };
    let server = Server::empty(cfg, schema(), 1).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for k in 0..ROWS {
        let resp = client.request(&format!("INSERT {k},{}", k * 10)).unwrap();
        assert!(resp.starts_with("OK "), "insert {k} failed: {resp}");
    }
    // Nothing published yet: reads still see the empty epoch.
    let resp = client.request("COUNT scan 0").unwrap();
    assert_eq!(header_field(&resp, "count"), Some("0"));

    let tables = server.tables();
    server.shutdown();

    let plan = QuerySpec::parse("scan 0").unwrap().fanout_plan();
    let mut total = 0;
    for table in &tables {
        let snap = table.snapshot();
        assert!(snap.epoch() > 0, "shutdown must publish the drained prefix");
        total += execute(&plan, snap.table(), NO_INDEXES).len();
    }
    assert_eq!(total as i64, ROWS, "acked statements lost in shutdown");
}

/// Every documented error code surfaces with its wire token, and only
/// framing errors close the connection.
#[test]
fn error_codes_and_line_mode() {
    let server = Server::empty(ServerConfig::default(), schema(), 1).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for (cmd, code) in [
        ("FROBNICATE", "BadCommand"),
        ("QUERY scan 9", "BadPlan"),
        ("QUERY scan 0 | sort 0:up", "BadPlan"),
        ("INSERT x,1", "BadValue"),
        ("INSERT 1", "BadValue"),
        ("MODIFY 7 0 0 0=1", "BadShard"),
        ("DELETE 0 9 0", "BadValue"),
    ] {
        let resp = client.request(cmd).unwrap();
        assert!(
            resp.starts_with(&format!("ERR {code} ")),
            "{cmd:?}: expected {code}, got {resp:?}"
        );
    }
    // The same session keeps serving after recoverable errors.
    assert_eq!(client.request("PING").unwrap(), "OK pong");

    // Line mode round-trip: a human typing into `nc` gets dot-stuffed,
    // dot-terminated responses.
    let mut nc = Client::connect(server.addr()).unwrap();
    assert_eq!(nc.request_line_mode("PING").unwrap(), "OK pong");
    nc.request_line_mode("INSERT 1,10;2,20").unwrap();
    nc.request_line_mode("PUBLISH").unwrap();
    let resp = nc.request_line_mode("QUERY scan 1 | sort 0:asc").unwrap();
    assert_eq!(body_lines(&resp), vec!["10", "20"]);

    // A malformed frame gets ERR BadFrame and the connection closes.
    {
        use std::io::{Read, Write};
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"3x\nabc").unwrap();
        let mut buf = String::new();
        raw.read_to_string(&mut buf).unwrap();
        assert!(buf.contains("ERR BadFrame "), "got: {buf:?}");
        // read_to_string returning means the server closed the stream.
    }
    server.shutdown();
}

/// `MODIFY` and `DELETE` address physical rows through the wire and the
/// results match direct table mutation semantics.
#[test]
fn modify_and_delete_round_trip() {
    let cfg = ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    };
    let server = Server::empty(cfg, schema(), 1).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.request("INSERT 1,10;2,20;3,30").unwrap();
    client.request("PUBLISH").unwrap();

    let resp = client.request("MODIFY 0 0 1 1=99").unwrap();
    assert!(resp.starts_with("OK shard=0 "), "{resp}");
    let resp = client.request("DELETE 0 0 0").unwrap();
    assert!(resp.starts_with("OK shard=0 "), "{resp}");
    client.request("PUBLISH").unwrap();

    let resp = client.request("QUERY scan 1 | sort 0:asc").unwrap();
    assert_eq!(body_lines(&resp), vec!["30", "99"]);
    server.shutdown();
}
