//! Edge-case coverage for PatchIndex update handling: empty tables,
//! degenerate exception rates (every row a patch), and single- vs
//! multi-partition agreement under identical logical content.

use patchindex::{Constraint, Design, IndexCatalog, IndexedTable, PatchIndex, SortDir};
use pi_datagen::{generate, MicroKind, MicroSpec};
use pi_exec::ops::sort::SortOrder;
use pi_planner::{execute, execute_count, optimize, Plan, QueryEngine, NO_INDEXES};
use pi_storage::{DataType, Field, Partitioning, Schema, Table, Value};

fn empty_table(partitions: usize) -> Table {
    Table::new(
        "edge",
        Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("val", DataType::Int),
        ]),
        partitions,
        Partitioning::RoundRobin,
    )
}

fn rows_of(pairs: &[(i64, i64)]) -> Vec<Vec<Value>> {
    pairs
        .iter()
        .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
        .collect()
}

const ALL_CONSTRAINTS: [Constraint; 3] = [
    Constraint::NearlyUnique,
    Constraint::NearlySorted(SortDir::Asc),
    Constraint::NearlyConstant,
];

#[test]
fn create_on_empty_table_is_consistent_for_every_constraint() {
    for partitions in [1, 3] {
        for constraint in ALL_CONSTRAINTS {
            for design in [Design::Bitmap, Design::Identifier] {
                let table = empty_table(partitions);
                let idx = PatchIndex::create(&table, 1, constraint, design);
                assert_eq!(idx.nrows(), 0, "{constraint:?}/{design:?}/{partitions}p");
                assert_eq!(idx.exception_count(), 0);
                assert_eq!(idx.exception_rate(), 0.0, "empty index must report e=0");
                idx.check_consistency(&table);
            }
        }
    }
}

#[test]
fn handle_insert_into_empty_table_bootstraps_the_index() {
    for partitions in [1, 3] {
        for constraint in ALL_CONSTRAINTS {
            let mut table = empty_table(partitions);
            let mut idx = PatchIndex::create(&table, 1, constraint, Design::Bitmap);
            // First-ever rows arrive through the update path, not create().
            let addrs = table.insert_rows(&rows_of(&[(0, 10), (1, 20), (2, 20), (3, 30), (4, 5)]));
            idx.handle_insert(&mut table, &addrs);
            idx.check_consistency(&table);
            assert_eq!(idx.nrows(), 5);
            match constraint {
                // 20 collides with 20 — at least one patch, but never all rows.
                Constraint::NearlyUnique => {
                    assert!(idx.exception_count() >= 1 && idx.exception_count() < 5)
                }
                // Inserts extend a sorted run; the trailing 5 breaks it.
                Constraint::NearlySorted(_) => assert!(idx.exception_count() >= 1),
                // First value becomes the constant; later equal values free.
                Constraint::NearlyConstant => assert!(idx.exception_count() <= 4),
            }
        }
    }
}

#[test]
fn handle_modify_and_delete_with_empty_rid_lists_are_noops() {
    for partitions in [1, 3] {
        let mut table = empty_table(partitions);
        let mut idx = PatchIndex::create(&table, 1, Constraint::NearlyUnique, Design::Bitmap);
        idx.handle_modify(&mut table, 0, &[]);
        idx.handle_delete(0, &[]);
        idx.check_consistency(&table);
        assert_eq!(idx.nrows(), 0);
    }
}

#[test]
fn delete_everything_then_rebuild_through_inserts() {
    let ds = generate(&MicroSpec::new(900, 0.3, MicroKind::Nuc).with_partitions(3));
    let mut it = IndexedTable::new(ds.table);
    let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    // Drain every partition completely through the maintained path.
    for pid in 0..3 {
        let len = it.table().partition(pid).visible_len();
        let rids: Vec<usize> = (0..len).collect();
        it.delete(pid, &rids);
    }
    it.check_consistency();
    assert_eq!(it.index(slot).nrows(), 0, "all rows deleted");
    assert_eq!(it.index(slot).exception_count(), 0, "no rows, no patches");
    // The emptied index keeps working for fresh inserts.
    it.insert(&rows_of(&[(1_000_000, 1), (1_000_001, 1), (1_000_002, 2)]));
    it.check_consistency();
    assert_eq!(it.index(slot).nrows(), 3);
    assert!(
        it.index(slot).exception_count() >= 1,
        "the duplicate 1s must be patched"
    );
}

#[test]
fn all_rows_are_patches_nuc_constant_column() {
    // Every row carries the same value: one collision group. NUC patches
    // every occurrence of a duplicated value (the exclude-patches flow may
    // only see values occurring exactly once), so ALL n rows become
    // patches — the literal e = 1.0 case.
    let n = 64i64;
    let mut table = empty_table(1);
    let addrs = table.insert_rows(&rows_of(&(0..n).map(|k| (k, 7)).collect::<Vec<_>>()));
    assert_eq!(addrs.len(), n as usize);
    for design in [Design::Bitmap, Design::Identifier] {
        let idx = PatchIndex::create(&table, 1, Constraint::NearlyUnique, design);
        idx.check_consistency(&table);
        assert_eq!(idx.exception_count(), n as u64, "{design:?}");
        assert_eq!(idx.exception_rate(), 1.0, "{design:?}");
        // The rewritten distinct query still answers correctly.
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&plan, &table, NO_INDEXES);
        assert_eq!(reference, 1);
        let indexes = std::slice::from_ref(&idx);
        let opt = optimize(plan, &IndexCatalog::of(&table, indexes), false);
        assert_eq!(
            execute_count(&opt, &table, indexes),
            reference,
            "{design:?}"
        );
    }
}

#[test]
fn all_rows_are_patches_nsc_reverse_sorted_column() {
    // Strictly decreasing values under an ascending constraint: the longest
    // sorted subsequence is a single row, so n-1 rows are patches.
    let n = 64i64;
    let mut table = empty_table(1);
    table.insert_rows(&rows_of(&(0..n).map(|k| (k, n - k)).collect::<Vec<_>>()));
    for design in [Design::Bitmap, Design::Identifier] {
        let idx = PatchIndex::create(&table, 1, Constraint::NearlySorted(SortDir::Asc), design);
        idx.check_consistency(&table);
        assert_eq!(idx.exception_count(), (n - 1) as u64, "{design:?}");
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let reference = execute(&plan, &table, NO_INDEXES);
        let indexes = std::slice::from_ref(&idx);
        let opt = optimize(plan, &IndexCatalog::of(&table, indexes), false);
        let got = execute(&opt, &table, indexes);
        assert_eq!(
            got.column(0).as_int(),
            reference.column(0).as_int(),
            "{design:?}"
        );
    }
}

#[test]
fn planted_full_exception_rate_survives_updates() {
    // e = 1.0 from the generator: every generated row is an exception.
    for kind in [MicroKind::Nuc, MicroKind::Nsc] {
        let ds = generate(&MicroSpec::new(600, 1.0, kind).with_partitions(3));
        let constraint = match kind {
            MicroKind::Nuc => Constraint::NearlyUnique,
            MicroKind::Nsc => Constraint::NearlySorted(SortDir::Asc),
        };
        let mut it = IndexedTable::new(ds.table);
        let slot = it.add_index(1, constraint, Design::Bitmap);
        assert!(
            it.index(slot).exception_rate() > 0.4,
            "{kind:?}: planted e=1.0 should leave a large patch set, got {}",
            it.index(slot).exception_rate()
        );
        // A fully degenerate index still maintains itself through updates.
        it.insert(&rows_of(&[(2_000_000, 3), (2_000_001, 3), (2_000_002, 1)]));
        let len = it.table().partition(0).visible_len();
        it.modify(0, &[0, len / 2], 1, &[Value::Int(9), Value::Int(9)]);
        it.delete(1, &[0, 1, 2]);
        it.check_consistency();
        // And the rewritten distinct query still matches the reference.
        if kind == MicroKind::Nuc {
            let plan = Plan::scan(vec![1]).distinct(vec![0]);
            let reference = execute_count(&plan, it.table(), NO_INDEXES);
            assert_eq!(it.query_count(&plan), reference);
        }
    }
}

#[test]
fn single_and_multi_partition_tables_agree_on_queries() {
    // The same logical rows, round-robined into 1 vs 3 partitions: the
    // maintained indexes must produce identical query answers even though
    // patch sets are partition-local.
    let base: Vec<(i64, i64)> = (0..900)
        .map(|k| (k, if k % 7 == 0 { k % 13 } else { k }))
        .collect();
    let extra: Vec<(i64, i64)> = (900..960).map(|k| (k, k % 11)).collect();

    let mut counts = Vec::new();
    let mut sorted_results = Vec::new();
    for partitions in [1usize, 3] {
        let mut table = empty_table(partitions);
        table.insert_rows(&rows_of(&base));
        table.propagate_all();
        let mut it = IndexedTable::new(table);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(
            1,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
        );
        // Same logical update stream on both layouts.
        it.insert(&rows_of(&extra));
        it.check_consistency();

        // Both indexes live in one catalog; the facade picks the right
        // one per query.
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&distinct, it.table(), NO_INDEXES);
        assert_eq!(
            it.query_count(&distinct),
            reference,
            "{partitions}p distinct"
        );
        counts.push(reference);

        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let got = it.query(&sort);
        let reference = execute(&sort, it.table(), NO_INDEXES);
        assert_eq!(
            got.column(0).as_int(),
            reference.column(0).as_int(),
            "{partitions}p sort"
        );
        sorted_results.push(got.column(0).as_int().to_vec());
    }
    assert_eq!(
        counts[0], counts[1],
        "distinct count must not depend on partitioning"
    );
    assert_eq!(
        sorted_results[0], sorted_results[1],
        "sorted output must not depend on partitioning"
    );
}
