//! Property-based end-to-end test: under *arbitrary* interleavings of
//! inserts, modifies and deletes, every PatchIndex stays consistent and
//! the rewritten queries keep returning reference results.

use patchindex::{Constraint, Design, IndexedTable, SortDir};
use pi_datagen::MicroKind;
use pi_exec::ops::sort::SortOrder;
use pi_integration::micro;
use pi_planner::{execute, execute_count, Plan, QueryEngine, NO_INDEXES};
use pi_storage::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Modify {
        pid: usize,
        rid_seeds: Vec<u32>,
        values: Vec<i64>,
    },
    Delete {
        pid: usize,
        rid_seeds: Vec<u32>,
    },
    Propagate,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(-500i64..500, 1..12).prop_map(Op::Insert),
        (
            0usize..3,
            proptest::collection::vec(any::<u32>(), 1..6),
            proptest::collection::vec(-500i64..500, 6..7)
        )
            .prop_map(|(pid, rid_seeds, values)| Op::Modify {
                pid,
                rid_seeds,
                values
            }),
        (0usize..3, proptest::collection::vec(any::<u32>(), 1..6))
            .prop_map(|(pid, rid_seeds)| Op::Delete { pid, rid_seeds }),
        Just(Op::Propagate),
    ]
}

fn apply(it: &mut IndexedTable, op: &Op, next_key: &mut i64) {
    match op {
        Op::Insert(values) => {
            let rows: Vec<Vec<Value>> = values
                .iter()
                .map(|&v| {
                    *next_key += 1;
                    vec![Value::Int(*next_key), Value::Int(v)]
                })
                .collect();
            it.insert(&rows);
        }
        Op::Modify {
            pid,
            rid_seeds,
            values,
        } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            // Deduplicate target rows: modifying the same rid twice in one
            // call is fine for the table but makes expectations murky.
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            let vals: Vec<Value> = rids
                .iter()
                .zip(values.iter().cycle())
                .map(|(_, &v)| Value::Int(v))
                .collect();
            it.modify(*pid, &rids, 1, &vals);
        }
        Op::Delete { pid, rid_seeds } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            let rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            it.delete(*pid, &rids);
        }
        Op::Propagate => it.propagate(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nuc_survives_arbitrary_update_streams(
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let ds = micro(600, 0.2, MicroKind::Nuc);
        let mut it = IndexedTable::new(ds.table);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let mut next_key = 1_000_000i64;
        for op in &ops {
            apply(&mut it, op, &mut next_key);
            it.check_consistency();
        }
        // The rewritten distinct query still matches the reference.
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&plan, it.table(), NO_INDEXES);
        prop_assert_eq!(it.query_count(&plan), reference);
    }

    #[test]
    fn nsc_survives_arbitrary_update_streams(
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let ds = micro(600, 0.2, MicroKind::Nsc);
        let mut it = IndexedTable::new(ds.table);
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Identifier);
        let mut next_key = 1_000_000i64;
        for op in &ops {
            apply(&mut it, op, &mut next_key);
            it.check_consistency();
        }
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let reference = execute(&plan, it.table(), NO_INDEXES);
        let got = it.query(&plan);
        prop_assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
    }

    #[test]
    fn ncc_survives_arbitrary_update_streams(
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        // A mostly constant column (80% zeros via modulo trick).
        let ds = micro(400, 0.0, MicroKind::Nuc);
        let mut it = IndexedTable::new(ds.table);
        // Make the value column mostly constant first.
        for pid in 0..3 {
            let len = it.table().partition(pid).visible_len();
            let rids: Vec<usize> = (0..len).filter(|r| r % 5 != 0).collect();
            let vals: Vec<Value> = rids.iter().map(|_| Value::Int(7)).collect();
            it.modify(pid, &rids, 1, &vals);
        }
        let _slot = it.add_index(1, Constraint::NearlyConstant, Design::Bitmap);
        let mut next_key = 2_000_000i64;
        for op in &ops {
            apply(&mut it, op, &mut next_key);
            it.check_consistency();
        }
    }
}
