//! Smoke test: every `examples/*.rs` walkthrough must run to completion.
//!
//! Each example ends by asserting index consistency, so "exits 0" is a
//! real end-to-end check — and registering them here means an example can
//! never silently rot while the test suite stays green.

use std::process::Command;

const EXAMPLES: [&str; 5] = [
    "quickstart",
    "constraint_drift",
    "dirty_warehouse",
    "sensor_timeseries",
    "serve_quickstart",
];

#[test]
fn every_example_runs_to_completion() {
    // CARGO points at the exact cargo running this test; the manifest dir
    // of pi-integration is <workspace>/tests.
    let cargo = env!("CARGO");
    let workspace_root = concat!(env!("CARGO_MANIFEST_DIR"), "/..");
    for example in EXAMPLES {
        let output = Command::new(cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(workspace_root)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} printed nothing; walkthroughs should narrate"
        );
    }
}
