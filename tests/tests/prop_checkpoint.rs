//! Property test: `checkpoint` / `load_checkpoint` round-trips across
//! **all** constraint × design combinations under arbitrary update
//! streams — including the guard that pending deferred maintenance is
//! rejected before checkpointing, and that `MaintenanceStats`, the
//! drift baseline and the query-feedback counters survive recovery.

use std::sync::atomic::{AtomicUsize, Ordering};

use patchindex::{
    Constraint, Design, IndexedTable, MaintenanceMode, MaintenancePolicy, PatchIndex, SortDir,
};
use pi_datagen::MicroKind;
use pi_integration::micro;
use pi_storage::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Modify {
        pid: usize,
        rid_seeds: Vec<u32>,
        values: Vec<i64>,
    },
    Delete {
        pid: usize,
        rid_seeds: Vec<u32>,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(-300i64..300, 1..10).prop_map(Op::Insert),
        (
            0usize..3,
            proptest::collection::vec(any::<u32>(), 1..6),
            proptest::collection::vec(-300i64..300, 6..7)
        )
            .prop_map(|(pid, rid_seeds, values)| Op::Modify {
                pid,
                rid_seeds,
                values
            }),
        (0usize..3, proptest::collection::vec(any::<u32>(), 1..4))
            .prop_map(|(pid, rid_seeds)| Op::Delete { pid, rid_seeds }),
    ]
}

fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        Just(Constraint::NearlyUnique),
        Just(Constraint::NearlySorted(SortDir::Asc)),
        Just(Constraint::NearlySorted(SortDir::Desc)),
        Just(Constraint::NearlyConstant),
    ]
}

fn design_strategy() -> impl Strategy<Value = Design> {
    prop_oneof![Just(Design::Bitmap), Just(Design::Identifier)]
}

fn apply(it: &mut IndexedTable, op: &Op, next_key: &mut i64) {
    match op {
        Op::Insert(values) => {
            let rows: Vec<Vec<Value>> = values
                .iter()
                .map(|&v| {
                    *next_key += 1;
                    vec![Value::Int(*next_key), Value::Int(v)]
                })
                .collect();
            it.insert(&rows);
        }
        Op::Modify {
            pid,
            rid_seeds,
            values,
        } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            let vals: Vec<Value> = rids
                .iter()
                .zip(values.iter().cycle())
                .map(|(_, &v)| Value::Int(v))
                .collect();
            it.modify(*pid, &rids, 1, &vals);
        }
        Op::Delete { pid, rid_seeds } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            let rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            it.delete(*pid, &rids);
        }
    }
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn checkpoint_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "pi_prop_checkpoint_{}_{}.pidx",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_across_all_constraint_design_combinations(
        constraint in constraint_strategy(),
        design in design_strategy(),
        deferred in any::<bool>(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
        feedback_units in 0u32..10_000,
    ) {
        let feedback_saved = feedback_units as f64;
        let ds = micro(900, 0.15, MicroKind::Nuc);
        let policy = if deferred {
            MaintenancePolicy {
                mode: MaintenanceMode::Deferred { flush_rows: usize::MAX },
                ..MaintenancePolicy::default()
            }
        } else {
            MaintenancePolicy::default()
        };
        let mut it = IndexedTable::new(ds.table).with_policy(policy);
        let slot = it.add_index(1, constraint, design);
        let mut next_key = 10_000i64;
        for op in &ops {
            apply(&mut it, op, &mut next_key);
        }
        it.record_query_feedback(slot, feedback_saved);

        let path = checkpoint_path();
        if it.index(slot).has_pending() {
            // The guard: a checkpoint taken mid-epoch could never flush
            // into a consistent state after recovery — it must refuse.
            let idx = it.index(slot);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                idx.checkpoint(&path).unwrap()
            }));
            prop_assert!(result.is_err(), "pending maintenance must reject checkpointing");
        }
        // Flushed state checkpoints fine…
        it.flush_maintenance();
        it.index(slot).checkpoint(&path).unwrap();
        let loaded = PatchIndex::load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // …and recovers byte-identically.
        let original = it.index(slot);
        prop_assert_eq!(loaded.column(), original.column());
        prop_assert_eq!(loaded.constraint(), original.constraint());
        prop_assert_eq!(loaded.design(), original.design());
        prop_assert_eq!(loaded.partition_count(), original.partition_count());
        for pid in 0..original.partition_count() {
            prop_assert_eq!(
                loaded.partition(pid).store.patch_rids(),
                original.partition(pid).store.patch_rids(),
                "partition {} patch set", pid
            );
            prop_assert_eq!(
                loaded.partition(pid).store.nrows(),
                original.partition(pid).store.nrows()
            );
            prop_assert_eq!(loaded.partition(pid).last_sorted, original.partition(pid).last_sorted);
        }
        // The monitoring counters survive recovery (v2 checkpoint).
        prop_assert_eq!(loaded.maintenance_stats(), original.maintenance_stats());
        prop_assert_eq!(loaded.baseline(), original.baseline());
        prop_assert_eq!(loaded.query_feedback(), original.query_feedback());
        prop_assert!(loaded.query_feedback().est_cost_saved > 0.0 || feedback_saved == 0.0);
        loaded.check_consistency(it.table());
    }
}
