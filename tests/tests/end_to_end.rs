//! End-to-end integration: generator → index → optimizer → execution →
//! updates → recovery, across all crates.

use patchindex::IndexCatalog;
use patchindex::{Constraint, Design, IndexedTable, PatchIndex, SortDir};
use pi_baselines::{DistinctView, SortKeyTable};
use pi_datagen::{update_rows, MicroKind};
use pi_exec::ops::sort::SortOrder;
use pi_integration::micro;
use pi_planner::{execute, execute_count, optimize, Plan, QueryEngine, NO_INDEXES};

#[test]
fn distinct_query_all_configurations_agree_across_exception_rates() {
    for e in [0.0, 0.1, 0.5, 0.9] {
        let ds = micro(9_000, e, MicroKind::Nuc);
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&plan, &ds.table, NO_INDEXES);
        for design in [Design::Bitmap, Design::Identifier] {
            let idx = PatchIndex::create(&ds.table, 1, Constraint::NearlyUnique, design);
            idx.check_consistency(&ds.table);
            let indexes = std::slice::from_ref(&idx);
            let opt = optimize(plan.clone(), &IndexCatalog::of(&ds.table, indexes), false);
            assert_eq!(
                execute_count(&opt, &ds.table, indexes),
                reference,
                "e={e} design={design:?}"
            );
        }
        let view = DistinctView::create(&ds.table, 1);
        assert_eq!(view.len(), reference, "e={e} matview");
    }
}

#[test]
fn sort_query_all_configurations_agree_across_exception_rates() {
    for e in [0.0, 0.2, 0.7] {
        let ds = micro(8_000, e, MicroKind::Nsc);
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let reference = execute(&plan, &ds.table, NO_INDEXES);
        for design in [Design::Bitmap, Design::Identifier] {
            let idx =
                PatchIndex::create(&ds.table, 1, Constraint::NearlySorted(SortDir::Asc), design);
            let indexes = std::slice::from_ref(&idx);
            let opt = optimize(plan.clone(), &IndexCatalog::of(&ds.table, indexes), false);
            let got = execute(&opt, &ds.table, indexes);
            assert_eq!(
                got.column(0).as_int(),
                reference.column(0).as_int(),
                "e={e} design={design:?}"
            );
        }
        let sk = SortKeyTable::create(&ds.table, 1);
        sk.check_sorted();
    }
}

#[test]
fn update_workload_preserves_query_correctness() {
    let ds = micro(6_000, 0.3, MicroKind::Nuc);
    let mut it = IndexedTable::new(ds.table);
    it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);

    // A mixed update stream.
    let inserts = update_rows(6_000, MicroKind::Nuc, 300, 11);
    it.insert(&inserts[..150]);
    it.delete(0, &(0..40).collect::<Vec<_>>());
    it.delete(2, &[1, 5, 7, 30]);
    it.insert(&inserts[150..]);
    it.modify(
        1,
        &[3, 9, 27],
        1,
        &[
            pi_storage::Value::Int(123456),
            pi_storage::Value::Int(123456),
            pi_storage::Value::Int(-5),
        ],
    );
    it.check_consistency();

    // The rewritten distinct query (through the facade) still matches
    // the reference.
    let plan = Plan::scan(vec![1]).distinct(vec![0]);
    let reference = execute_count(&plan, it.table(), NO_INDEXES);
    assert_eq!(it.query_count(&plan), reference);

    // Propagating deltas into base storage changes nothing observable.
    it.propagate();
    it.check_consistency();
    assert_eq!(it.query_count(&plan), reference);
}

#[test]
fn nsc_update_workload_with_policy() {
    let ds = micro(5_000, 0.2, MicroKind::Nsc);
    let mut it = IndexedTable::new(ds.table).with_policy(patchindex::MaintenancePolicy {
        max_exception_rate: 0.6,
        condense_threshold: 0.5,
        auto: true,
        ..patchindex::MaintenancePolicy::default()
    });
    let slot = it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
    let inserts = update_rows(5_000, MicroKind::Nsc, 400, 3);
    for chunk in inserts.chunks(50) {
        it.insert(chunk);
    }
    it.delete(0, &(0..100).collect::<Vec<_>>());
    it.check_consistency();
    assert!(it.index(slot).exception_rate() <= 0.6 + 1e-9);

    let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
    let reference = execute(&plan, it.table(), NO_INDEXES);
    let got = it.query(&plan);
    assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
}

#[test]
fn checkpoint_survives_update_cycle() {
    let ds = micro(4_000, 0.1, MicroKind::Nuc);
    let mut it = IndexedTable::new(ds.table);
    let slot = it.add_index(1, Constraint::NearlyUnique, Design::Identifier);
    it.insert(&update_rows(4_000, MicroKind::Nuc, 100, 9));
    let path = std::env::temp_dir().join("pi_integration_ckpt.pidx");
    it.index(slot).checkpoint(&path).unwrap();
    let restored = PatchIndex::load_checkpoint(&path).unwrap();
    restored.check_consistency(it.table());
    assert_eq!(restored.exception_count(), it.index(slot).exception_count());
    std::fs::remove_file(path).ok();
}

#[test]
fn zbp_on_perfect_data_equals_plain_scan_semantics() {
    let ds = micro(3_000, 0.0, MicroKind::Nsc);
    let idx = PatchIndex::create(
        &ds.table,
        1,
        Constraint::NearlySorted(SortDir::Asc),
        Design::Bitmap,
    );
    assert_eq!(idx.exception_count(), 0);
    let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
    let indexes = std::slice::from_ref(&idx);
    let opt = optimize(plan.clone(), &IndexCatalog::of(&ds.table, indexes), true);
    // ZBP prunes the patches branch entirely.
    assert!(!opt.to_string().contains("use_patches"), "{opt}");
    let reference = execute(&plan, &ds.table, NO_INDEXES);
    let got = execute(&opt, &ds.table, indexes);
    assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
}
