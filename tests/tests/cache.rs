//! Result-cache transparency under randomized mutation streams.
//!
//! The central property (the PR's acceptance bar): **a `ConcurrentTable`
//! carrying a result cache answers every query byte-identically to a
//! twin table without one, across randomized
//! insert/modify/delete/recompute/flush/publish streams with repeated
//! interleaved queries.** Both twins apply the same ops and publish in
//! lockstep; after every op the full query mix runs on fresh snapshots
//! of both sides — and runs *twice* on the cached side, so the second
//! pass exercises the hit path against the first pass's entries. Old
//! snapshots are held across publishes and re-queried: an entry whose
//! epoch was refreshed by newer readers must still validate by pointer
//! identity (or miss and recompute) for the stale snapshot, never serve
//! it another epoch's rows.
//!
//! Stale-wrong-answer bugs this would catch: a publish sweep that
//! misses a dirty footprint, a fingerprint that conflates two plans, a
//! footprint that omits a consulted partition, or epoch-refresh leaking
//! new-epoch results to held old snapshots.

use patchindex::{
    ConcurrentTable, Constraint, Design, IndexedTable, MaintenanceMode, MaintenancePolicy,
    ResultCache, SortDir, TableSnapshot, TableWriter,
};
use pi_exec::ops::sort::SortOrder;
use pi_planner::{Plan, QueryEngine};
use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

const PARTS: usize = 3;
const VAL_POOL: i64 = 40;

fn base_table(rows_per_part: usize) -> Table {
    let mut t = Table::new(
        "cached",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
        PARTS,
        Partitioning::KeyRange {
            col: 0,
            boundaries: vec![1000, 2000],
        },
    );
    for pid in 0..PARTS {
        let keys: Vec<i64> = (0..rows_per_part as i64)
            .map(|i| pid as i64 * 1000 + i)
            .collect();
        let vals: Vec<i64> = (0..rows_per_part as i64)
            .map(|i| pid as i64 * 100 + (i % VAL_POOL))
            .collect();
        t.load_partition(pid, &[ColumnData::Int(keys), ColumnData::Int(vals)]);
    }
    t.propagate_all();
    t
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<(usize, i64)>),
    Modify {
        pid: usize,
        rid_seeds: Vec<u32>,
        val_seeds: Vec<i64>,
    },
    Delete {
        pid: usize,
        rid_seeds: Vec<u32>,
    },
    Recompute(u8),
    Flush,
    Publish,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let insert =
        || proptest::collection::vec((0usize..PARTS, 0i64..VAL_POOL), 1..8).prop_map(Op::Insert);
    let modify = || {
        (
            0usize..PARTS,
            proptest::collection::vec(any::<u32>(), 1..6),
            proptest::collection::vec(0i64..VAL_POOL, 6..7),
        )
            .prop_map(|(pid, rid_seeds, val_seeds)| Op::Modify {
                pid,
                rid_seeds,
                val_seeds,
            })
    };
    prop_oneof![
        insert(),
        insert(),
        modify(),
        modify(),
        (0usize..PARTS, proptest::collection::vec(any::<u32>(), 1..4))
            .prop_map(|(pid, rid_seeds)| Op::Delete { pid, rid_seeds }),
        any::<u8>().prop_map(Op::Recompute),
        Just(Op::Flush),
        Just(Op::Publish),
    ]
}

/// Applies one op to a staging table. Deterministic given (`op`,
/// `next_key` state), so the twins stay in perfect lockstep.
fn apply(it: &mut IndexedTable, op: &Op, next_key: &mut [i64; PARTS]) {
    match op {
        Op::Insert(rows) => {
            let rows: Vec<Vec<Value>> = rows
                .iter()
                .map(|&(pid, off)| {
                    next_key[pid] += 1;
                    let key = pid as i64 * 1000 + 100 + (next_key[pid] % 890);
                    vec![Value::Int(key), Value::Int(pid as i64 * 100 + off)]
                })
                .collect();
            it.insert(&rows);
        }
        Op::Modify {
            pid,
            rid_seeds,
            val_seeds,
        } => {
            let len = it.table().partition(*pid).visible_len();
            if len == 0 {
                return;
            }
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            let values: Vec<Value> = rids
                .iter()
                .zip(val_seeds.iter().cycle())
                .map(|(_, &off)| Value::Int(*pid as i64 * 100 + off))
                .collect();
            it.modify(*pid, &rids, 1, &values);
        }
        Op::Delete { pid, rid_seeds } => {
            let len = it.table().partition(*pid).visible_len();
            if len <= 2 {
                return;
            }
            let mut rids: Vec<usize> = rid_seeds.iter().map(|&s| s as usize % len).collect();
            rids.sort_unstable();
            rids.dedup();
            rids.truncate(len - 2);
            it.delete(*pid, &rids);
        }
        Op::Recompute(seed) => {
            if !it.indexes().is_empty() {
                it.recompute_index(*seed as usize % it.indexes().len());
            }
        }
        Op::Flush => it.flush_maintenance(),
        Op::Publish => {} // handled by the driver
    }
}

/// The query mix: a distinct count, a sort (full rows), a pushed-down
/// limit (partial-footprint entries), and a plain scan count.
fn mix() -> [Plan; 4] {
    [
        Plan::scan(vec![1]).distinct(vec![0]),
        Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]),
        Plan::scan(vec![1]).limit(5),
        Plan::scan(vec![1]),
    ]
}

fn int_column(b: &pi_exec::Batch) -> Vec<i64> {
    if b.is_empty() {
        Vec::new()
    } else {
        b.column(0).as_int().to_vec()
    }
}

/// Runs the full mix on a cached and an uncached snapshot of the same
/// epoch and demands byte-identical answers — twice on the cached side,
/// so pass two probes the entries pass one populated.
fn verify_pair(cached: &mut TableSnapshot, plain: &mut TableSnapshot, ctx: &str) {
    assert_eq!(
        cached.epoch(),
        plain.epoch(),
        "{ctx}: twins out of lockstep"
    );
    for plan in mix() {
        let want_rows = int_column(&plain.query(&plan));
        let want_count = plain.query_count(&plan);
        for pass in ["cold", "hot"] {
            let got = int_column(&cached.query(&plan));
            assert_eq!(got, want_rows, "{ctx}: {pass} rows diverged for {plan}");
            let got_count = cached.query_count(&plan);
            assert_eq!(
                got_count, want_count,
                "{ctx}: {pass} count diverged for {plan}"
            );
        }
    }
}

fn build(
    policy: &MaintenancePolicy,
    cache: Option<Arc<ResultCache>>,
) -> (ConcurrentTable, TableWriter) {
    let mut it = IndexedTable::new(base_table(60)).with_policy(*policy);
    it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    it.add_index(
        1,
        Constraint::NearlySorted(SortDir::Asc),
        Design::Identifier,
    );
    match cache {
        Some(cache) => ConcurrentTable::with_result_cache(it, cache),
        None => ConcurrentTable::new(it),
    }
}

fn run_stream(ops: &[Op], policy: MaintenancePolicy) {
    let cache = Arc::new(ResultCache::new(ResultCache::DEFAULT_BUDGET));
    let (cached_handle, mut cached_writer) = build(&policy, Some(Arc::clone(&cache)));
    let (plain_handle, mut plain_writer) = build(&policy, None);

    // Held snapshots: (cached, plain) pairs pinned at an old epoch and
    // re-verified after later publishes refresh / invalidate entries.
    let mut held: Vec<(TableSnapshot, TableSnapshot)> = Vec::new();
    let mut next_key_c = [0i64; PARTS];
    let mut next_key_p = [0i64; PARTS];
    for (i, op) in ops.iter().enumerate() {
        apply(cached_writer.staging_mut(), op, &mut next_key_c);
        apply(plain_writer.staging_mut(), op, &mut next_key_p);
        if matches!(op, Op::Publish) {
            held.push((cached_handle.snapshot(), plain_handle.snapshot()));
            cached_writer.publish();
            plain_writer.publish();
        }
        let mut cs = cached_handle.snapshot();
        let mut ps = plain_handle.snapshot();
        verify_pair(&mut cs, &mut ps, &format!("op {i}"));
        // Every held pre-publish snapshot must keep answering with its
        // own epoch's bytes, cache entries notwithstanding.
        for (j, (cached, plain)) in held.iter_mut().enumerate() {
            verify_pair(cached, plain, &format!("op {i}, held {j}"));
        }
        if held.len() > 3 {
            held.remove(0);
        }
    }
    cached_writer.publish();
    plain_writer.publish();
    verify_pair(
        &mut cached_handle.snapshot(),
        &mut plain_handle.snapshot(),
        "final",
    );
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "the hot passes must actually hit: {stats:?}"
    );

    let mut it = cached_writer.into_inner();
    it.flush_maintenance();
    it.check_consistency();
}

fn eager() -> MaintenancePolicy {
    MaintenancePolicy::default()
}

fn deferred(flush_rows: usize) -> MaintenancePolicy {
    MaintenancePolicy {
        mode: MaintenanceMode::Deferred { flush_rows },
        ..MaintenancePolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Eager maintenance: cached answers are byte-identical to the
    // uncached twin at every step, hits included.
    #[test]
    fn cached_results_match_uncached_eager(
        ops in proptest::collection::vec(op_strategy(), 4..20),
    ) {
        run_stream(&ops, eager());
    }

    // Deferred maintenance: snapshots carry staged state (including
    // pending NUC masking on the read side) — the cache must key on the
    // *chosen* plan after masking and still match the uncached twin.
    #[test]
    fn cached_results_match_uncached_deferred(
        ops in proptest::collection::vec(op_strategy(), 4..20),
        flush_rows in prop_oneof![Just(4usize), Just(64), Just(usize::MAX)],
    ) {
        run_stream(&ops, deferred(flush_rows));
    }
}

/// A tiny byte budget forces constant eviction; correctness must be
/// unaffected (evictions cost speed, never answers).
#[test]
fn tiny_budget_still_answers_exactly() {
    let cache = Arc::new(ResultCache::new(1024));
    let policy = eager();
    let (cached_handle, mut cached_writer) = build(&policy, Some(Arc::clone(&cache)));
    let (plain_handle, mut plain_writer) = build(&policy, None);
    let mut nk_c = [0i64; PARTS];
    let mut nk_p = [0i64; PARTS];
    for round in 0..6 {
        let op = Op::Insert(vec![(round % PARTS, (round as i64 * 7) % VAL_POOL)]);
        apply(cached_writer.staging_mut(), &op, &mut nk_c);
        apply(plain_writer.staging_mut(), &op, &mut nk_p);
        cached_writer.publish();
        plain_writer.publish();
        verify_pair(
            &mut cached_handle.snapshot(),
            &mut plain_handle.snapshot(),
            &format!("round {round}"),
        );
    }
    let stats = cache.stats();
    assert!(
        stats.evicted > 0,
        "a 1KiB budget must evict under this mix: {stats:?}"
    );
}
