//! Observability-layer integration: lock-free metric invariants under a
//! real publish storm, and trace/registry agreement across the
//! snapshot/writer split.
//!
//! The central property (the observability PR's acceptance bar): **with
//! N reader threads hammering the same counters and histograms while a
//! writer publishes as fast as it can, no increment is ever lost and
//! every mid-storm snapshot is internally consistent** — histogram
//! `count` always equals its bucket sum (the torn-free Release/Acquire
//! pairing), quantiles are ordered, and counters never move backwards
//! between successive snapshots.

use patchindex::{ConcurrentTable, Constraint, Design, IndexedTable, PublishPolicy, ResultCache};
use pi_obs::{CacheOutcome, MetricsRegistry};
use pi_planner::{Plan, QueryEngine};
use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn base_table(parts: usize, rows: usize) -> Table {
    let mut t = Table::new(
        "obs",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
        parts,
        Partitioning::RoundRobin,
    );
    for pid in 0..parts {
        let base = (pid * rows) as i64;
        let keys: Vec<i64> = (base..base + rows as i64).collect();
        t.load_partition(pid, &[ColumnData::Int(keys.clone()), ColumnData::Int(keys)]);
    }
    t.propagate_all();
    t
}

fn observed_table(
    parts: usize,
    rows: usize,
) -> (
    Arc<MetricsRegistry>,
    patchindex::ConcurrentTable,
    patchindex::TableWriter,
) {
    let registry = Arc::new(MetricsRegistry::new());
    let cache = Arc::new(ResultCache::with_registry(
        ResultCache::DEFAULT_BUDGET,
        &registry,
    ));
    let mut it = IndexedTable::new(base_table(parts, rows));
    it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    let (handle, writer) =
        ConcurrentTable::with_observability(it, Some(cache), Arc::clone(&registry));
    (registry, handle, writer)
}

/// Scale via `PI_OBS_STRESS_THREADS` / `PI_OBS_STRESS_ITERS` (queries —
/// and direct metric bumps — per reader thread).
#[test]
fn storm_loses_no_increments_and_snapshots_stay_consistent() {
    let parts = 4;
    let rows = 2_000;
    let threads = env_usize("PI_OBS_STRESS_THREADS", 6);
    let per_thread = env_usize("PI_OBS_STRESS_ITERS", 250);

    let (registry, handle, mut writer) = observed_table(parts, rows);
    writer.set_publish_policy(PublishPolicy::every(1));
    let stop = AtomicBool::new(false);
    let plan = Plan::scan(vec![1]).limit(8);

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for t in 0..threads {
            let registry = &registry;
            let handle = &handle;
            let plan = &plan;
            readers.push(scope.spawn(move || {
                // Shared handles race across threads; the own counter
                // checks per-thread exactness independently.
                let shared = registry.counter("storm.shared");
                let own = registry.counter(&format!("storm.thread{t}"));
                let hist = registry.histogram("storm.hist");
                for i in 0..per_thread {
                    let mut snap = handle.snapshot();
                    assert!(!snap.query(plan).is_empty());
                    shared.inc();
                    own.inc();
                    hist.record(i as u64);
                }
            }));
        }
        let auditor = scope.spawn(|| {
            let mut last_shared = 0u64;
            let mut last_count = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let shared = registry.counter("storm.shared").get();
                let hist = registry.histogram("storm.hist").snapshot();
                assert!(shared >= last_shared, "counter moved backwards");
                assert!(hist.count >= last_count, "histogram lost observations");
                let (p50, p90, p99) = (hist.quantile(0.5), hist.quantile(0.9), hist.quantile(0.99));
                assert!(
                    p50 <= p90 && p90 <= p99 && p99 <= hist.max.max(p99),
                    "quantiles must be ordered"
                );
                let json = registry.snapshot_json();
                assert!(
                    json.contains("\"counters\"") && json.contains("\"histograms\""),
                    "snapshot_json must render mid-storm"
                );
                last_shared = shared;
                last_count = hist.count;
            }
        });
        // The publish storm: copy-on-write publish per statement while
        // every reader snapshot races the epoch swaps.
        let mut step = 0usize;
        while readers.iter().any(|r| !r.is_finished()) {
            let rid = step % rows;
            writer.modify(parts - 1, &[rid], 1, &[Value::Int((step % 97) as i64)]);
            step += 1;
        }
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
        auditor.join().expect("auditor thread panicked");
    });

    // No lost increments, anywhere.
    let total = (threads * per_thread) as u64;
    assert_eq!(registry.counter("storm.shared").get(), total);
    for t in 0..threads {
        assert_eq!(
            registry.counter(&format!("storm.thread{t}")).get(),
            per_thread as u64
        );
    }
    let hist = registry.histogram("storm.hist").snapshot();
    assert_eq!(hist.count, total);
    assert_eq!(hist.max, per_thread as u64 - 1);
    // The engine counted every reader query exactly once, and the
    // latency histogram agrees with the counter.
    assert_eq!(registry.counter("engine.queries").get(), total);
    assert_eq!(
        registry.histogram("engine.query_nanos").snapshot().count,
        total
    );
    // The storm actually published, and each publish was metered.
    let publishes = registry.counter("publish.count").get();
    assert!(publishes > 0, "the writer must have published");
    assert_eq!(
        registry.histogram("publish.nanos").snapshot().count,
        publishes
    );
}

/// EXPLAIN ANALYZE across the snapshot/writer split: the trace's cache
/// outcome follows the miss → hit → invalidated-miss lifecycle, traced
/// answers stay byte-identical to untraced ones on the same snapshot,
/// and the registry's cache counters agree with the trace outcomes.
#[test]
fn traces_follow_the_cache_lifecycle_across_publishes() {
    let parts = 3;
    let rows = 500;
    let (registry, handle, mut writer) = observed_table(parts, rows);
    writer.set_publish_policy(PublishPolicy::every(1));
    let plan = Plan::scan(vec![1]).sort(vec![(0, pi_exec::ops::sort::SortOrder::Asc)]);

    let mut snap = handle.snapshot();
    let (cold, trace) = snap.query_traced(&plan);
    assert_eq!(trace.cache, Some(CacheOutcome::Miss));
    assert!(!trace.operators.is_empty());
    assert_eq!(trace.partitions_total, parts);
    assert_eq!(
        trace.partitions_visited + trace.partitions_pruned,
        parts as u64
    );
    assert_eq!(trace.rows_out as usize, cold.column(0).as_int().len());

    // Same snapshot again: served from cache, byte-identically.
    let (hit, trace) = snap.query_traced(&plan);
    assert_eq!(trace.cache, Some(CacheOutcome::Hit));
    assert!(trace.operators.is_empty());
    assert_eq!(hit.column(0).as_int(), cold.column(0).as_int());
    assert_eq!(
        snap.query(&plan).column(0).as_int(),
        cold.column(0).as_int()
    );

    // Publish new data: the next snapshot's trace must miss (the entry
    // was invalidated), execute, and see the new row.
    writer.insert(&[vec![Value::Int(9_999), Value::Int(9_999)]]);
    let mut snap = handle.snapshot();
    let (fresh, trace) = snap.query_traced(&plan);
    assert_eq!(trace.cache, Some(CacheOutcome::Miss));
    assert_eq!(
        fresh.column(0).as_int().len(),
        cold.column(0).as_int().len() + 1
    );
    // Hits: the traced hit plus the untraced re-query of the same
    // snapshot. Misses: the cold trace and the post-publish trace.
    assert!(registry.counter("publish.count").get() >= 1);
    assert_eq!(registry.counter("cache.hits").get(), 2);
    assert_eq!(registry.counter("cache.misses").get(), 2);

    // The rendered forms carry the outcome for humans and machines.
    assert!(trace.render_text().contains("miss"));
    assert!(trace.to_json().contains("\"cache\""));
}
