//! Cross-partition NUC soundness: the exactness audit of PR 5 promoted
//! to first-class regression and property tests.
//!
//! The NUC distinct rewrite unions per-partition kept flows without an
//! outer dedup, so it is only exact if kept values are *globally*
//! unique. Discovery (create and recompute) therefore merges a
//! cross-partition residual — every occurrence of a value present in
//! more than one partition — into the local patch sets. These tests
//! drive adversarial duplicate pools that straddle partitions through
//! create, incremental maintenance, mid-stream recompute (eager and
//! deferred, both designs) and the snapshot path, always comparing
//! against a byte-identical index-free replay.

use patchindex::{
    ConcurrentTable, Constraint, Design, IndexedTable, MaintenanceMode, MaintenancePolicy,
    PublishPolicy,
};
use pi_planner::{execute_count, rewrite, Plan, QueryEngine, NO_INDEXES};
use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};
use proptest::prelude::*;

/// A table whose value column is loaded verbatim per partition (the
/// create-time discovery path); keys are globally unique.
fn table_of(parts: &[Vec<i64>]) -> Table {
    let mut t = Table::new(
        "xp",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
        parts.len(),
        Partitioning::RoundRobin,
    );
    let mut key = 0i64;
    for (pid, vals) in parts.iter().enumerate() {
        let keys: Vec<i64> = vals
            .iter()
            .map(|_| {
                key += 1;
                key
            })
            .collect();
        t.load_partition(pid, &[ColumnData::Int(keys), ColumnData::Int(vals.clone())]);
    }
    t.propagate_all();
    t
}

fn deferred() -> MaintenancePolicy {
    MaintenancePolicy {
        mode: MaintenanceMode::Deferred {
            flush_rows: usize::MAX,
        },
        ..MaintenancePolicy::default()
    }
}

fn distinct_plan() -> Plan {
    Plan::scan(vec![1]).distinct(vec![0])
}

/// The tombstone for the partition-local discovery bug: values kept in
/// several partitions (42) or kept in one and patched in another (7)
/// must all be patched, or the Figure-2 union — which has no outer
/// distinct — overcounts. With the cross-partition residual reverted,
/// the forced rewrite counts 7 instead of 5 here.
#[test]
fn create_time_cross_partition_duplicates_do_not_overcount_distinct() {
    let parts = vec![vec![42, 1, 7, 7], vec![42, 2], vec![3, 7]];
    let mut it = IndexedTable::new(table_of(&parts));
    let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    it.check_consistency();

    let plan = distinct_plan();
    let reference = execute_count(&plan, it.table(), NO_INDEXES);
    assert_eq!(reference, 5); // {42, 1, 7, 2, 3}
                              // Force the structural rewrite (no cost gate): exact only if every
                              // occurrence of 42 and 7 is patched.
    let chosen = rewrite(plan.clone(), &it.catalog().indexes[slot]);
    assert!(chosen.to_string().contains("PatchScan"), "{chosen}");
    assert_eq!(execute_count(&chosen, it.table(), it.indexes()), reference);
    // The facade agrees.
    assert_eq!(it.query_count(&plan), reference);
}

/// Incremental maintenance already keeps cross-partition pools patched;
/// a recompute (full rediscovery) must not lose them again.
#[test]
fn recompute_rediscovers_cross_partition_pools() {
    let parts = vec![vec![10, 11], vec![20, 21], vec![30, 31]];
    let mut it = IndexedTable::new(table_of(&parts));
    let slot = it.add_index(1, Constraint::NearlyUnique, Design::Identifier);
    // Spread the value 10 across all three partitions.
    it.modify(1, &[0], 1, &[Value::Int(10)]);
    it.modify(2, &[1], 1, &[Value::Int(10)]);
    it.check_consistency();

    it.recompute_index(slot);
    it.check_consistency();
    let plan = distinct_plan();
    let reference = execute_count(&plan, it.table(), NO_INDEXES);
    assert_eq!(reference, 4); // {10, 11, 21, 30}
    let chosen = rewrite(plan.clone(), &it.catalog().indexes[slot]);
    assert_eq!(execute_count(&chosen, it.table(), it.indexes()), reference);
}

#[derive(Debug, Clone)]
enum XOp {
    /// Insert rows whose values are drawn from a tiny pool, so RoundRobin
    /// routing scatters duplicates across partitions.
    Insert(Vec<i64>),
    Recompute,
    Flush,
    /// Publish an epoch (a flush on the owner path, which has no epochs).
    Publish,
}

fn xop() -> impl Strategy<Value = XOp> {
    prop_oneof![
        proptest::collection::vec(-8i64..8, 1..6).prop_map(XOp::Insert),
        proptest::collection::vec(-8i64..8, 1..6).prop_map(XOp::Insert),
        proptest::collection::vec(-8i64..8, 1..6).prop_map(XOp::Insert),
        Just(XOp::Recompute),
        Just(XOp::Flush),
        Just(XOp::Publish),
    ]
}

/// Seed partitions containing a straddling pool (0 in partitions 0 and
/// 2) right from creation.
fn seed_parts() -> Vec<Vec<i64>> {
    vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 0]]
}

fn rows_for(vals: &[i64], next_key: &mut i64) -> Vec<Vec<Value>> {
    vals.iter()
        .map(|&v| {
            *next_key += 1;
            vec![Value::Int(*next_key), Value::Int(v)]
        })
        .collect()
}

/// Drives one op stream through an owner-path [`IndexedTable`], checking
/// the facade against the index-free replay after every op.
fn run_owner(ops: &[XOp], use_deferred: bool, design: Design) {
    let mut it = IndexedTable::new(table_of(&seed_parts()));
    if use_deferred {
        it = it.with_policy(deferred());
    }
    let slot = it.add_index(1, Constraint::NearlyUnique, design);
    let plan = distinct_plan();
    let mut next_key = 1_000i64;
    for op in ops {
        match op {
            XOp::Insert(vals) => {
                it.insert(&rows_for(vals, &mut next_key));
            }
            XOp::Recompute => it.recompute_index(slot),
            XOp::Flush | XOp::Publish => it.flush_maintenance(),
        }
        let reference = execute_count(&plan, it.table(), NO_INDEXES);
        assert_eq!(it.query_count(&plan), reference, "ops: {ops:?}");
    }
    it.flush_maintenance();
    it.check_consistency();
    // The flushed structural rewrite (no cost gate) is exact too.
    let reference = execute_count(&plan, it.table(), NO_INDEXES);
    let chosen = rewrite(plan, &it.catalog().indexes[slot]);
    assert_eq!(execute_count(&chosen, it.table(), it.indexes()), reference);
}

/// The same stream through the snapshot path: the writer mutates and
/// recomputes (with statement-paced auto-publish), readers pull
/// snapshots and must stay exact at every epoch.
fn run_concurrent(ops: &[XOp], design: Design) {
    let it = IndexedTable::new(table_of(&seed_parts())).with_policy(deferred());
    let (handle, mut writer) = ConcurrentTable::new(it);
    writer.set_publish_policy(PublishPolicy::every(2).and_after_flush());
    let slot = writer.add_index(1, Constraint::NearlyUnique, design);
    let plan = distinct_plan();
    let mut next_key = 10_000i64;
    for op in ops {
        match op {
            XOp::Insert(vals) => {
                writer.insert(&rows_for(vals, &mut next_key));
            }
            XOp::Recompute => writer.recompute_index(slot),
            XOp::Flush => writer.flush_maintenance(),
            XOp::Publish => {
                writer.publish();
            }
        }
        let mut snap = handle.snapshot();
        let reference = execute_count(&plan, snap.table(), NO_INDEXES);
        assert_eq!(snap.query_count(&plan), reference, "ops: {ops:?}");
    }
    writer.publish_flushed();
    let snap = handle.snapshot();
    snap.check_consistency();
    let reference = execute_count(&plan, snap.table(), NO_INDEXES);
    let chosen = rewrite(plan, &snap.catalog().indexes[slot]);
    assert_eq!(
        execute_count(&chosen, snap.table(), snap.indexes()),
        reference
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn adversarial_streams_stay_exact_eager_bitmap(
        ops in proptest::collection::vec(xop(), 1..10),
    ) {
        run_owner(&ops, false, Design::Bitmap);
    }

    #[test]
    fn adversarial_streams_stay_exact_eager_identifier(
        ops in proptest::collection::vec(xop(), 1..10),
    ) {
        run_owner(&ops, false, Design::Identifier);
    }

    #[test]
    fn adversarial_streams_stay_exact_deferred_bitmap(
        ops in proptest::collection::vec(xop(), 1..10),
    ) {
        run_owner(&ops, true, Design::Bitmap);
    }

    #[test]
    fn adversarial_streams_stay_exact_deferred_identifier(
        ops in proptest::collection::vec(xop(), 1..10),
    ) {
        run_owner(&ops, true, Design::Identifier);
    }

    #[test]
    fn adversarial_streams_stay_exact_through_snapshots(
        ops in proptest::collection::vec(xop(), 1..10),
    ) {
        run_concurrent(&ops, Design::Bitmap);
    }
}

/// Seeded stress lane (CI runs it with `PI_XPART_ITERS` raised): longer
/// random streams through every configuration.
#[test]
fn stress_cross_partition_recompute() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let iters: usize = std::env::var("PI_XPART_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let mut rng = SmallRng::seed_from_u64(0x0C0FFEE);
    for _ in 0..iters {
        let ops: Vec<XOp> = (0..rng.gen_range(8..24))
            .map(|_| match rng.gen_range(0..7) {
                0 => XOp::Recompute,
                1 => XOp::Flush,
                2 => XOp::Publish,
                _ => {
                    let n = rng.gen_range(1..8);
                    XOp::Insert((0..n).map(|_| rng.gen_range(-10i64..10)).collect())
                }
            })
            .collect();
        for design in [Design::Bitmap, Design::Identifier] {
            run_owner(&ops, false, design);
            run_owner(&ops, true, design);
            run_concurrent(&ops, design);
        }
    }
}
