//! Cross-crate integration test helpers.
//!
//! The actual tests live in `tests/tests/`; this crate only hosts shared
//! fixtures so every integration test builds the same workloads.

use pi_datagen::{generate, MicroDataset, MicroKind, MicroSpec};

/// A small but non-trivial microbenchmark dataset.
pub fn micro(rows: usize, e: f64, kind: MicroKind) -> MicroDataset {
    generate(&MicroSpec::new(rows, e, kind).with_partitions(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_has_three_partitions() {
        let ds = micro(3_000, 0.1, MicroKind::Nuc);
        assert_eq!(ds.table.partition_count(), 3);
    }
}
