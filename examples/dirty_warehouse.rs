//! A data-warehouse scenario with unclean integrated data (the paper's
//! motivation): customer records merged from several source systems where
//! the email column is *nearly* unique — duplicates exist because the same
//! person appears in multiple sources.
//!
//! Shows: the advisor auto-creating the NUC index from query-log plus
//! reservoir-sample evidence, the rewritten DISTINCT query, trickle
//! inserts with collision detection via dynamic range propagation, the
//! per-index error `e` and drift-rate monitoring behind the advisor's
//! decisions, the observability surface (an EXPLAIN ANALYZE trace of
//! the rewritten query plus a metrics-registry dump), and the
//! comparison against a materialized view.
//!
//! Run with `cargo run --release --example dirty_warehouse`.

use std::time::Instant;

use patchindex::IndexedTable;
use pi_advisor::{Advisor, AdvisorConfig};
use pi_baselines::DistinctView;
use pi_datagen::{generate, update_rows, MicroKind, MicroSpec};
use pi_obs::MetricsRegistry;
use pi_planner::{execute_count, Plan, QueryEngine, NO_INDEXES};

fn main() {
    // 200K integrated customer records, 3% of which collide with another
    // source system's records.
    let rows = 200_000;
    let ds = generate(&MicroSpec::new(rows, 0.03, MicroKind::Nuc));
    let mut wh = IndexedTable::new(ds.table);
    // One registry for the whole process; the advisor mirrors its
    // lifecycle actions onto it, and the final dump shows everything.
    let registry = MetricsRegistry::new();
    let mut advisor = Advisor::with_metrics(
        AdvisorConfig {
            // Integrated data is dirty by nature; 3% duplicates must not
            // block the index that serves the nightly dedup report.
            create_threshold: 0.9,
            ..AdvisorConfig::default()
        },
        &registry,
    );

    // The nightly report keeps asking "how many distinct customers?".
    let plan = Plan::scan(vec![1]).distinct(vec![0]);
    let reference = execute_count(&plan, wh.table(), NO_INDEXES);
    for _ in 0..3 {
        assert_eq!(wh.query_count(&plan), reference);
    }
    // One advisor step sees the query log + the id column's sampled
    // match fraction and materializes the NUC index on its own.
    let t = Instant::now();
    for action in advisor.step(&mut wh) {
        println!("advisor: {}", action.describe());
    }
    let slot = 0;
    assert_eq!(
        wh.indexes().len(),
        1,
        "the advisor should have created the index"
    );
    println!(
        "auto-created in {:.1} ms: {} duplicates over {rows} rows (e = {:.4})",
        t.elapsed().as_secs_f64() * 1e3,
        wh.index(slot).exception_count(),
        wh.index(slot).match_fraction(),
    );

    // Reference vs the rewritten plan the facade now picks.
    let t = Instant::now();
    let n_ref = execute_count(&plan, wh.table(), NO_INDEXES);
    let t_ref = t.elapsed();
    let t = Instant::now();
    let with_pi = wh.query_count(&plan);
    let t_pi = t.elapsed();
    assert_eq!(n_ref, with_pi);
    println!(
        "distinct customers: {n_ref} | reference {:.1} ms, PatchIndex {:.1} ms ({:.1}x)",
        t_ref.as_secs_f64() * 1e3,
        t_pi.as_secs_f64() * 1e3,
        t_ref.as_secs_f64() / t_pi.as_secs_f64().max(1e-9)
    );

    // EXPLAIN ANALYZE on the nightly report: executes for real and
    // shows the exclude/use-patches rewrite, planner counters, and
    // per-operator wall clock — the same trace a serving layer would log.
    let trace = wh.explain_analyze(&plan);
    println!("\nEXPLAIN ANALYZE of the nightly report:");
    println!("{}", trace.render_text());

    // Nightly trickle load: 500 new records, some colliding.
    let new_rows = update_rows(rows, MicroKind::Nuc, 500, 7);
    let before = wh.index(slot).exception_count();
    let t = Instant::now();
    wh.insert(&new_rows);
    let t_pi_ins = t.elapsed();
    let idx = wh.index(slot);
    println!(
        "inserted 500 records in {:.1} ms; {} new collision patches | \
         e = {:.4} (create-time {:.4}), drift {:.4} patches/maintained row",
        t_pi_ins.as_secs_f64() * 1e3,
        idx.exception_count() - before,
        idx.match_fraction(),
        idx.baseline().match_fraction,
        idx.drift_rate(),
    );

    // The drift is tiny, so the next advisor step holds still.
    let actions = advisor.step(&mut wh);
    println!(
        "advisor after the load: {}",
        if actions.is_empty() {
            "no action (drift within margin, queries keep paying)".to_string()
        } else {
            actions
                .iter()
                .map(|a| a.describe())
                .collect::<Vec<_>>()
                .join("; ")
        }
    );

    // The materialized-view alternative must recompute on every refresh.
    let mut view = DistinctView::create(wh.table(), 1);
    let t = Instant::now();
    view.refresh(wh.table());
    println!(
        "materialized view refresh after the same load: {:.1} ms ({}x the PatchIndex maintenance)",
        t.elapsed().as_secs_f64() * 1e3,
        (t.elapsed().as_secs_f64() / t_pi_ins.as_secs_f64().max(1e-9)) as u64
    );

    wh.check_consistency();
    println!("index consistent");

    // Exit with the observability dump: every advisor decision made
    // above is mirrored on the process-wide registry.
    println!("\nmetrics registry at exit:");
    print!("{}", registry.render_text());
}
