//! A data-warehouse scenario with unclean integrated data (the paper's
//! motivation): customer records merged from several source systems where
//! the email column is *nearly* unique — duplicates exist because the same
//! person appears in multiple sources.
//!
//! Shows: NUC discovery, the rewritten DISTINCT query, trickle inserts with
//! collision detection via dynamic range propagation, and the comparison
//! against a materialized view under updates.
//!
//! Run with `cargo run --release --example dirty_warehouse`.

use std::time::Instant;

use patchindex::{Constraint, Design, IndexedTable};
use pi_baselines::DistinctView;
use pi_datagen::{generate, update_rows, MicroKind, MicroSpec};
use pi_planner::{execute_count, Plan, QueryEngine};

fn main() {
    // 200K integrated customer records, 3% of which collide with another
    // source system's records.
    let rows = 200_000;
    let ds = generate(&MicroSpec::new(rows, 0.03, MicroKind::Nuc));
    let mut wh = IndexedTable::new(ds.table);

    let t = Instant::now();
    let slot = wh.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
    println!(
        "discovered NUC on the id column in {:.1} ms: {} duplicates over {rows} rows (e = {:.2}%)",
        t.elapsed().as_secs_f64() * 1e3,
        wh.index(slot).exception_count(),
        wh.index(slot).exception_rate() * 100.0
    );

    // How many distinct customers? Reference vs the QueryEngine facade
    // (catalog snapshot -> cost-gated rewrite -> pruned lowering).
    let plan = Plan::scan(vec![1]).distinct(vec![0]);
    let t = Instant::now();
    let reference = execute_count(&plan, wh.table(), &[]);
    let t_ref = t.elapsed();
    let t = Instant::now();
    let with_pi = wh.query_count(&plan);
    let t_pi = t.elapsed();
    assert_eq!(reference, with_pi);
    println!(
        "distinct customers: {reference} | reference {:.1} ms, PatchIndex {:.1} ms ({:.1}x)",
        t_ref.as_secs_f64() * 1e3,
        t_pi.as_secs_f64() * 1e3,
        t_ref.as_secs_f64() / t_pi.as_secs_f64().max(1e-9)
    );

    // Nightly trickle load: 500 new records, some colliding.
    let new_rows = update_rows(rows, MicroKind::Nuc, 500, 7);
    let before = wh.index(slot).exception_count();
    let t = Instant::now();
    wh.insert(&new_rows);
    let t_pi_ins = t.elapsed();
    println!(
        "inserted 500 records in {:.1} ms; {} new collision patches",
        t_pi_ins.as_secs_f64() * 1e3,
        wh.index(slot).exception_count() - before
    );

    // The materialized-view alternative must recompute on every refresh.
    let mut view = DistinctView::create(wh.table(), 1);
    let t = Instant::now();
    view.refresh(wh.table());
    println!(
        "materialized view refresh after the same load: {:.1} ms ({}x the PatchIndex maintenance)",
        t.elapsed().as_secs_f64() * 1e3,
        (t.elapsed().as_secs_f64() / t_pi_ins.as_secs_f64().max(1e-9)) as u64
    );

    wh.check_consistency();
    println!("index consistent");
}
