//! Serve quickstart: start a 2-shard `pi-server`, talk to it over TCP
//! with the framed reference client, trip the backpressure path, and
//! read the metrics document — the worked transcript of
//! `docs/WIRE_PROTOCOL.md` as runnable code.
//!
//! Run with `cargo run --release --example serve_quickstart`.

use pi_server::{body_lines, header, header_field, Client, Server, ServerConfig};
use pi_storage::{DataType, Field, Schema};

fn main() {
    // 1. A 2-shard server over empty tables. Rows hash-route to a shard
    //    by column 0 (`route_col`); each shard has its own writer
    //    thread, result cache and metrics registry. The tiny queue is
    //    just to make the backpressure demo below deterministic.
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("temp", DataType::Int),
    ]);
    let cfg = ServerConfig {
        shards: 2,
        queue_capacity: 4,
        ..ServerConfig::default()
    };
    let server = Server::empty(cfg, schema, 2).expect("bind 127.0.0.1:0");
    println!("serving on {}", server.addr());

    // 2. The framed wire mode, via the reference client. Every command
    //    is one `<len>\n<payload>` frame out, one frame back; `nc` users
    //    get the same commands in line mode (see docs/WIRE_PROTOCOL.md).
    let mut c = Client::connect(server.addr()).expect("connect");
    println!("PING        -> {}", c.request("PING").unwrap());

    // 3. INSERT routes rows to shards and acks with per-shard statement
    //    sequence numbers; PUBLISH is the write barrier that makes every
    //    acknowledged statement visible to new snapshots.
    let resp = c.request("INSERT 1,10;2,20;3,30;4,40;5,50").unwrap();
    println!("INSERT      -> {resp}");
    println!("PUBLISH     -> {}", c.request("PUBLISH").unwrap());

    // 4. Queries fan out to every shard's consistent snapshot and merge
    //    canonically — the response is byte-identical at any shard
    //    count, and its `epochs` field names the exact statement prefix
    //    (epoch@seq per shard) it reflects.
    let resp = c.request("QUERY scan 1 | sort 0:desc | limit 3").unwrap();
    println!("QUERY       -> {}", header(&resp));
    println!("  top temps    {:?}", body_lines(&resp));
    println!(
        "  reflects     epochs={}",
        header_field(&resp, "epochs").unwrap()
    );
    println!("COUNT       -> {}", c.request("COUNT scan 0").unwrap());

    // 5. Backpressure: park shard 0's writer (a test hook), fill its
    //    4-slot queue, and watch admission control reject the fifth
    //    statement with ServerBusy instead of blocking the connection.
    let hold = server.hold_shard(0);
    let mut admitted = 0;
    let mut rejection = String::new();
    for i in 0..32 {
        let resp = c.request(&format!("INSERT {},{}", 6 + i, 60 + i)).unwrap();
        if resp.starts_with("OK") {
            admitted += 1;
        } else if resp.starts_with("ERR ServerBusy") {
            rejection = resp;
            break;
        }
    }
    println!("\nheld shard 0: {admitted} inserts admitted, then:");
    println!("  {rejection}");
    drop(hold); // release the writer; the queued statements now apply
    let publish = loop {
        // The freed writer may still be draining the full queue, so even
        // the publish control message can bounce with ServerBusy — the
        // client owns the retry.
        let resp = c.request("PUBLISH").unwrap();
        if resp.starts_with("OK") {
            break resp;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    println!("PUBLISH     -> {publish}");
    println!("COUNT       -> {}", c.request("COUNT scan 0").unwrap());

    // 6. Observability: METRICS is the server registry plus every
    //    shard's engine registry as one JSON document.
    let metrics = c.request("METRICS").unwrap();
    for key in ["server.requests", "server.busy_rejections", "cache.misses"] {
        let val = metrics
            .split(&format!("\"{key}\": "))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .unwrap_or("?");
        println!("metric {key:24} = {val}");
    }

    // 7. Graceful shutdown drains every acknowledged statement through a
    //    final flush + publish before the sockets close.
    server.shutdown();
    println!("\nshut down cleanly");
}
