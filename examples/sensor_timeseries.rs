//! Nearly sorted sensor data: a time-series table where readings arrive
//! mostly in timestamp order, but late-arriving measurements break the
//! perfect sort order (a classic HTAP freshness scenario from the paper's
//! introduction).
//!
//! Shows: NSC over a timestamp column, the Merge-based ORDER BY rewrite,
//! continuous out-of-order ingestion with sorted-run extension, and the
//! exception-rate monitoring policy triggering a recomputation.
//!
//! Run with `cargo run --release --example sensor_timeseries`.

use std::time::Instant;

use patchindex::{Constraint, Design, IndexedTable, MaintenancePolicy, SortDir};
use pi_datagen::{generate, MicroKind, MicroSpec};
use pi_exec::ops::sort::SortOrder;
use pi_planner::{execute_count, Plan, QueryEngine};
use pi_storage::Value;

fn main() {
    // 150K readings, 2% arrived late (out of order).
    let rows = 150_000;
    let ds = generate(&MicroSpec::new(rows, 0.02, MicroKind::Nsc));
    let mut ts = IndexedTable::new(ds.table).with_policy(MaintenancePolicy {
        max_exception_rate: 0.25,
        condense_threshold: 0.5,
        auto: true,
        ..MaintenancePolicy::default()
    });
    let slot = ts.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
    println!(
        "NSC on ts: {} late readings (e = {:.2}%)",
        ts.index(slot).exception_count(),
        ts.index(slot).exception_rate() * 100.0
    );

    // ORDER BY ts: the excluding flow is already sorted, only the late
    // readings pass through the sort operator.
    let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
    let t = Instant::now();
    let n_ref = execute_count(&plan, ts.table(), &[]);
    let t_ref = t.elapsed();
    let t = Instant::now();
    let n_pi = ts.query_count(&plan);
    let t_pi = t.elapsed();
    assert_eq!(n_ref, n_pi);
    println!(
        "ORDER BY over {n_ref} rows: reference {:.1} ms, PatchIndex {:.1} ms ({:.1}x)",
        t_ref.as_secs_f64() * 1e3,
        t_pi.as_secs_f64() * 1e3,
        t_ref.as_secs_f64() / t_pi.as_secs_f64().max(1e-9)
    );

    // Live ingestion: batches alternate between in-order data (extending
    // the sorted run) and bursts of late arrivals.
    let mut next_ts = 2 * rows as i64 + 10;
    let mut next_key = rows as i64;
    for batch_no in 0..6 {
        let burst = batch_no % 3 == 2;
        let rows_batch: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                next_key += 1;
                let v = if burst {
                    // Late data: timestamps far in the past.
                    (i * 17) % 1000
                } else {
                    next_ts += 2;
                    next_ts
                };
                vec![Value::Int(next_key), Value::Int(v)]
            })
            .collect();
        ts.insert(&rows_batch);
        println!(
            "batch {batch_no} ({}) -> e = {:.2}%",
            if burst { "late burst" } else { "in order" },
            ts.index(slot).exception_rate() * 100.0
        );
    }
    // The auto policy keeps e below 25% by recomputing when needed.
    assert!(ts.index(slot).exception_rate() <= 0.25);
    ts.check_consistency();
    println!("index consistent, policy kept e <= 25%");
}
