//! Nearly sorted sensor data: a time-series table where readings arrive
//! mostly in timestamp order, but late-arriving measurements break the
//! perfect sort order (a classic HTAP freshness scenario from the paper's
//! introduction).
//!
//! Shows: the advisor auto-creating the NSC index from ORDER-BY query
//! evidence, the Merge-based rewrite, a clock-glitch burst that wrecks
//! the sorted-run anchor so that *every* following in-order batch gets
//! patched (pure lost optimality), the per-index error `e` and drift
//! surfaced batch by batch, and the advisor's drift-triggered recompute
//! restoring `e` to create-time levels.
//!
//! Run with `cargo run --release --example sensor_timeseries`.

use std::time::Instant;

use patchindex::{Constraint, IndexedTable, SortDir};
use pi_advisor::{Advisor, AdvisorAction, AdvisorConfig};
use pi_datagen::{generate, MicroKind, MicroSpec};
use pi_exec::ops::sort::SortOrder;
use pi_planner::{execute_count, Plan, QueryEngine, NO_INDEXES};
use pi_storage::Value;

fn main() {
    // 60K readings, 2% arrived late (out of order).
    let rows = 60_000;
    let ds = generate(&MicroSpec::new(rows, 0.02, MicroKind::Nsc));
    let mut ts = IndexedTable::new(ds.table);
    let mut advisor = Advisor::new(AdvisorConfig {
        recompute_margin: 0.05,
        ..AdvisorConfig::default()
    });

    // Dashboards keep ordering by timestamp; the advisor watches.
    let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
    let n_ref = execute_count(&plan, ts.table(), NO_INDEXES);
    for _ in 0..3 {
        assert_eq!(ts.query_count(&plan), n_ref);
    }
    for action in advisor.step(&mut ts) {
        println!("advisor: {}", action.describe());
    }
    assert_eq!(
        ts.indexes().len(),
        1,
        "the advisor should have created the NSC index"
    );
    let slot = 0;
    assert_eq!(
        ts.index(slot).constraint(),
        Constraint::NearlySorted(SortDir::Asc)
    );
    let e_create = ts.index(slot).match_fraction();
    println!(
        "NSC on ts: {} late readings (e = {:.4} at creation)",
        ts.index(slot).exception_count(),
        e_create
    );

    // ORDER BY ts: the excluding flow is already sorted, only the late
    // readings pass through the sort operator.
    let t = Instant::now();
    assert_eq!(execute_count(&plan, ts.table(), NO_INDEXES), n_ref);
    let t_ref = t.elapsed();
    let t = Instant::now();
    assert_eq!(ts.query_count(&plan), n_ref);
    let t_pi = t.elapsed();
    println!(
        "ORDER BY over {n_ref} rows: reference {:.1} ms, PatchIndex {:.1} ms ({:.1}x)",
        t_ref.as_secs_f64() * 1e3,
        t_pi.as_secs_f64() * 1e3,
        t_ref.as_secs_f64() / t_pi.as_secs_f64().max(1e-9)
    );

    // Live ingestion. Before batch 2 a rogue sensor sends one reading
    // with a far-future timestamp as its own statement: the sorted-run
    // extension (which only sees that one statement) extends the anchor
    // to it, so every later in-order reading of that partition lands
    // *below* the anchor and gets patched — the data is still nearly
    // sorted, the index has merely lost optimality. Drift-rate
    // monitoring makes that visible, and the advisor's recompute (a
    // fresh global LIS that patches the rogue reading instead) repairs
    // it.
    let mut next_ts = 2 * rows as i64 + 10;
    let mut next_key = rows as i64;
    let mut recomputed = false;
    for batch_no in 0..6 {
        let glitch = batch_no == 2;
        if glitch {
            next_key += 1;
            ts.insert(&[vec![Value::Int(next_key), Value::Int(1_000_000_000)]]);
        }
        let rows_batch: Vec<Vec<Value>> = (0..2_000)
            .map(|_| {
                next_key += 1;
                next_ts += 2;
                vec![Value::Int(next_key), Value::Int(next_ts)]
            })
            .collect();
        ts.insert(&rows_batch);
        let inserted = (next_key - rows as i64) as usize;
        assert_eq!(ts.query_count(&plan), n_ref + inserted);
        let idx = ts.index(slot);
        println!(
            "batch {batch_no}{} -> e = {:.4} (create-time {:.4}), drift {:.4} patches/row",
            if glitch { " (clock glitch)" } else { "" },
            idx.match_fraction(),
            idx.baseline().match_fraction,
            idx.drift_rate(),
        );
        for action in advisor.step(&mut ts) {
            println!("advisor: {}", action.describe());
            if let AdvisorAction::Recomputed {
                e_before, e_after, ..
            } = action
            {
                recomputed = true;
                assert!(e_after > e_before);
            }
        }
    }
    assert!(
        recomputed,
        "the glitch drift should have triggered a recompute"
    );
    let e_final = ts.index(slot).match_fraction();
    assert!(
        e_final > e_create - 0.05,
        "recompute should restore e near create-time levels ({e_final:.4} vs {e_create:.4})"
    );
    ts.check_consistency();
    println!(
        "index consistent, advisor kept e at {:.4} (create-time {:.4})",
        e_final, e_create
    );
}
