//! Constraint drift: a dataset that is *perfectly* constrained today may
//! become approximate tomorrow (paper, Section 6.3: "even if a dataset is
//! clean at a point in time, it may become unclean in the future by update
//! operations. While these updates would be aborted with the definition of
//! usual constraints, PatchIndexes allow the updates and the respective
//! transition from a perfect constraint to an approximate constraint").
//!
//! Shows: a perfect unique column accepting violating inserts, the
//! checkpoint/recovery cycle, and the sharded bitmap condensing after
//! heavy deletes.
//!
//! Run with `cargo run --release --example constraint_drift`.

use patchindex::{Constraint, Design, IndexedTable, PatchIndex};
use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};

fn main() {
    // A registry of serial numbers — unique by design.
    let mut table = Table::new(
        "registry",
        Schema::new(vec![Field::new("serial", DataType::Int)]),
        1,
        Partitioning::RoundRobin,
    );
    table.load_partition(0, &[ColumnData::Int((0..50_000).collect())]);
    table.propagate_all();

    let mut reg = IndexedTable::new(table);
    let slot = reg.add_index(0, Constraint::NearlyUnique, Design::Bitmap);
    assert_eq!(reg.index(slot).exception_count(), 0);
    println!("perfect uniqueness at definition time (0 exceptions)");

    // A bad upstream batch re-sends existing serials. A UNIQUE constraint
    // would abort; the PatchIndex absorbs the violations as patches.
    let dupes: Vec<Vec<Value>> = (0..200).map(|i| vec![Value::Int(i * 3)]).collect();
    reg.insert(&dupes);
    println!(
        "after a duplicate-laden batch: {} exceptions (e = {:.3}%) — updates not aborted",
        reg.index(slot).exception_count(),
        reg.index(slot).exception_rate() * 100.0
    );
    reg.check_consistency();

    // Checkpoint the index, "crash", and recover both ways.
    let path = std::env::temp_dir().join("registry.pidx");
    reg.index(slot).checkpoint(&path).expect("checkpoint");
    let restored = PatchIndex::load_checkpoint(&path).expect("load");
    assert_eq!(
        restored.exception_count(),
        reg.index(slot).exception_count()
    );
    println!(
        "checkpoint/restore roundtrip ok ({} bytes on disk)",
        std::fs::metadata(&path).unwrap().len()
    );
    let recomputed = PatchIndex::recover(reg.table(), 0, Constraint::NearlyUnique, Design::Bitmap);
    assert_eq!(recomputed.exception_count(), restored.exception_count());
    println!("log-free recovery (recreate from table) agrees with the checkpoint");
    std::fs::remove_file(&path).ok();

    // Cleanup job deletes the duplicates; the sharded bitmaps shift rowIDs
    // and lose slots, then condense to restore utilization.
    let patches: Vec<usize> = reg
        .index(slot)
        .partition(0)
        .store
        .patch_rids()
        .iter()
        .map(|&r| r as usize)
        .collect();
    reg.delete(0, &patches);
    println!(
        "after deleting all duplicates: {} exceptions over {} rows",
        reg.index(slot).exception_count(),
        reg.index(slot).nrows()
    );
    let (recomputed, condensed) = reg.run_policy_now();
    println!("maintenance policy: {recomputed} recompute(s), {condensed} condense(s)");
    reg.check_consistency();
    println!("registry consistent");
}
