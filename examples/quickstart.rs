//! Quickstart: define an approximate constraint, query through it, update
//! through it — then split it into concurrent snapshot readers and a
//! background writer.
//!
//! Run with `cargo run --release --example quickstart`.

use patchindex::{ConcurrentTable, Constraint, Design, IndexedTable, SortDir};
use pi_exec::ops::sort::SortOrder;
use pi_planner::{Plan, QueryEngine};
use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};

fn main() {
    // A table of event timestamps that is *nearly* sorted: one stray value
    // (the 9999) breaks the perfect constraint.
    let mut table = Table::new(
        "events",
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("ts", DataType::Int),
        ]),
        1,
        Partitioning::RoundRobin,
    );
    table.load_partition(
        0,
        &[
            ColumnData::Int((0..10).collect()),
            ColumnData::Int(vec![10, 20, 30, 9999, 40, 50, 60, 70, 80, 90]),
        ],
    );
    table.propagate_all();

    // 1. Materialize the approximate constraint.
    let mut events = IndexedTable::new(table);
    let slot = events.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
    println!(
        "NSC on ts: {} exception(s), e = {:.1}%",
        events.index(slot).exception_count(),
        events.index(slot).exception_rate() * 100.0
    );

    // 2. The QueryEngine facade snapshots the index catalog, rewrites the
    //    sort query into the Figure-2 plan (the excluding flow skips the
    //    sort, only the patch is sorted) and executes it with
    //    per-partition zero-branch pruning.
    let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
    let optimized = events.plan_query(&plan);
    println!("\nreference plan:\n{plan}");
    println!("optimized plan:\n{optimized}");

    let result = events.query(&plan);
    println!("sorted ts: {:?}", result.column(0).as_int());

    // 3. Updates maintain the index without recomputation.
    events.insert(&[vec![Value::Int(10), Value::Int(95)]]); // extends the run
    events.insert(&[vec![Value::Int(11), Value::Int(42)]]); // a new exception
    println!(
        "\nafter 2 inserts: {} exceptions over {} rows",
        events.index(slot).exception_count(),
        events.index(slot).nrows()
    );
    events.delete(0, &[3]); // drop the original stray 9999
    println!(
        "after deleting the stray row: {} exceptions over {} rows",
        events.index(slot).exception_count(),
        events.index(slot).nrows()
    );
    events.check_consistency();
    println!("\nindex consistent");

    // 4. Concurrency: split the table into a shared read handle and a
    //    single writer. Readers pull immutable snapshots and query them
    //    from any thread; the writer mutates and maintains off the read
    //    path and publishes new epochs atomically.
    let (handle, mut writer) = ConcurrentTable::new(events);
    let reader = std::thread::spawn({
        let handle = handle.clone();
        let plan = plan.clone();
        move || {
            let mut snap = handle.snapshot();
            (snap.epoch(), snap.query(&plan).column(0).as_int().to_vec())
        }
    });
    writer.insert(&[vec![Value::Int(12), Value::Int(7)]]); // staged, invisible
    let (epoch, sorted) = reader.join().unwrap();
    println!(
        "\nreader on epoch {epoch} saw {} rows (writer insert unpublished)",
        sorted.len()
    );
    writer.publish(); // one atomic epoch-pointer swap
    let mut snap = handle.snapshot();
    println!(
        "epoch {} after publish: {} rows, still sorted: {:?}",
        snap.epoch(),
        snap.table().visible_len(),
        snap.query(&plan).column(0).as_int()
    );
}
