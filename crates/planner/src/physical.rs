//! Lowering logical plans to executable operator trees.
//!
//! Queries run partition-locally and in parallel conceptually; this
//! lowering produces, per plan node, the per-partition pipeline plus the
//! correct global combine (union for bags, ordered merge for sorted flows,
//! a global re-aggregation for distinct), mirroring how the paper's host
//! system parallelizes over partitions.
//!
//! Zero-branch pruning happens **per partition** here: before a plan is
//! lowered for partition `p`, every Union/Merge child whose cardinality
//! upper bound is zero *in that partition* is dropped — so a table with
//! patches confined to one partition instantiates the `use_patches` flow
//! only there, and the other partitions run the clean pipeline alone.
//! [`Pruning::Global`] disables the per-partition pass (plan-level ZBP
//! only), kept as the ablation baseline for the planner benchmark.
//!
//! `LIMIT n` over plain bag scans additionally pushes a per-partition
//! limit below the combine, so every partition stops scanning after `n`
//! rows instead of draining fully.

use std::borrow::{Borrow, Cow};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

use patchindex::scan::patch_scan;
use patchindex::PatchIndex;
use pi_exec::ops::agg::HashAggOp;
use pi_exec::ops::filter::FilterOp;
use pi_exec::ops::merge::{LimitOp, OrderedMergeOp, UnionAllOp};
use pi_exec::ops::meter::{MeterOp, OpMeter};
use pi_exec::ops::patch_select::PatchMode;
use pi_exec::ops::probe::ProbeOp;
use pi_exec::ops::scan::ScanOp;
use pi_exec::ops::sort::SortOp;
use pi_exec::{collect, Batch, OpRef};
use pi_obs::OperatorTrace;
use pi_storage::Table;

use crate::logical::Plan;

/// Records which partitions one execution actually depended on — the
/// partition half of a result-cache dependency footprint.
///
/// Two signals, both required for soundness:
///
/// * **pulled** — the partition's pipeline was pulled at least once
///   (observed by a [`ProbeOp`] the traced lowering wraps around every
///   per-partition pipeline). Combines that stop early (a pushed-down
///   `LIMIT` under a union pulls children strictly in order) leave
///   later partitions unpulled, and those are safely *excludable*: any
///   mutation that would route their rows into the result prefix must
///   first rewrite a partition that *was* pulled (row order within a
///   partition is insertion order, and the union order is fixed).
/// * **consulted-empty** — per-partition zero-branch pruning dropped
///   the whole pipeline because the partition was provably empty. The
///   result *does* depend on that emptiness (an insert there changes
///   it), so pruned-empty partitions must stay in the footprint even
///   though no operator ever existed to pull.
///
/// Execution is single-threaded, so plain [`Cell`] flags suffice.
#[derive(Debug)]
pub struct TouchLog {
    pulled: Vec<Cell<bool>>,
    consulted_empty: Vec<Cell<bool>>,
}

impl TouchLog {
    /// A log for a table with `partitions` partitions, all untouched.
    pub fn new(partitions: usize) -> Self {
        TouchLog {
            pulled: (0..partitions).map(|_| Cell::new(false)).collect(),
            consulted_empty: (0..partitions).map(|_| Cell::new(false)).collect(),
        }
    }

    fn pulled_flag(&self, pid: usize) -> &Cell<bool> {
        &self.pulled[pid]
    }

    fn mark_consulted_empty(&self, pid: usize) {
        self.consulted_empty[pid].set(true);
    }

    /// Partitions whose pipelines were pulled, ascending.
    pub fn pulled(&self) -> Vec<usize> {
        (0..self.pulled.len())
            .filter(|&pid| self.pulled[pid].get())
            .collect()
    }

    /// The footprint partitions: pulled ∪ consulted-empty, ascending.
    pub fn footprint(&self) -> Vec<usize> {
        (0..self.pulled.len())
            .filter(|&pid| self.pulled[pid].get() || self.consulted_empty[pid].get())
            .collect()
    }
}

/// Collects per-operator meters during a metered (EXPLAIN ANALYZE)
/// lowering — the operator half of a [`pi_obs::QueryTrace`].
///
/// Each plan node lowered for a partition (and each global combine)
/// registers one [`OpMeter`]; after execution,
/// [`operators`](ExecTrace::operators) yields the finished
/// [`OperatorTrace`] rows. Execution is single-threaded, so `Rc` +
/// `RefCell` suffice, mirroring [`TouchLog`].
#[derive(Debug, Default)]
pub struct ExecTrace {
    meters: RefCell<Vec<MeterEntry>>,
}

/// One registered operator meter: label, partition (None for global
/// combines), and the live meter handle.
type MeterEntry = (String, Option<usize>, Rc<OpMeter>);

impl ExecTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    fn meter(&self, label: String, pid: Option<usize>) -> Rc<OpMeter> {
        let m = Rc::new(OpMeter::default());
        self.meters.borrow_mut().push((label, pid, Rc::clone(&m)));
        m
    }

    /// The per-operator rows observed so far, in registration order
    /// (global combines first, then per-partition pipelines in
    /// partition order).
    pub fn operators(&self) -> Vec<OperatorTrace> {
        self.meters
            .borrow()
            .iter()
            .map(|(label, pid, m)| OperatorTrace {
                label: label.clone(),
                partition: *pid,
                batches: m.batches(),
                rows_out: m.rows_out(),
                nanos: m.nanos(),
            })
            .collect()
    }
}

/// The short operator-level name of a plan node (one trace row per
/// node, not the full subtree rendering).
fn node_label(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan {
            filter: Some(_), ..
        } => "Scan+Filter",
        Plan::Scan { .. } => "Scan",
        Plan::PatchScan {
            mode: PatchMode::UsePatches,
            ..
        } => "PatchScan[use_patches]",
        Plan::PatchScan { .. } => "PatchScan[exclude_patches]",
        Plan::Distinct { .. } => "Distinct",
        Plan::Sort { .. } => "Sort",
        Plan::Limit { .. } => "Limit",
        Plan::Union { .. } => "UnionAll",
        Plan::Merge { .. } => "OrderedMerge",
    }
}

/// Wraps `op` in a [`MeterOp`] charging to a fresh meter in `et`, when
/// a metered lowering is active.
fn meter_wrap<'a>(
    op: OpRef<'a>,
    et: Option<&ExecTrace>,
    label: &str,
    pid: Option<usize>,
) -> OpRef<'a> {
    match et {
        Some(t) => Box::new(MeterOp::new(op, t.meter(label.to_string(), pid))),
        None => op,
    }
}

/// The empty index set, pre-typed so reference executions
/// (`execute(&plan, table, NO_INDEXES)`) don't need a turbofish now that
/// the executor is generic over owned and `Arc`'d indexes.
pub const NO_INDEXES: &[PatchIndex] = &[];

/// How zero-branch pruning is applied during lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pruning {
    /// Only plan-level (global patch totals) pruning — every partition
    /// instantiates every surviving flow. Ablation baseline.
    Global,
    /// Additionally drop flows that are provably empty in a specific
    /// partition (the default).
    #[default]
    PerPartition,
}

/// Per-partition zero-branch pruning: returns the plan specialized for
/// partition `pid` with provably empty Union/Merge children removed, or
/// `None` when the whole subtree is guaranteed empty in this partition.
/// The lowering runs this before building each partition's pipeline; it
/// is also the inspection point for tests and EXPLAIN-style tooling.
/// (Same traversal as plan-level ZBP, with per-partition live counts as
/// the leaf bound.) The returned [`Cow`] borrows the input plan whenever
/// this partition prunes nothing — specializing a clean partition costs
/// a traversal, not a deep clone of the plan tree.
pub fn prune_for_partition<'a, I: Borrow<PatchIndex>>(
    plan: &'a Plan,
    table: &Table,
    indexes: &[I],
    pid: usize,
) -> Option<Cow<'a, Plan>> {
    let leaf = |p: &Plan| match p {
        Plan::Scan { .. } => table.partition(pid).visible_len() as u64,
        Plan::PatchScan { mode, slot, .. } => {
            let idx = indexes[*slot].borrow();
            match mode {
                PatchMode::UsePatches => idx.partition_patch_count(pid),
                PatchMode::ExcludePatches => {
                    idx.partition_rows(pid) - idx.partition_patch_count(pid)
                }
            }
        }
        _ => unreachable!("leaf bound invoked on a non-leaf node"),
    };
    // Single-partition specialization: collapsing a single-child Merge is
    // sound here because the surviving stream is sorted within `pid`.
    crate::optimizer::prune_zero_branches(plan, &leaf, true)
}

fn maybe_prune<'a, I: Borrow<PatchIndex>>(
    plan: &'a Plan,
    table: &Table,
    indexes: &[I],
    pid: usize,
    pruning: Pruning,
) -> Option<Cow<'a, Plan>> {
    match pruning {
        Pruning::Global => Some(Cow::Borrowed(plan)),
        Pruning::PerPartition => prune_for_partition(plan, table, indexes, pid),
    }
}

/// Lowers `plan` for a single partition (no global recombination, no
/// pruning — callers prune first).
pub fn lower_partition<'a, I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &'a Table,
    indexes: &'a [I],
    pid: usize,
) -> OpRef<'a> {
    lower_partition_obs(plan, table, indexes, pid, None)
}

/// [`lower_partition`], wrapping every plan node in a [`MeterOp`] when a
/// metered lowering is active.
fn lower_partition_obs<'a, I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &'a Table,
    indexes: &'a [I],
    pid: usize,
    et: Option<&ExecTrace>,
) -> OpRef<'a> {
    let op: OpRef<'a> = match plan {
        Plan::Scan { cols, filter } => {
            let scan: OpRef<'a> = Box::new(ScanOp::new(table.partition(pid), cols.clone(), false));
            match filter {
                Some(pred) => Box::new(FilterOp::new(scan, pred.clone())),
                None => scan,
            }
        }
        Plan::PatchScan {
            cols,
            filter,
            mode,
            slot,
        } => {
            let idx = indexes
                .get(*slot)
                .expect("PatchScan slot outside the index set")
                .borrow();
            let scan = patch_scan(table.partition(pid), idx, cols.clone(), *mode);
            let filtered: OpRef<'a> = match filter {
                Some(pred) => Box::new(FilterOp::new(scan, pred.clone())),
                None => scan,
            };
            // Drop the internal rowID column so both flows recombine with
            // the plain scan's schema.
            let keep: Vec<pi_exec::Expr> = (0..cols.len()).map(pi_exec::Expr::Col).collect();
            Box::new(pi_exec::ops::filter::ProjectOp::new(filtered, keep))
        }
        Plan::Distinct { input, cols } => Box::new(HashAggOp::distinct(
            lower_partition_obs(input, table, indexes, pid, et),
            cols.clone(),
        )),
        Plan::Sort { input, keys } => Box::new(SortOp::new(
            lower_partition_obs(input, table, indexes, pid, et),
            keys.clone(),
        )),
        Plan::Limit { input, n } => Box::new(LimitOp::new(
            lower_partition_obs(input, table, indexes, pid, et),
            *n,
        )),
        Plan::Union { inputs } => Box::new(UnionAllOp::new(
            inputs
                .iter()
                .map(|p| lower_partition_obs(p, table, indexes, pid, et))
                .collect(),
        )),
        Plan::Merge { inputs, keys } => Box::new(OrderedMergeOp::new(
            inputs
                .iter()
                .map(|p| lower_partition_obs(p, table, indexes, pid, et))
                .collect(),
            keys.clone(),
        )),
    };
    meter_wrap(op, et, node_label(plan), Some(pid))
}

/// Whether a per-partition `LIMIT` below the combine preserves the exact
/// global result: only plain bag scans qualify — the partition-major
/// emission order is identical with and without the pushdown, so the
/// capped prefix is the same rows. (Flows containing Distinct/Sort lower
/// differently per partition than globally and are excluded.)
fn limit_pushes_down(plan: &Plan) -> bool {
    matches!(plan, Plan::Scan { .. } | Plan::PatchScan { .. })
}

/// Wraps a finished per-partition pipeline in a [`ProbeOp`] when a
/// [`TouchLog`] is tracing this lowering.
fn probe<'a>(op: OpRef<'a>, trace: Option<&'a TouchLog>, pid: usize) -> OpRef<'a> {
    match trace {
        Some(t) => Box::new(ProbeOp::new(op, t.pulled_flag(pid))),
        None => op,
    }
}

/// [`maybe_prune`], additionally recording a pruned-to-nothing partition
/// as consulted-empty in the trace (the result depends on its emptiness).
fn maybe_prune_traced<'a, I: Borrow<PatchIndex>>(
    plan: &'a Plan,
    table: &Table,
    indexes: &[I],
    pid: usize,
    pruning: Pruning,
    trace: Option<&TouchLog>,
) -> Option<Cow<'a, Plan>> {
    let pruned = maybe_prune(plan, table, indexes, pid, pruning);
    if pruned.is_none() {
        if let Some(t) = trace {
            t.mark_consulted_empty(pid);
        }
    }
    pruned
}

/// Lowers `plan` across all partitions with the appropriate global
/// combine, pruning per partition according to `pruning`.
pub fn lower_global_with<'a, I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &'a Table,
    indexes: &'a [I],
    pruning: Pruning,
) -> OpRef<'a> {
    lower_global_traced(plan, table, indexes, pruning, None)
}

/// [`lower_global_with`] with every per-partition pipeline wrapped in a
/// pull probe reporting to `trace` — the footprint-capturing lowering
/// behind the result cache. See [`TouchLog`] for the soundness argument.
pub fn lower_global_traced<'a, I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &'a Table,
    indexes: &'a [I],
    pruning: Pruning,
    trace: Option<&'a TouchLog>,
) -> OpRef<'a> {
    lower_global_obs(plan, table, indexes, pruning, trace, None)
}

/// [`lower_global_traced`] with per-operator metering: every plan node
/// (per partition) and every global combine reports wall clock, batch
/// and row counts to `et` — the EXPLAIN ANALYZE lowering.
pub fn lower_global_metered<'a, I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &'a Table,
    indexes: &'a [I],
    pruning: Pruning,
    trace: Option<&'a TouchLog>,
    et: &ExecTrace,
) -> OpRef<'a> {
    lower_global_obs(plan, table, indexes, pruning, trace, Some(et))
}

fn lower_global_obs<'a, I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &'a Table,
    indexes: &'a [I],
    pruning: Pruning,
    trace: Option<&'a TouchLog>,
    et: Option<&ExecTrace>,
) -> OpRef<'a> {
    let parts = 0..table.partition_count();
    match plan {
        // Bags concatenate across partitions.
        Plan::Scan { .. } | Plan::PatchScan { .. } => {
            let combine: OpRef<'a> = Box::new(UnionAllOp::new(
                parts
                    .filter_map(|pid| {
                        maybe_prune_traced(plan, table, indexes, pid, pruning, trace).map(|p| {
                            probe(lower_partition_obs(&p, table, indexes, pid, et), trace, pid)
                        })
                    })
                    .collect(),
            ));
            meter_wrap(combine, et, "UnionAll(global)", None)
        }
        // Distinct is distributive: per-partition pre-aggregation, then a
        // global aggregation over the union of partials.
        Plan::Distinct { input, cols } => {
            let partials: Vec<OpRef<'a>> = parts
                .filter_map(|pid| {
                    maybe_prune_traced(input, table, indexes, pid, pruning, trace).map(|p| {
                        let partial: OpRef<'a> = Box::new(HashAggOp::distinct(
                            lower_partition_obs(&p, table, indexes, pid, et),
                            cols.clone(),
                        ));
                        probe(
                            meter_wrap(partial, et, "Distinct(partial)", Some(pid)),
                            trace,
                            pid,
                        )
                    })
                })
                .collect();
            let combine: OpRef<'a> = Box::new(HashAggOp::distinct(
                Box::new(UnionAllOp::new(partials)),
                (0..cols.len()).collect(),
            ));
            meter_wrap(combine, et, "Distinct(global)", None)
        }
        // Sorted flows merge across partitions. An input containing a
        // Distinct is not partition-distributive under a merge (only the
        // Distinct arm's global re-aggregation dedups across partitions),
        // so it is lowered globally and sorted once.
        Plan::Sort { input, keys } if input.contains_distinct() => {
            let sorted: OpRef<'a> = Box::new(SortOp::new(
                lower_global_obs(input, table, indexes, pruning, trace, et),
                keys.clone(),
            ));
            meter_wrap(sorted, et, "Sort(global)", None)
        }
        Plan::Sort { input, keys } => {
            let sorted: Vec<OpRef<'a>> = parts
                .filter_map(|pid| {
                    maybe_prune_traced(input, table, indexes, pid, pruning, trace).map(|p| {
                        let stream: OpRef<'a> = Box::new(SortOp::new(
                            lower_partition_obs(&p, table, indexes, pid, et),
                            keys.clone(),
                        ));
                        probe(
                            meter_wrap(stream, et, "Sort(partition)", Some(pid)),
                            trace,
                            pid,
                        )
                    })
                })
                .collect();
            let combine: OpRef<'a> = Box::new(OrderedMergeOp::new(sorted, keys.clone()));
            meter_wrap(combine, et, "OrderedMerge(global)", None)
        }
        Plan::Merge { inputs, keys } => {
            // Each surviving (partition, child) stream is sorted; one
            // ≤ k·P-way merge. Pruned children simply contribute no
            // stream — this is where a 16-partition table with patches in
            // one partition gets 15 single-stream pipelines. A child
            // containing a Distinct contributes one globally lowered
            // stream instead (see the Sort arm).
            let mut streams: Vec<OpRef<'a>> = Vec::new();
            for child in inputs {
                if child.contains_distinct() {
                    streams.push(lower_global_obs(child, table, indexes, pruning, trace, et));
                    continue;
                }
                for pid in parts.clone() {
                    if let Some(p) = maybe_prune_traced(child, table, indexes, pid, pruning, trace)
                    {
                        streams.push(probe(
                            lower_partition_obs(&p, table, indexes, pid, et),
                            trace,
                            pid,
                        ));
                    }
                }
            }
            let combine: OpRef<'a> = Box::new(OrderedMergeOp::new(streams, keys.clone()));
            meter_wrap(combine, et, "OrderedMerge(global)", None)
        }
        Plan::Union { inputs } => {
            let combine: OpRef<'a> = Box::new(UnionAllOp::new(
                inputs
                    .iter()
                    .map(|p| lower_global_obs(p, table, indexes, pruning, trace, et))
                    .collect(),
            ));
            meter_wrap(combine, et, "UnionAll(global)", None)
        }
        Plan::Limit { input, n } => {
            if limit_pushes_down(input) {
                // Cap every partition at n below the combine (each scan
                // stops early), keep the exact global cap on top.
                let capped: Vec<OpRef<'a>> = parts
                    .filter_map(|pid| {
                        maybe_prune_traced(input, table, indexes, pid, pruning, trace).map(|p| {
                            let capped: OpRef<'a> = Box::new(LimitOp::new(
                                lower_partition_obs(&p, table, indexes, pid, et),
                                *n,
                            ));
                            probe(
                                meter_wrap(capped, et, "Limit(partition)", Some(pid)),
                                trace,
                                pid,
                            )
                        })
                    })
                    .collect();
                let combine: OpRef<'a> =
                    Box::new(LimitOp::new(Box::new(UnionAllOp::new(capped)), *n));
                meter_wrap(combine, et, "Limit(global)", None)
            } else {
                let capped: OpRef<'a> = Box::new(LimitOp::new(
                    lower_global_obs(input, table, indexes, pruning, trace, et),
                    *n,
                ));
                meter_wrap(capped, et, "Limit(global)", None)
            }
        }
    }
}

/// Lowers with the default per-partition zero-branch pruning.
pub fn lower_global<'a, I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &'a Table,
    indexes: &'a [I],
) -> OpRef<'a> {
    lower_global_with(plan, table, indexes, Pruning::PerPartition)
}

/// Executes a plan to completion and returns the concatenated result.
pub fn execute<I: Borrow<PatchIndex>>(plan: &Plan, table: &Table, indexes: &[I]) -> Batch {
    let mut root = lower_global(plan, table, indexes);
    collect(root.as_mut())
}

/// [`execute`] while recording the partition dependency footprint into
/// `trace` (default per-partition pruning).
pub fn execute_traced<I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &Table,
    indexes: &[I],
    trace: &TouchLog,
) -> Batch {
    let mut root = lower_global_traced(plan, table, indexes, Pruning::PerPartition, Some(trace));
    collect(root.as_mut())
}

/// [`execute_count`] while recording the partition dependency footprint
/// into `trace` (default per-partition pruning).
pub fn execute_count_traced<I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &Table,
    indexes: &[I],
    trace: &TouchLog,
) -> usize {
    let mut root = lower_global_traced(plan, table, indexes, Pruning::PerPartition, Some(trace));
    let mut n = 0;
    while let Some(b) = root.next() {
        n += b.len();
    }
    n
}

/// [`execute_traced`] with per-operator metering into `et` — the
/// EXPLAIN ANALYZE execution (default per-partition pruning). Results
/// are byte-identical to [`execute`]: the meters observe batches, they
/// never alter them.
pub fn execute_metered<I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &Table,
    indexes: &[I],
    trace: &TouchLog,
    et: &ExecTrace,
) -> Batch {
    let mut root =
        lower_global_metered(plan, table, indexes, Pruning::PerPartition, Some(trace), et);
    collect(root.as_mut())
}

/// [`execute_count`] under the metered (EXPLAIN ANALYZE) lowering.
pub fn execute_count_metered<I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &Table,
    indexes: &[I],
    trace: &TouchLog,
    et: &ExecTrace,
) -> usize {
    let mut root =
        lower_global_metered(plan, table, indexes, Pruning::PerPartition, Some(trace), et);
    let mut n = 0;
    while let Some(b) = root.next() {
        n += b.len();
    }
    n
}

/// Executes a plan, returning only the row count (benchmark helper that
/// avoids result materialization skew).
pub fn execute_count<I: Borrow<PatchIndex>>(plan: &Plan, table: &Table, indexes: &[I]) -> usize {
    execute_count_with(plan, table, indexes, Pruning::PerPartition)
}

/// [`execute_count`] with an explicit pruning mode (benchmark ablation).
pub fn execute_count_with<I: Borrow<PatchIndex>>(
    plan: &Plan,
    table: &Table,
    indexes: &[I],
    pruning: Pruning,
) -> usize {
    let mut root = lower_global_with(plan, table, indexes, pruning);
    let mut n = 0;
    while let Some(b) = root.next() {
        n += b.len();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use patchindex::{Constraint, Design, IndexCatalog, SortDir};
    use pi_exec::ops::sort::{is_sorted_asc, SortOrder};
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        // Partition 0: values with duplicates (planted per partition) and
        // an unsorted stray.
        t.load_partition(
            0,
            &[
                ColumnData::Int(vec![0, 1, 2, 3]),
                ColumnData::Int(vec![5, 5, 8, 9]),
            ],
        );
        t.load_partition(
            1,
            &[
                ColumnData::Int(vec![4, 5, 6]),
                ColumnData::Int(vec![100, 101, 3]),
            ],
        );
        t.propagate_all();
        t
    }

    fn single(idx: PatchIndex) -> Vec<PatchIndex> {
        vec![idx]
    }

    #[test]
    fn reference_distinct_counts_all_values() {
        let t = table();
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let out = execute(&plan, &t, NO_INDEXES);
        // Values: 5,5,8,9,100,101,3 -> 6 distinct.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn rewritten_distinct_matches_reference() {
        let t = table();
        let idx = single(PatchIndex::create(
            &t,
            1,
            Constraint::NearlyUnique,
            Design::Bitmap,
        ));
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan.clone(), &IndexCatalog::of(&t, &idx), false);
        assert!(opt.to_string().starts_with("Union"));
        let mut reference: Vec<i64> = execute(&plan, &t, NO_INDEXES).column(0).as_int().to_vec();
        let mut rewritten: Vec<i64> = execute(&opt, &t, &idx).column(0).as_int().to_vec();
        reference.sort_unstable();
        rewritten.sort_unstable();
        assert_eq!(reference, rewritten);
    }

    #[test]
    fn rewritten_sort_matches_reference() {
        let t = table();
        let idx = single(PatchIndex::create(
            &t,
            1,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        ));
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan.clone(), &IndexCatalog::of(&t, &idx), false);
        assert!(opt.to_string().starts_with("Merge"), "{opt}");
        let reference = execute(&plan, &t, NO_INDEXES);
        let rewritten = execute(&opt, &t, &idx);
        assert_eq!(reference.column(0).as_int(), rewritten.column(0).as_int());
        assert!(is_sorted_asc(rewritten.column(0)));
    }

    #[test]
    fn zbp_plan_executes_on_clean_data() {
        let mut t = Table::new(
            "clean",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int((0..50).collect())]);
        t.load_partition(1, &[ColumnData::Int((50..100).collect())]);
        t.propagate_all();
        let idx = single(PatchIndex::create(
            &t,
            0,
            Constraint::NearlyUnique,
            Design::Bitmap,
        ));
        let plan = Plan::scan(vec![0]).distinct(vec![0]);
        let opt = optimize(plan, &IndexCatalog::of(&t, &idx), true);
        assert!(opt.to_string().starts_with("PatchScan"));
        // ZBP plan: pure scan of the excluding flow, still complete.
        assert_eq!(execute_count(&opt, &t, &idx), 100);
    }

    #[test]
    fn filtered_scan_lowering() {
        let t = table();
        let plan = Plan::Scan {
            cols: vec![1],
            filter: Some(pi_exec::Expr::col(0).ge(pi_exec::Expr::LitInt(100))),
        };
        assert_eq!(execute_count(&plan, &t, NO_INDEXES), 2);
    }

    #[test]
    fn limit_applies_globally() {
        let t = table();
        let plan = Plan::scan(vec![1]).limit(3);
        assert_eq!(execute_count(&plan, &t, NO_INDEXES), 3);
    }

    #[test]
    fn pushed_down_limit_keeps_exact_row_prefix() {
        let t = table();
        // Pushdown path (bag scan): identical rows to the unpushed
        // semantics, i.e. the first n rows of the full scan in partition
        // order.
        let full: Vec<i64> = execute(&Plan::scan(vec![1]), &t, NO_INDEXES)
            .column(0)
            .as_int()
            .to_vec();
        for n in [0usize, 2, 4, 6, 100] {
            let plan = Plan::scan(vec![1]).limit(n);
            let pushed = execute(&plan, &t, NO_INDEXES);
            let got: Vec<i64> = if pushed.is_empty() {
                Vec::new()
            } else {
                pushed.column(0).as_int().to_vec()
            };
            let mut expect = full.clone();
            expect.truncate(n);
            assert_eq!(got, expect, "n={n}");
        }
    }

    /// 16 partitions, patches confined to partition 5: the lowered plan
    /// must instantiate the `use_patches` flow in exactly one partition.
    #[test]
    fn per_partition_zbp_instantiates_patch_flow_once() {
        let parts = 16usize;
        let mut t = Table::new(
            "wide",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            parts,
            Partitioning::RoundRobin,
        );
        for pid in 0..parts {
            let base = (pid * 100) as i64;
            let mut vals: Vec<i64> = (base..base + 100).collect();
            if pid == 5 {
                vals[50] = -1; // one out-of-order stray -> one patch
            }
            t.load_partition(pid, &[ColumnData::Int(vals)]);
        }
        t.propagate_all();
        let indexes = single(PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        ));
        assert_eq!(indexes[0].exception_count(), 1);

        let plan = Plan::scan(vec![0]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan.clone(), &IndexCatalog::of(&t, &indexes), true);
        assert!(opt.to_string().starts_with("Merge"), "{opt}");

        // Plan inspection: the per-partition specialization used by the
        // lowering keeps the use_patches flow only in partition 5.
        let with_patch_flow: Vec<usize> = (0..parts)
            .filter(|&pid| {
                prune_for_partition(&opt, &t, &indexes, pid)
                    .map(|p| p.to_string().contains("use_patches"))
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(with_patch_flow, vec![5]);
        // Clean partitions collapse to the bare excluding stream.
        let clean = prune_for_partition(&opt, &t, &indexes, 0).unwrap();
        assert!(
            clean.to_string().starts_with("PatchScan[exclude_patches]"),
            "{clean}"
        );

        // And the pruned execution is still exact.
        let reference = execute(&plan, &t, NO_INDEXES);
        let got = execute(&opt, &t, &indexes);
        assert_eq!(reference.column(0).as_int(), got.column(0).as_int());
        // The ablation (global-only pruning) agrees on results.
        assert_eq!(
            execute_count_with(&opt, &t, &indexes, Pruning::Global),
            reference.len()
        );
    }

    /// Regression: SELECT DISTINCT … ORDER BY — a Distinct nested below
    /// a Sort must still dedup across partitions (the sort's merge is not
    /// a re-aggregation, so the distinct input is lowered globally).
    #[test]
    fn distinct_below_sort_dedups_across_partitions() {
        let t = table(); // value 5 twice in p0; no cross-partition dups
        let mut t2 = Table::new(
            "dup",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t2.load_partition(0, &[ColumnData::Int(vec![1, 7, 2])]);
        t2.load_partition(1, &[ColumnData::Int(vec![7, 3])]);
        t2.propagate_all();
        for (tbl, expect) in [(&t, vec![3i64, 5, 8, 9, 100, 101]), (&t2, vec![1, 2, 3, 7])] {
            let col = if std::ptr::eq(tbl, &t) { 1 } else { 0 };
            let plan = Plan::scan(vec![col])
                .distinct(vec![0])
                .sort(vec![(0, SortOrder::Asc)]);
            let got = execute(&plan, tbl, NO_INDEXES);
            assert_eq!(got.column(0).as_int(), expect.as_slice());
        }
    }

    /// Regression: NSC sortedness is per-partition, so even a zero-patch
    /// plan must keep the global ordered merge — collapsing the Merge to
    /// a bare PatchScan would concatenate partitions unsorted.
    #[test]
    fn zbp_on_interleaved_partitions_keeps_global_merge() {
        let mut t = Table::new(
            "interleaved",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        // Each partition sorted; ranges interleave across partitions.
        t.load_partition(0, &[ColumnData::Int(vec![10, 20, 30])]);
        t.load_partition(1, &[ColumnData::Int(vec![1, 2, 3])]);
        t.propagate_all();
        let idx = single(PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        ));
        assert_eq!(idx[0].exception_count(), 0);
        let plan = Plan::scan(vec![0]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan, &IndexCatalog::of(&t, &idx), true);
        // ZBP drops the patches flow but keeps the Merge wrapper.
        assert!(!opt.to_string().contains("use_patches"), "{opt}");
        assert!(opt.to_string().starts_with("Merge"), "{opt}");
        let got = execute(&opt, &t, &idx);
        assert_eq!(got.column(0).as_int(), &[1, 2, 3, 10, 20, 30]);
    }

    /// Regression: a distinct over a multi-column scan must execute (the
    /// NUC rewrite is width-restricted to single-column scans; firing it
    /// here would union mismatched widths and panic).
    #[test]
    fn multi_column_scan_distinct_executes() {
        let t = table();
        let idx = single(PatchIndex::create(
            &t,
            1,
            Constraint::NearlyUnique,
            Design::Bitmap,
        ));
        let plan = Plan::Scan {
            cols: vec![0, 1],
            filter: None,
        }
        .distinct(vec![1]);
        let reference = execute_count(&plan, &t, NO_INDEXES);
        let opt = optimize(plan, &IndexCatalog::of(&t, &idx), true);
        assert_eq!(execute_count(&opt, &t, &idx), reference);
    }

    /// Regression: NCC constants are partition-local, so a patch in one
    /// partition can carry another partition's constant — the rewritten
    /// distinct must still dedup across the two flows.
    #[test]
    fn ncc_rewrite_dedups_value_shared_between_flows() {
        let mut t = Table::new(
            "ncc",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        // Partition 0: constant 7. Partition 1: constant 8, one patch 7.
        t.load_partition(0, &[ColumnData::Int(vec![7, 7, 7, 7])]);
        t.load_partition(1, &[ColumnData::Int(vec![8, 8, 7, 8])]);
        t.propagate_all();
        let idx = single(PatchIndex::create(
            &t,
            0,
            Constraint::NearlyConstant,
            Design::Bitmap,
        ));
        let cat = IndexCatalog::of(&t, &idx);
        let plan = Plan::scan(vec![0]).distinct(vec![0]);
        let reference = execute_count(&plan, &t, NO_INDEXES);
        assert_eq!(reference, 2);
        // Force the rewrite (the cost gate is irrelevant to correctness).
        let rewritten = crate::optimizer::rewrite(plan, &cat.indexes[0]);
        assert!(rewritten.to_string().contains("use_patches"), "{rewritten}");
        assert_eq!(execute_count(&rewritten, &t, &idx), reference);
    }

    /// Partitions that prune nothing must not deep-clone the plan: the
    /// specialization returns a borrow of the optimized tree.
    #[test]
    fn unpruned_partitions_borrow_the_plan() {
        let t = table();
        let idx = single(PatchIndex::create(
            &t,
            1,
            Constraint::NearlyUnique,
            Design::Bitmap,
        ));
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan, &IndexCatalog::of(&t, &idx), false);
        // Both partitions hold patches (value 5 in p0; none in p1 — check).
        assert!(idx[0].partition_patch_count(0) > 0);
        let specialized = prune_for_partition(&opt, &t, &idx, 0).unwrap();
        assert!(
            matches!(specialized, Cow::Borrowed(_)),
            "nothing pruned in partition 0 — the plan must be borrowed"
        );
        // Partition 1 has no patches: the use_patches flow is pruned (the
        // surviving subtree may itself still be a borrow — collapsing to
        // a single child borrows that child instead of rebuilding).
        assert_eq!(idx[0].partition_patch_count(1), 0);
        let specialized = prune_for_partition(&opt, &t, &idx, 1).unwrap();
        assert!(!specialized.to_string().contains("use_patches"));
        assert_ne!(specialized.to_string(), opt.to_string());
    }

    /// Regression: a combine that collapses to a single child comes back
    /// as a *borrow of the child* — the wrapper node above it must not
    /// mistake that for "nothing pruned" and resurrect the original
    /// subtree. (The NCC rewrite nests its Union under a Distinct, so a
    /// clean partition must still lose the use_patches flow there.)
    #[test]
    fn collapse_under_a_wrapper_node_still_prunes() {
        let mut t = Table::new(
            "ncc2",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![7, 7, 9, 7])]); // 1 patch
        t.load_partition(1, &[ColumnData::Int(vec![8, 8, 8])]); // clean
        t.propagate_all();
        let idx = single(PatchIndex::create(
            &t,
            0,
            Constraint::NearlyConstant,
            Design::Bitmap,
        ));
        let cat = IndexCatalog::of(&t, &idx);
        let plan = Plan::scan(vec![0]).distinct(vec![0]);
        // The NCC shape: Distinct over a Union of two Distincts.
        let rewritten = crate::optimizer::rewrite(plan.clone(), &cat.indexes[0]);
        assert!(rewritten.to_string().starts_with("Distinct"), "{rewritten}");
        let clean = prune_for_partition(&rewritten, &t, &idx, 1).unwrap();
        assert!(
            !clean.to_string().contains("use_patches"),
            "partition 1 has no patches — the flow must be pruned under the wrapper:\n{clean}"
        );
        let dirty = prune_for_partition(&rewritten, &t, &idx, 0).unwrap();
        assert!(dirty.to_string().contains("use_patches"));
        // Results stay exact either way.
        let reference = execute_count(&plan, &t, NO_INDEXES);
        assert_eq!(execute_count(&rewritten, &t, &idx), reference);
        // Same guard for a Sort wrapper above a Merge that collapses.
        let splan = Plan::scan(vec![0]).sort(vec![(0, SortOrder::Asc)]).limit(3);
        let nsc = single(PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        ));
        let opt = optimize(splan, &IndexCatalog::of(&t, &nsc), false);
        if opt.to_string().contains("Merge") {
            let p1 = prune_for_partition(&opt, &t, &nsc, 1).unwrap();
            assert!(!p1.to_string().contains("use_patches"), "{p1}");
        }
    }

    #[test]
    fn empty_partition_scan_is_pruned() {
        let mut t = Table::new(
            "holes",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            3,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![3, 1])]);
        // Partition 1 stays empty.
        t.load_partition(2, &[ColumnData::Int(vec![2])]);
        t.propagate_all();
        let plan = Plan::scan(vec![0]);
        assert!(prune_for_partition(&plan, &t, NO_INDEXES, 1).is_none());
        assert_eq!(execute_count(&plan, &t, NO_INDEXES), 3);
        let sorted = Plan::scan(vec![0]).sort(vec![(0, SortOrder::Asc)]);
        assert_eq!(
            execute(&sorted, &t, NO_INDEXES).column(0).as_int(),
            &[1, 2, 3]
        );
    }

    #[test]
    fn traced_execution_matches_untraced() {
        let t = table();
        let idx = single(PatchIndex::create(
            &t,
            1,
            Constraint::NearlyUnique,
            Design::Bitmap,
        ));
        for plan in [
            Plan::scan(vec![1]),
            Plan::scan(vec![1]).distinct(vec![0]),
            Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]),
            Plan::scan(vec![1])
                .distinct(vec![0])
                .sort(vec![(0, SortOrder::Asc)]),
            Plan::scan(vec![1]).limit(3),
        ] {
            let opt = optimize(plan.clone(), &IndexCatalog::of(&t, &idx), false);
            let trace = TouchLog::new(t.partition_count());
            let traced = execute_traced(&opt, &t, &idx, &trace);
            let plain = execute(&opt, &t, &idx);
            assert_eq!(
                traced.column(0).as_int(),
                plain.column(0).as_int(),
                "{plan}"
            );
            let ctrace = TouchLog::new(t.partition_count());
            assert_eq!(
                execute_count_traced(&opt, &t, &idx, &ctrace),
                plain.len(),
                "{plan}"
            );
        }
    }

    #[test]
    fn full_scan_footprint_covers_every_partition() {
        let t = table();
        let trace = TouchLog::new(t.partition_count());
        execute_traced(
            &Plan::scan(vec![1]).distinct(vec![0]),
            &t,
            NO_INDEXES,
            &trace,
        );
        assert_eq!(trace.footprint(), vec![0, 1]);
    }

    #[test]
    fn pushed_down_limit_excludes_unreached_partitions() {
        let t = table(); // 4 rows in p0, 3 in p1
        let trace = TouchLog::new(t.partition_count());
        let out = execute_traced(&Plan::scan(vec![1]).limit(2), &t, NO_INDEXES, &trace);
        assert_eq!(out.len(), 2);
        // Partition 0 alone satisfies the limit; the union never pulls
        // partition 1, so the footprint provably excludes it.
        assert_eq!(trace.footprint(), vec![0]);
        assert_eq!(trace.pulled(), vec![0]);
    }

    #[test]
    fn pruned_empty_partition_stays_in_the_footprint() {
        let mut t = Table::new(
            "holes",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            3,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![3, 1])]);
        // Partition 1 stays empty (pruned before lowering).
        t.load_partition(2, &[ColumnData::Int(vec![2])]);
        t.propagate_all();
        let trace = TouchLog::new(t.partition_count());
        execute_traced(&Plan::scan(vec![0]), &t, NO_INDEXES, &trace);
        // The result depends on partition 1 *being empty*: an insert
        // there changes it, so consulted-empty keeps it in the footprint.
        assert_eq!(trace.pulled(), vec![0, 2]);
        assert_eq!(trace.footprint(), vec![0, 1, 2]);
    }
}
