//! Lowering logical plans to executable operator trees.
//!
//! Queries run partition-locally and in parallel conceptually; this
//! lowering produces, per plan node, the per-partition pipeline plus the
//! correct global combine (union for bags, ordered merge for sorted flows,
//! a global re-aggregation for distinct), mirroring how the paper's host
//! system parallelizes over partitions.

use patchindex::scan::patch_scan;
use patchindex::PatchIndex;
use pi_exec::ops::agg::HashAggOp;
use pi_exec::ops::filter::FilterOp;
use pi_exec::ops::merge::{LimitOp, OrderedMergeOp, UnionAllOp};
use pi_exec::ops::scan::ScanOp;
use pi_exec::ops::sort::SortOp;
use pi_exec::{collect, Batch, OpRef};
use pi_storage::Table;

use crate::logical::Plan;

/// Lowers `plan` for a single partition (no global recombination).
pub fn lower_partition<'a>(
    plan: &Plan,
    table: &'a Table,
    index: Option<&'a PatchIndex>,
    pid: usize,
) -> OpRef<'a> {
    match plan {
        Plan::Scan { cols, filter } => {
            let scan: OpRef<'a> =
                Box::new(ScanOp::new(table.partition(pid), cols.clone(), false));
            match filter {
                Some(pred) => Box::new(FilterOp::new(scan, pred.clone())),
                None => scan,
            }
        }
        Plan::PatchScan { cols, filter, mode } => {
            let idx = index.expect("PatchScan requires an index");
            let scan = patch_scan(table.partition(pid), idx, cols.clone(), *mode);
            let filtered: OpRef<'a> = match filter {
                Some(pred) => Box::new(FilterOp::new(scan, pred.clone())),
                None => scan,
            };
            // Drop the internal rowID column so both flows recombine with
            // the plain scan's schema.
            let keep: Vec<pi_exec::Expr> =
                (0..cols.len()).map(pi_exec::Expr::Col).collect();
            Box::new(pi_exec::ops::filter::ProjectOp::new(filtered, keep))
        }
        Plan::Distinct { input, cols } => Box::new(HashAggOp::distinct(
            lower_partition(input, table, index, pid),
            cols.clone(),
        )),
        Plan::Sort { input, keys } => {
            Box::new(SortOp::new(lower_partition(input, table, index, pid), keys.clone()))
        }
        Plan::Limit { input, n } => {
            Box::new(LimitOp::new(lower_partition(input, table, index, pid), *n))
        }
        Plan::Union { inputs } => Box::new(UnionAllOp::new(
            inputs.iter().map(|p| lower_partition(p, table, index, pid)).collect(),
        )),
        Plan::Merge { inputs, keys } => Box::new(OrderedMergeOp::new(
            inputs.iter().map(|p| lower_partition(p, table, index, pid)).collect(),
            keys.clone(),
        )),
    }
}

/// Lowers `plan` across all partitions with the appropriate global
/// combine.
pub fn lower_global<'a>(
    plan: &Plan,
    table: &'a Table,
    index: Option<&'a PatchIndex>,
) -> OpRef<'a> {
    let parts = 0..table.partition_count();
    match plan {
        // Bags concatenate across partitions.
        Plan::Scan { .. } | Plan::PatchScan { .. } => Box::new(UnionAllOp::new(
            parts.map(|pid| lower_partition(plan, table, index, pid)).collect(),
        )),
        // Distinct is distributive: per-partition pre-aggregation, then a
        // global aggregation over the union of partials.
        Plan::Distinct { input, cols } => {
            let partials: Vec<OpRef<'a>> = parts
                .map(|pid| {
                    Box::new(HashAggOp::distinct(
                        lower_partition(input, table, index, pid),
                        cols.clone(),
                    )) as OpRef<'a>
                })
                .collect();
            Box::new(HashAggOp::distinct(Box::new(UnionAllOp::new(partials)),
                (0..cols.len()).collect()))
        }
        // Sorted flows merge across partitions.
        Plan::Sort { input, keys } => {
            let sorted: Vec<OpRef<'a>> = parts
                .map(|pid| {
                    Box::new(SortOp::new(
                        lower_partition(input, table, index, pid),
                        keys.clone(),
                    )) as OpRef<'a>
                })
                .collect();
            Box::new(OrderedMergeOp::new(sorted, keys.clone()))
        }
        Plan::Merge { inputs, keys } => {
            // Each (partition, child) stream is sorted; one k·P-way merge.
            let mut streams: Vec<OpRef<'a>> = Vec::new();
            for pid in parts {
                for child in inputs {
                    streams.push(lower_partition(child, table, index, pid));
                }
            }
            Box::new(OrderedMergeOp::new(streams, keys.clone()))
        }
        Plan::Union { inputs } => Box::new(UnionAllOp::new(
            inputs.iter().map(|p| lower_global(p, table, index)).collect(),
        )),
        Plan::Limit { input, n } => Box::new(LimitOp::new(lower_global(input, table, index), *n)),
    }
}

/// Executes a plan to completion and returns the concatenated result.
pub fn execute(plan: &Plan, table: &Table, index: Option<&PatchIndex>) -> Batch {
    let mut root = lower_global(plan, table, index);
    collect(root.as_mut())
}

/// Executes a plan, returning only the row count (benchmark helper that
/// avoids result materialization skew).
pub fn execute_count(plan: &Plan, table: &Table, index: Option<&PatchIndex>) -> usize {
    let mut root = lower_global(plan, table, index);
    let mut n = 0;
    while let Some(b) = root.next() {
        n += b.len();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, IndexInfo};
    use patchindex::{Constraint, Design, SortDir};
    use pi_exec::ops::sort::{is_sorted_asc, SortOrder};
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        // Partition 0: values with duplicates (planted per partition) and
        // an unsorted stray.
        t.load_partition(
            0,
            &[ColumnData::Int(vec![0, 1, 2, 3]), ColumnData::Int(vec![5, 5, 8, 9])],
        );
        t.load_partition(
            1,
            &[ColumnData::Int(vec![4, 5, 6]), ColumnData::Int(vec![100, 101, 3])],
        );
        t.propagate_all();
        t
    }

    #[test]
    fn reference_distinct_counts_all_values() {
        let t = table();
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let out = execute(&plan, &t, None);
        // Values: 5,5,8,9,100,101,3 -> 6 distinct.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn rewritten_distinct_matches_reference() {
        let t = table();
        let idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Bitmap);
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan.clone(), IndexInfo::of(&idx), false);
        assert!(opt.to_string().starts_with("Union"));
        let mut reference: Vec<i64> =
            execute(&plan, &t, None).column(0).as_int().to_vec();
        let mut rewritten: Vec<i64> =
            execute(&opt, &t, Some(&idx)).column(0).as_int().to_vec();
        reference.sort_unstable();
        rewritten.sort_unstable();
        assert_eq!(reference, rewritten);
    }

    #[test]
    fn rewritten_sort_matches_reference() {
        let t = table();
        let idx = PatchIndex::create(&t, 1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan.clone(), IndexInfo::of(&idx), false);
        assert!(opt.to_string().starts_with("Merge"), "{opt}");
        let reference = execute(&plan, &t, None);
        let rewritten = execute(&opt, &t, Some(&idx));
        assert_eq!(reference.column(0).as_int(), rewritten.column(0).as_int());
        assert!(is_sorted_asc(rewritten.column(0)));
    }

    #[test]
    fn zbp_plan_executes_on_clean_data() {
        let mut t = Table::new(
            "clean",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int((0..50).collect())]);
        t.load_partition(1, &[ColumnData::Int((50..100).collect())]);
        t.propagate_all();
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let plan = Plan::scan(vec![0]).distinct(vec![0]);
        let opt = optimize(plan, IndexInfo::of(&idx), true);
        assert!(opt.to_string().starts_with("PatchScan"));
        // ZBP plan: pure scan of the excluding flow, still complete.
        assert_eq!(execute_count(&opt, &t, Some(&idx)), 100);
    }

    #[test]
    fn filtered_scan_lowering() {
        let t = table();
        let plan = Plan::Scan {
            cols: vec![1],
            filter: Some(pi_exec::Expr::col(0).ge(pi_exec::Expr::LitInt(100))),
        };
        assert_eq!(execute_count(&plan, &t, None), 2);
    }

    #[test]
    fn limit_applies_globally() {
        let t = table();
        let plan = Plan::scan(vec![1]).limit(3);
        assert_eq!(execute_count(&plan, &t, None), 3);
    }
}
