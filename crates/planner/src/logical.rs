//! Single-table logical plans.
//!
//! Rich enough to express the paper's microbenchmark queries and the
//! PatchIndex rewrites of Section 3.3 (Figure 2): distinct and sort
//! queries over a scanned table, plus the cloned
//! `exclude_patches`/`use_patches` subtrees and their recombination.
//! The TPC-H join plans (Figure 10) are hand-lowered in `pi-tpch`.

use std::fmt;

use pi_exec::expr::Expr;
use pi_exec::ops::patch_select::PatchMode;
use pi_exec::ops::sort::SortOrder;

/// A logical operator tree over one (implicitly bound) table.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan of the given columns, optionally filtered.
    Scan {
        /// Column indices to produce.
        cols: Vec<usize>,
        /// Optional row predicate.
        filter: Option<Expr>,
    },
    /// PatchIndex scan: scan plus on-the-fly patch selection (appends the
    /// rowID column after `cols`).
    PatchScan {
        /// Column indices to produce.
        cols: Vec<usize>,
        /// Optional row predicate.
        filter: Option<Expr>,
        /// Which flow this node keeps.
        mode: PatchMode,
        /// Catalog slot of the index this scan is bound to — different
        /// sites of one plan may bind different indexes.
        slot: usize,
    },
    /// Duplicate elimination over the given output columns.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns to deduplicate on.
        cols: Vec<usize>,
    },
    /// Sort by output columns.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys.
        keys: Vec<(usize, SortOrder)>,
    },
    /// First `n` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row cap.
        n: usize,
    },
    /// Bag union of same-schema children.
    Union {
        /// Children.
        inputs: Vec<Plan>,
    },
    /// Order-preserving merge of children that are each sorted on `keys`.
    Merge {
        /// Children (each sorted).
        inputs: Vec<Plan>,
        /// Merge keys.
        keys: Vec<(usize, SortOrder)>,
    },
}

impl Plan {
    /// Leaf scan helper.
    pub fn scan(cols: Vec<usize>) -> Plan {
        Plan::Scan { cols, filter: None }
    }

    /// DISTINCT over all produced columns.
    pub fn distinct(self, cols: Vec<usize>) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
            cols,
        }
    }

    /// ORDER BY helper.
    pub fn sort(self, keys: Vec<(usize, SortOrder)>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// LIMIT helper.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Whether this subtree contains a Distinct node. Duplicate
    /// elimination is only partition-distributive under a combine that
    /// re-aggregates globally; other combines (ordered merge, bag union)
    /// must lower such subtrees globally or cross-partition duplicates
    /// survive.
    pub fn contains_distinct(&self) -> bool {
        match self {
            Plan::Distinct { .. } => true,
            Plan::Scan { .. } | Plan::PatchScan { .. } => false,
            Plan::Sort { input, .. } | Plan::Limit { input, .. } => input.contains_distinct(),
            Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
                inputs.iter().any(Plan::contains_distinct)
            }
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Plan::Scan { cols, filter } => {
                writeln!(f, "{pad}Scan cols={cols:?} filter={}", filter.is_some())
            }
            Plan::PatchScan {
                cols, mode, slot, ..
            } => {
                let m = match mode {
                    PatchMode::ExcludePatches => "exclude_patches",
                    PatchMode::UsePatches => "use_patches",
                };
                writeln!(f, "{pad}PatchScan[{m}] slot={slot} cols={cols:?}")
            }
            Plan::Distinct { input, cols } => {
                writeln!(f, "{pad}Distinct cols={cols:?}")?;
                input.fmt_indent(f, indent + 1)
            }
            Plan::Sort { input, keys } => {
                writeln!(f, "{pad}Sort keys={keys:?}")?;
                input.fmt_indent(f, indent + 1)
            }
            Plan::Limit { input, n } => {
                writeln!(f, "{pad}Limit {n}")?;
                input.fmt_indent(f, indent + 1)
            }
            Plan::Union { inputs } => {
                writeln!(f, "{pad}Union")?;
                inputs.iter().try_for_each(|i| i.fmt_indent(f, indent + 1))
            }
            Plan::Merge { inputs, keys } => {
                writeln!(f, "{pad}Merge keys={keys:?}")?;
                inputs.iter().try_for_each(|i| i.fmt_indent(f, indent + 1))
            }
        }
    }
}

impl fmt::Display for Plan {
    /// EXPLAIN-style indented tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = Plan::scan(vec![1]).distinct(vec![0]).limit(5);
        let s = p.to_string();
        assert!(s.contains("Limit 5"));
        assert!(s.contains("Distinct"));
        assert!(s.contains("Scan"));
    }

    #[test]
    fn explain_shows_patch_modes() {
        let p = Plan::Union {
            inputs: vec![
                Plan::PatchScan {
                    cols: vec![1],
                    filter: None,
                    mode: PatchMode::ExcludePatches,
                    slot: 0,
                },
                Plan::PatchScan {
                    cols: vec![1],
                    filter: None,
                    mode: PatchMode::UsePatches,
                    slot: 1,
                },
            ],
        };
        let s = p.to_string();
        assert!(s.contains("exclude_patches"));
        assert!(s.contains("use_patches"));
        assert!(s.contains("slot=1"));
    }
}
