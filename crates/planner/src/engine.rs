//! The query facade: snapshot → (flush if required) → optimize → execute.
//!
//! Before this existed, callers hand-wired planner and executor
//! (`optimize(plan, info)` + `execute(plan, table, index)`) and could
//! silently query stale pending state under deferred maintenance.
//! [`QueryEngine::query`] encapsulates the whole pipeline:
//!
//! 1. snapshot the [`IndexCatalog`] (all indexes, per-partition stats),
//! 2. optimize against the full catalog with zero-branch pruning,
//! 3. apply the **NUC-disjointness rule** (see [`patchindex`]'s deferred
//!    module): if the chosen plan binds a NUC index with staged deferred
//!    maintenance, flush *that index* first — its disjointness invariant
//!    is suspended while pending — and re-plan against the fresh counts.
//!    NSC/NCC/exception flows stay exact while pending and never force a
//!    flush,
//! 4. lower with per-partition zero-branch pruning and execute.

use patchindex::{Constraint, IndexCatalog, IndexedTable};
use pi_exec::Batch;

use crate::logical::Plan;
use crate::optimizer::optimize;
use crate::physical::{execute, execute_count};

/// PatchScan slots whose binding requires the NUC disjointness invariant
/// that a pending flush currently suspends.
fn stale_nuc_slots(plan: &Plan, cat: &IndexCatalog) -> Vec<usize> {
    fn walk(plan: &Plan, out: &mut Vec<usize>) {
        match plan {
            Plan::PatchScan { slot, .. } => out.push(*slot),
            Plan::Scan { .. } => {}
            Plan::Distinct { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
                walk(input, out)
            }
            Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
                inputs.iter().for_each(|p| walk(p, out))
            }
        }
    }
    let mut slots = Vec::new();
    walk(plan, &mut slots);
    slots.sort_unstable();
    slots.dedup();
    slots.retain(|&s| {
        let e = &cat.indexes[s];
        e.pending && e.constraint == Constraint::NearlyUnique
    });
    slots
}

/// Catalog-driven planning and execution over an [`IndexedTable`].
///
/// `&mut self` because planning may flush deferred maintenance (the
/// NUC-disjointness rule); reference results for comparison can be
/// computed side-effect-free via `execute(&plan, it.table(), &[])`.
pub trait QueryEngine {
    /// Snapshots the catalog, flushes exactly the indexes the chosen plan
    /// requires to be exact, and returns the final optimized plan.
    fn plan_query(&mut self, plan: &Plan) -> Plan;
    /// Plans and executes, returning the result batch.
    fn query(&mut self, plan: &Plan) -> Batch;
    /// Plans and executes, returning only the row count.
    fn query_count(&mut self, plan: &Plan) -> usize;
}

impl QueryEngine for IndexedTable {
    fn plan_query(&mut self, plan: &Plan) -> Plan {
        let with_distinct_stats = plan.contains_distinct();
        loop {
            // Snapshot only the statistics this plan can consult: the
            // distinct-patch-value pass is skipped for plans without a
            // distinct node, keeping the per-query snapshot to counter
            // reads.
            let cat = if with_distinct_stats {
                self.catalog()
            } else {
                IndexCatalog::counts_only(self.table(), self.indexes())
            };
            let chosen = optimize(plan.clone(), &cat, true);
            let stale = stale_nuc_slots(&chosen, &cat);
            if stale.is_empty() {
                return chosen;
            }
            // Flushing changes patch counts (and may release staged
            // rows), so re-plan against the fresh snapshot. Each round
            // flushes at least one index; the loop terminates once no
            // bound NUC index is pending.
            for slot in stale {
                self.flush_index(slot);
            }
        }
    }

    fn query(&mut self, plan: &Plan) -> Batch {
        let chosen = self.plan_query(plan);
        execute(&chosen, self.table(), self.indexes())
    }

    fn query_count(&mut self, plan: &Plan) -> usize {
        let chosen = self.plan_query(plan);
        execute_count(&chosen, self.table(), self.indexes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchindex::{Design, MaintenanceMode, MaintenancePolicy, SortDir};
    use pi_exec::ops::sort::SortOrder;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};

    fn fresh(parts: usize) -> IndexedTable {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            parts,
            Partitioning::RoundRobin,
        );
        for pid in 0..parts {
            let base = (pid * 10) as i64;
            t.load_partition(
                pid,
                &[
                    ColumnData::Int((base..base + 5).collect()),
                    ColumnData::Int((base..base + 5).map(|v| v * 3).collect()),
                ],
            );
        }
        t.propagate_all();
        IndexedTable::new(t)
    }

    fn deferred() -> MaintenancePolicy {
        MaintenancePolicy {
            mode: MaintenanceMode::Deferred { flush_rows: usize::MAX },
            ..MaintenancePolicy::default()
        }
    }

    #[test]
    fn query_plans_against_every_index() {
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        // Clean data + ZBP: both collapse to the excluding scan, each
        // bound to its own index.
        assert!(it.plan_query(&distinct).to_string().contains("slot=0"));
        assert!(it.plan_query(&sort).to_string().contains("slot=1"));
        assert_eq!(it.query_count(&distinct), 10);
        let sorted = it.query(&sort);
        assert!(pi_exec::ops::sort::is_sorted_asc(sorted.column(0)));
    }

    #[test]
    fn nuc_disjointness_rule_flushes_before_distinct() {
        let mut it = fresh(2).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        // Stage a duplicate of an existing value: disjointness suspended.
        let Value::Int(dup) = it.table().partition(0).value_at(1, 0) else { panic!() };
        it.insert(&[vec![Value::Int(999), Value::Int(dup)]]);
        assert!(it.index(slot).has_pending());

        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&distinct, it.table(), &[]);
        // The facade flushes first, so the rewritten count is exact.
        assert_eq!(it.query_count(&distinct), reference);
        assert!(!it.index(slot).has_pending(), "facade must have flushed the NUC index");
        it.check_consistency();
    }

    #[test]
    fn pending_nsc_does_not_force_a_flush() {
        let mut it = fresh(2).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        it.insert(&[vec![Value::Int(999), Value::Int(-5)]]); // out of order
        assert!(it.index(slot).has_pending());

        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let reference = execute(&sort, it.table(), &[]);
        let got = it.query(&sort);
        assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
        // Staged rows were routed through the exception flow instead.
        assert!(it.index(slot).has_pending(), "NSC plans stay exact while pending");
    }

    #[test]
    fn pending_ncc_stays_exact_without_flush() {
        // All values constant per partition; a staged insert of the
        // constant itself is conservatively patched, so the constant
        // appears in BOTH flows — the rewrite's global distinct dedups it
        // and no flush is required.
        let mut t = Table::new(
            "ncc",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("s", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![0, 1, 2]), ColumnData::Int(vec![7, 7, 7])]);
        t.load_partition(1, &[ColumnData::Int(vec![3, 4]), ColumnData::Int(vec![8, 8])]);
        t.propagate_all();
        let mut it = IndexedTable::new(t).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlyConstant, Design::Bitmap);
        it.insert(&[vec![Value::Int(100), Value::Int(7)]]);
        assert!(it.index(slot).has_pending());

        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&distinct, it.table(), &[]);
        assert_eq!(reference, 2);
        let chosen = crate::optimizer::rewrite(distinct.clone(), &it.catalog().indexes[slot]);
        assert_eq!(execute_count(&chosen, it.table(), it.indexes()), reference);
        // The facade never flushes for NCC either way.
        assert_eq!(it.query_count(&distinct), reference);
        assert!(it.index(slot).has_pending());
    }

    #[test]
    fn unindexed_plans_never_flush() {
        let mut it = fresh(2).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let Value::Int(dup) = it.table().partition(0).value_at(1, 0) else { panic!() };
        it.insert(&[vec![Value::Int(999), Value::Int(dup)]]);
        // A plain scan does not bind the index; pending work stays batched.
        assert_eq!(it.query_count(&Plan::scan(vec![1])), 11);
        assert!(it.index(slot).has_pending());
    }
}
