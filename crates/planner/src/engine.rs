//! The query facade: snapshot → (flush if required) → optimize → execute.
//!
//! Before this existed, callers hand-wired planner and executor
//! (`optimize(plan, info)` + `execute(plan, table, index)`) and could
//! silently query stale pending state under deferred maintenance.
//! [`QueryEngine::query`] encapsulates the whole pipeline:
//!
//! 1. snapshot the [`IndexCatalog`] (all indexes, per-partition stats),
//! 2. optimize against the full catalog with zero-branch pruning,
//! 3. apply the **NUC-disjointness rule** (see [`patchindex`]'s deferred
//!    module): if the chosen plan binds a NUC index with staged deferred
//!    maintenance, flush *that index* first — its disjointness invariant
//!    is suspended while pending — and re-plan against the fresh counts.
//!    NSC/NCC/exception flows stay exact while pending and never force a
//!    flush,
//! 4. lower with per-partition zero-branch pruning and execute.
//!
//! The facade is implemented for three table views:
//!
//! * [`IndexedTable`] — the single-threaded owner path above;
//! * [`TableSnapshot`] — concurrent readers. A snapshot is immutable, so
//!   step 3 cannot flush; a chosen plan that binds a pending NUC index
//!   is instead **re-optimized with just the pending NUC entries masked
//!   out** of the catalog (the pending-NUC masking rule of
//!   [`patchindex::snapshot`]), so NSC/NCC/exception rewrites at other
//!   sites survive and only the suspended binding reverts. Catalogs are
//!   precomputed at publish time, and workload evidence (query log,
//!   feedback, measured timings) is reported to the snapshot's
//!   [`WorkloadSink`] for the writer to absorb;
//! * [`TableWriter`] — delegates to its staging [`IndexedTable`] (writer
//!   queries see staged state immediately; flushes it performs become
//!   visible to readers at the next publish).
//!
//! The executing entry points (`query` / `query_count`) additionally
//! measure wall-clock execution time and feed the elapsed microseconds —
//! next to the chosen plan's cost-model estimate — into each bound
//! index's [`patchindex::QueryFeedback`], so the advisor can weigh *real*
//! timings, not just estimates.

use std::sync::Arc;

use patchindex::snapshot::WorkloadEvent;
use patchindex::{
    CachedValue, ConcurrentTable, Constraint, Footprint, IndexCatalog, IndexedTable, QueryShape,
    ResultCache, SortDir, TableSnapshot, TableWriter,
};
use pi_exec::ops::sort::SortOrder;
use pi_exec::Batch;

use pi_obs::{CacheOutcome, PlannerTrace, QueryTrace};

use crate::cost::estimate;
use crate::fingerprint::{canonical_bytes, fingerprint_hash, QueryMode};
use crate::logical::Plan;
use crate::optimizer::{optimize_with_stats, OptimizeStats};
use crate::physical::{
    execute, execute_count, execute_count_traced, execute_metered, execute_traced, ExecTrace,
    TouchLog,
};

/// Every PatchScan slot the plan binds, sorted and deduplicated.
fn bound_slots(plan: &Plan) -> Vec<usize> {
    fn walk(plan: &Plan, out: &mut Vec<usize>) {
        match plan {
            Plan::PatchScan { slot, .. } => out.push(*slot),
            Plan::Scan { .. } => {}
            Plan::Distinct { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
                walk(input, out)
            }
            Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
                inputs.iter().for_each(|p| walk(p, out))
            }
        }
    }
    let mut slots = Vec::new();
    walk(plan, &mut slots);
    slots.sort_unstable();
    slots.dedup();
    slots
}

/// PatchScan slots whose binding requires the NUC disjointness invariant
/// that a pending flush currently suspends.
fn stale_nuc_slots(plan: &Plan, cat: &IndexCatalog) -> Vec<usize> {
    let mut slots = bound_slots(plan);
    slots.retain(|&s| {
        cat.by_slot(s)
            .is_some_and(|e| e.pending && e.constraint == Constraint::NearlyUnique)
    });
    slots
}

/// Collects the advisable (column, shape) sites of a reference plan — a
/// single-column Distinct or Sort directly over a Scan is exactly the
/// pattern the PatchIndex rewrites (and hence the advisor's create rule)
/// can serve. The owner path records these into the table's query log;
/// the snapshot path reports them to the sink.
fn query_shapes(plan: &Plan, out: &mut Vec<(usize, QueryShape)>) {
    match plan {
        Plan::Distinct { input, cols } => {
            if let Plan::Scan {
                cols: scan_cols, ..
            } = &**input
            {
                if cols.len() == 1 {
                    if let Some(&col) = scan_cols.get(cols[0]) {
                        out.push((col, QueryShape::Distinct));
                    }
                }
            }
            query_shapes(input, out);
        }
        Plan::Sort { input, keys } => {
            if let Plan::Scan {
                cols: scan_cols, ..
            } = &**input
            {
                if let [(key, order)] = keys[..] {
                    if let Some(&col) = scan_cols.get(key) {
                        let dir = match order {
                            SortOrder::Asc => SortDir::Asc,
                            SortOrder::Desc => SortDir::Desc,
                        };
                        out.push((col, QueryShape::Sort(dir)));
                    }
                }
            }
            query_shapes(input, out);
        }
        Plan::Limit { input, .. } => query_shapes(input, out),
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            inputs.iter().for_each(|p| query_shapes(p, out))
        }
        Plan::Scan { .. } | Plan::PatchScan { .. } => {}
    }
}

/// Catalog-driven planning and execution over an [`IndexedTable`].
///
/// `&mut self` because planning may flush deferred maintenance (the
/// NUC-disjointness rule); reference results for comparison can be
/// computed side-effect-free via `execute(&plan, it.table(), &[] as &[PatchIndex])`.
pub trait QueryEngine {
    /// Snapshots the catalog, flushes exactly the indexes the chosen plan
    /// requires to be exact, and returns the final optimized plan.
    /// Records no workload evidence (query log / feedback) — it is safe
    /// for EXPLAIN-style inspection before running the query for real.
    fn plan_query(&mut self, plan: &Plan) -> Plan;
    /// Plans and executes, returning the result batch.
    fn query(&mut self, plan: &Plan) -> Batch;
    /// Plans and executes, returning only the row count.
    fn query_count(&mut self, plan: &Plan) -> usize;
    /// Plans and executes under full EXPLAIN ANALYZE instrumentation:
    /// the result batch — byte-identical to [`QueryEngine::query`] —
    /// plus a [`QueryTrace`] carrying planner decisions (candidates
    /// enumerated, cost-gated, rewrites chosen, masked pending-NUC
    /// slots), partitions pruned vs visited, per-operator wall clock and
    /// row counts, and the result-cache outcome. Workload evidence is
    /// recorded exactly as `query` would.
    fn query_traced(&mut self, plan: &Plan) -> (Batch, QueryTrace);
    /// EXPLAIN ANALYZE: executes the query for real (like `EXPLAIN
    /// ANALYZE` in a SQL engine) and returns only the trace.
    ///
    /// ```
    /// use patchindex::{Constraint, Design, IndexedTable};
    /// use pi_planner::{Plan, QueryEngine};
    /// use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table};
    ///
    /// let mut t = Table::new(
    ///     "t",
    ///     Schema::new(vec![Field::new("v", DataType::Int)]),
    ///     2,
    ///     Partitioning::RoundRobin,
    /// );
    /// t.load_partition(0, &[ColumnData::Int(vec![1, 2, 3])]);
    /// t.load_partition(1, &[ColumnData::Int(vec![4, 5, 6])]);
    /// t.propagate_all();
    /// let mut it = IndexedTable::new(t);
    /// it.add_index(0, Constraint::NearlyUnique, Design::Bitmap);
    ///
    /// let trace = it.explain_analyze(&Plan::scan(vec![0]).distinct(vec![0]));
    /// assert_eq!(trace.rows_out, 6);
    /// assert_eq!(trace.planner.slots_bound, vec![0]);
    /// assert!(!trace.operators.is_empty());
    /// println!("{}", trace.render_text());
    /// ```
    fn explain_analyze(&mut self, plan: &Plan) -> QueryTrace {
        self.query_traced(plan).1
    }
}

/// The planning pipeline behind the facade. Workload accounting (query
/// log + optimizer feedback) only runs with `record` set: the executing
/// entry points record exactly once per query, while `plan_query` stays
/// side-effect-free on the counters — an EXPLAIN-then-run sequence
/// (`plan_query` + `query`) must not double-count its workload evidence.
fn plan_for(it: &mut IndexedTable, plan: &Plan, record: bool, stats: &mut OptimizeStats) -> Plan {
    if record {
        let mut shapes = Vec::new();
        query_shapes(plan, &mut shapes);
        for (col, shape) in shapes {
            it.record_query(col, shape);
        }
    }
    let with_distinct_stats = plan.contains_distinct();
    loop {
        // The catalog is *borrowed* from the mutation-invalidated cache
        // (repeated queries between updates re-read counters, no
        // re-hashing, no clone), so everything consulting it happens in
        // this scope; the mutations below run after the borrow ends.
        let (chosen, stale, feedback) = {
            let cat = it.query_catalog(with_distinct_stats);
            // Reset each round so the trace reports the final planning
            // pass (post-flush counts), not the sum over flush retries.
            *stats = OptimizeStats::default();
            let chosen = optimize_with_stats(plan.clone(), &cat, true, stats);
            let stale = stale_nuc_slots(&chosen, &cat);
            // Optimizer feedback: how much the chosen plan's rewrites
            // are estimated to save vs the unrewritten plan, split
            // across the indexes it binds. The advisor's drop rule
            // weighs this benefit against maintenance cost.
            let feedback = if record && stale.is_empty() {
                let bound = bound_slots(&chosen);
                (!bound.is_empty()).then(|| {
                    let saved = (estimate(plan, &cat) - estimate(&chosen, &cat)).max(0.0)
                        / bound.len() as f64;
                    (bound, saved)
                })
            } else {
                None
            };
            (chosen, stale, feedback)
        };
        if stale.is_empty() {
            if let Some((bound, saved)) = feedback {
                for slot in bound {
                    it.record_query_feedback(slot, saved);
                }
            }
            return chosen;
        }
        // Flushing changes patch counts (and may release staged
        // rows), so re-plan against the fresh snapshot. Each round
        // flushes at least one index; the loop terminates once no
        // bound NUC index is pending.
        for slot in stale {
            it.flush_index(slot);
        }
    }
}

/// Measured-execution bookkeeping for the owner path: the chosen plan's
/// estimated cost and the wall-clock micros are split across the bound
/// slots (shares, like the estimated-savings feedback).
fn record_timing_owner(it: &mut IndexedTable, chosen: &Plan, elapsed: std::time::Duration) {
    let bound = bound_slots(chosen);
    if bound.is_empty() {
        return;
    }
    let est_cost = {
        let cat = it.query_catalog(chosen.contains_distinct());
        estimate(chosen, &cat)
    };
    let micros = elapsed.as_secs_f64() * 1e6 / bound.len() as f64;
    let est_share = est_cost / bound.len() as f64;
    for slot in bound {
        it.record_query_timing(slot, micros, est_share);
    }
}

/// Assembles a [`QueryTrace`] from the pieces every traced entry point
/// produces. `visited`/`pruned` come from the caller because a cache hit
/// executes nothing (both zero) while an executed query derives them
/// from its [`TouchLog`].
#[allow(clippy::too_many_arguments)]
fn build_trace(
    query: &Plan,
    chosen: &Plan,
    stats: &OptimizeStats,
    plan_nanos: u64,
    masked: Vec<usize>,
    partitions_total: usize,
    visited: u64,
    pruned: u64,
    cache: Option<CacheOutcome>,
    operators: Vec<pi_obs::OperatorTrace>,
    rows_out: u64,
    total_nanos: u64,
) -> QueryTrace {
    QueryTrace {
        query: query.to_string(),
        optimized: chosen.to_string(),
        planner: PlannerTrace {
            candidates_enumerated: stats.candidates_enumerated,
            cost_gated: stats.cost_gated,
            rewrites_chosen: stats.rewrites_chosen,
            slots_bound: bound_slots(chosen),
            masked_pending_slots: masked,
            nanos: plan_nanos,
        },
        partitions_total,
        partitions_visited: visited,
        partitions_pruned: pruned,
        cache,
        operators,
        rows_out,
        total_nanos,
        spans: Vec::new(),
    }
}

impl QueryEngine for IndexedTable {
    fn plan_query(&mut self, plan: &Plan) -> Plan {
        plan_for(self, plan, false, &mut OptimizeStats::default())
    }

    fn query(&mut self, plan: &Plan) -> Batch {
        let chosen = plan_for(self, plan, true, &mut OptimizeStats::default());
        let start = std::time::Instant::now();
        let out = execute(&chosen, self.table(), self.indexes());
        record_timing_owner(self, &chosen, start.elapsed());
        out
    }

    fn query_count(&mut self, plan: &Plan) -> usize {
        let chosen = plan_for(self, plan, true, &mut OptimizeStats::default());
        let start = std::time::Instant::now();
        let out = execute_count(&chosen, self.table(), self.indexes());
        record_timing_owner(self, &chosen, start.elapsed());
        out
    }

    fn query_traced(&mut self, plan: &Plan) -> (Batch, QueryTrace) {
        let total = std::time::Instant::now();
        let mut stats = OptimizeStats::default();
        let plan_start = std::time::Instant::now();
        let chosen = plan_for(self, plan, true, &mut stats);
        let plan_nanos = plan_start.elapsed().as_nanos() as u64;
        let touch = TouchLog::new(self.table().partition_count());
        let et = ExecTrace::new();
        let start = std::time::Instant::now();
        let out = execute_metered(&chosen, self.table(), self.indexes(), &touch, &et);
        record_timing_owner(self, &chosen, start.elapsed());
        let visited = touch.pulled().len() as u64;
        let trace = build_trace(
            plan,
            &chosen,
            &stats,
            plan_nanos,
            Vec::new(),
            self.table().partition_count(),
            visited,
            self.table().partition_count() as u64 - visited,
            None,
            et.operators(),
            out.len() as u64,
            total.elapsed().as_nanos() as u64,
        );
        (out, trace)
    }
}

/// The snapshot planning pipeline: optimize against the publish-time
/// catalog, then apply the **pending-NUC masking rule** — a snapshot
/// cannot flush, so when the chosen plan binds a NUC index with staged
/// deferred maintenance the planner re-optimizes against a catalog with
/// exactly those entries masked out. Rewrites that stay exact while
/// pending (NSC, NCC, the exception flows) survive at their sites; only
/// the suspended NUC binding reverts to reference form. Workload
/// evidence goes to the snapshot's sink when `record` is set (once per
/// executed query, never for plan inspection).
fn plan_on_snapshot(snap: &TableSnapshot, plan: &Plan, record: bool) -> Plan {
    plan_on_snapshot_obs(
        snap,
        plan,
        record,
        &mut OptimizeStats::default(),
        &mut Vec::new(),
    )
}

/// [`plan_on_snapshot`] with the optimizer's decision counters and the
/// masked pending-NUC slots surfaced (the traced path puts them in the
/// [`QueryTrace`]). Every call also feeds the `planner.*` counters of
/// the table's metrics registry, when one is attached.
fn plan_on_snapshot_obs(
    snap: &TableSnapshot,
    plan: &Plan,
    record: bool,
    stats: &mut OptimizeStats,
    masked_slots: &mut Vec<usize>,
) -> Plan {
    let cat = snap.catalog();
    if record {
        record_shapes_snapshot(snap, plan);
    }
    let mut chosen = optimize_with_stats(plan.clone(), cat, true, stats);
    if !stale_nuc_slots(&chosen, cat).is_empty() {
        // Readers cannot flush; masking just the pending NUC entries
        // (their slot numbers live in the entries, not positions, so
        // surviving bindings still address the live index array) keeps
        // every other rewrite. The writer's next flushed publish
        // restores the NUC rewrite for subsequent snapshots.
        let masked = IndexCatalog {
            part_rows: cat.part_rows.clone(),
            indexes: cat
                .indexes
                .iter()
                .filter(|e| !(e.pending && e.constraint == Constraint::NearlyUnique))
                .cloned()
                .collect(),
        };
        *masked_slots = cat
            .indexes
            .iter()
            .filter(|e| e.pending && e.constraint == Constraint::NearlyUnique)
            .map(|e| e.slot)
            .collect();
        *stats = OptimizeStats::default();
        chosen = optimize_with_stats(plan.clone(), &masked, true, stats);
    }
    if let Some(reg) = snap.metrics() {
        reg.counter("planner.candidates_enumerated")
            .add(stats.candidates_enumerated);
        reg.counter("planner.cost_gated").add(stats.cost_gated);
        reg.counter("planner.rewrites_chosen")
            .add(stats.rewrites_chosen);
        reg.counter("planner.masked_pending_slots")
            .add(masked_slots.len() as u64);
    }
    if record {
        record_bind_feedback_snapshot(snap, plan, &chosen);
    }
    chosen
}

/// Engine-level registry accounting for one executed snapshot query.
fn record_engine_metrics(snap: &TableSnapshot, elapsed: std::time::Duration) {
    if let Some(reg) = snap.metrics() {
        reg.counter("engine.queries").inc();
        reg.histogram("engine.query_nanos")
            .record(elapsed.as_nanos() as u64);
    }
}

/// Reports the advisable (column, shape) sites of the reference plan to
/// the snapshot's sink. Split out of [`plan_on_snapshot`] because the
/// cached query path records shapes on *every* execution — hit or miss —
/// while estimated-savings feedback and measured timings are recorded
/// only on misses (a cache hit executed nothing, so feeding its numbers
/// to the advisor would poison its cost-model calibration).
fn record_shapes_snapshot(snap: &TableSnapshot, plan: &Plan) {
    let mut shapes = Vec::new();
    query_shapes(plan, &mut shapes);
    for (col, shape) in shapes {
        snap.sink().record(WorkloadEvent::Query { col, shape });
    }
}

/// Reports the chosen plan's estimated-savings feedback (per bound slot)
/// to the snapshot's sink. Misses only — see [`record_shapes_snapshot`].
fn record_bind_feedback_snapshot(snap: &TableSnapshot, plan: &Plan, chosen: &Plan) {
    let cat = snap.catalog();
    let bound = bound_slots(chosen);
    if bound.is_empty() {
        return;
    }
    let saved = (estimate(plan, cat) - estimate(chosen, cat)).max(0.0) / bound.len() as f64;
    for &slot in &bound {
        let e = cat.by_slot(slot).expect("bound slot outside the catalog");
        snap.sink().record(WorkloadEvent::Feedback {
            column: e.column,
            constraint: e.constraint,
            est_cost_saved: saved,
        });
    }
}

/// Sink-side counterpart of [`record_timing_owner`].
fn record_timing_snapshot(snap: &TableSnapshot, chosen: &Plan, elapsed: std::time::Duration) {
    let bound = bound_slots(chosen);
    if bound.is_empty() {
        return;
    }
    let cat = snap.catalog();
    let micros = elapsed.as_secs_f64() * 1e6 / bound.len() as f64;
    let est_share = estimate(chosen, cat) / bound.len() as f64;
    for slot in bound {
        let e = cat.by_slot(slot).expect("bound slot outside the catalog");
        snap.sink().record(WorkloadEvent::Timing {
            column: e.column,
            constraint: e.constraint,
            actual_micros: micros,
            est_cost: est_share,
        });
    }
}

/// The dependency footprint of an executed plan on a snapshot: the
/// partition versions the traced execution actually consulted plus every
/// index version the chosen plan binds. Pointer identity of these Arcs
/// is exactly "this cached result is still valid" — copy-on-write
/// publishes replace the Arc of everything they touch and nothing else.
fn footprint_of(snap: &TableSnapshot, chosen: &Plan, trace: &TouchLog) -> Footprint {
    let parts = trace
        .footprint()
        .into_iter()
        .map(|pid| (pid, Arc::clone(&snap.table().partitions()[pid])))
        .collect();
    let indexes = bound_slots(chosen)
        .into_iter()
        .map(|slot| (slot, Arc::clone(&snap.indexes()[slot])))
        .collect();
    Footprint::new(parts, indexes)
}

/// The cached snapshot query pipeline, shared by `query` and
/// `query_count` (the `mode` byte keeps their fingerprints disjoint).
///
/// Plan first (planning is cheap and deterministic per snapshot), then
/// consult the table's [`ResultCache`] under the canonical fingerprint
/// of the *chosen* plan. On a hit the stored canonical bytes were
/// compared — not just the hash — so the value is the exact answer:
/// record the query-log shapes (the advisor's create rule counts demand,
/// and a hit is demand) and return it. Feedback and timing events are
/// deliberately NOT recorded on hits: nothing executed, and a ~0µs
/// timing would corrupt `micros_per_cost_unit()` calibration (hits are
/// tallied by the cache's own counters instead). On a miss, execute
/// traced, record the full evidence, and insert the result with its
/// dependency footprint.
fn snapshot_query_cached(
    snap: &TableSnapshot,
    plan: &Plan,
    cache: &ResultCache,
    token: u64,
    mode: QueryMode,
) -> CachedValue {
    let chosen = plan_on_snapshot(snap, plan, false);
    let canon: Arc<[u8]> = canonical_bytes(&chosen, snap.catalog(), mode).into();
    let hash = fingerprint_hash(&canon);
    let cached = cache.lookup(
        token,
        hash,
        &canon,
        snap.epoch(),
        snap.table(),
        snap.indexes(),
    );
    if let Some(value) = cached {
        // A hit for the Rows fingerprint is always a Rows value (the
        // mode byte is part of the compared canonical form), so this
        // arm never mismatches; the guard is belt-and-braces.
        let matches_mode = matches!(
            (&value, mode),
            (CachedValue::Rows(_), QueryMode::Rows) | (CachedValue::Count(_), QueryMode::Count)
        );
        if matches_mode {
            record_shapes_snapshot(snap, plan);
            return value;
        }
    }
    record_shapes_snapshot(snap, plan);
    record_bind_feedback_snapshot(snap, plan, &chosen);
    let trace = TouchLog::new(snap.table().partition_count());
    let start = std::time::Instant::now();
    let value = match mode {
        QueryMode::Rows => CachedValue::Rows(execute_traced(
            &chosen,
            snap.table(),
            snap.indexes(),
            &trace,
        )),
        QueryMode::Count => {
            CachedValue::Count(
                execute_count_traced(&chosen, snap.table(), snap.indexes(), &trace) as u64,
            )
        }
    };
    record_timing_snapshot(snap, &chosen, start.elapsed());
    let footprint = footprint_of(snap, &chosen, &trace);
    cache.insert(token, hash, canon, snap.epoch(), value.clone(), footprint);
    value
}

/// The traced snapshot pipeline behind `TableSnapshot::query_traced` —
/// the EXPLAIN ANALYZE sibling of [`snapshot_query_cached`], with the
/// same caching and evidence rules: a hit records shapes only (nothing
/// executed, so its trace carries no operators and zero partitions), a
/// miss executes metered, records full evidence and inserts the result
/// with its dependency footprint.
fn snapshot_query_traced(snap: &TableSnapshot, plan: &Plan) -> (Batch, QueryTrace) {
    let total = std::time::Instant::now();
    let mut stats = OptimizeStats::default();
    let mut masked = Vec::new();
    let plan_start = std::time::Instant::now();
    let chosen = plan_on_snapshot_obs(snap, plan, false, &mut stats, &mut masked);
    let plan_nanos = plan_start.elapsed().as_nanos() as u64;
    let parts = snap.table().partition_count();

    if let Some((cache, token)) = snap.result_cache() {
        let canon: Arc<[u8]> = canonical_bytes(&chosen, snap.catalog(), QueryMode::Rows).into();
        let hash = fingerprint_hash(&canon);
        let cached = cache.lookup(
            token,
            hash,
            &canon,
            snap.epoch(),
            snap.table(),
            snap.indexes(),
        );
        if let Some(CachedValue::Rows(rows)) = cached {
            record_shapes_snapshot(snap, plan);
            let elapsed = total.elapsed();
            record_engine_metrics(snap, elapsed);
            let trace = build_trace(
                plan,
                &chosen,
                &stats,
                plan_nanos,
                masked,
                parts,
                0,
                0,
                Some(CacheOutcome::Hit),
                Vec::new(),
                rows.len() as u64,
                elapsed.as_nanos() as u64,
            );
            return (rows, trace);
        }
        record_shapes_snapshot(snap, plan);
        record_bind_feedback_snapshot(snap, plan, &chosen);
        let touch = TouchLog::new(parts);
        let et = ExecTrace::new();
        let start = std::time::Instant::now();
        let rows = execute_metered(&chosen, snap.table(), snap.indexes(), &touch, &et);
        record_timing_snapshot(snap, &chosen, start.elapsed());
        let footprint = footprint_of(snap, &chosen, &touch);
        cache.insert(
            token,
            hash,
            canon,
            snap.epoch(),
            CachedValue::Rows(rows.clone()),
            footprint,
        );
        let visited = touch.pulled().len() as u64;
        let elapsed = total.elapsed();
        record_engine_metrics(snap, elapsed);
        let trace = build_trace(
            plan,
            &chosen,
            &stats,
            plan_nanos,
            masked,
            parts,
            visited,
            parts as u64 - visited,
            Some(CacheOutcome::Miss),
            et.operators(),
            rows.len() as u64,
            elapsed.as_nanos() as u64,
        );
        return (rows, trace);
    }

    record_shapes_snapshot(snap, plan);
    record_bind_feedback_snapshot(snap, plan, &chosen);
    let touch = TouchLog::new(parts);
    let et = ExecTrace::new();
    let start = std::time::Instant::now();
    let rows = execute_metered(&chosen, snap.table(), snap.indexes(), &touch, &et);
    record_timing_snapshot(snap, &chosen, start.elapsed());
    let visited = touch.pulled().len() as u64;
    let elapsed = total.elapsed();
    record_engine_metrics(snap, elapsed);
    let trace = build_trace(
        plan,
        &chosen,
        &stats,
        plan_nanos,
        masked,
        parts,
        visited,
        parts as u64 - visited,
        Some(CacheOutcome::Uncached),
        et.operators(),
        rows.len() as u64,
        elapsed.as_nanos() as u64,
    );
    (rows, trace)
}

/// Concurrent readers: all methods are internally `&self` (the `&mut`
/// receiver is the trait's shape, not a mutation) — clone the snapshot
/// per thread and query away; maintenance never blocks these. When the
/// table was built with a [`ResultCache`], the executing entry points
/// consult it first (see `snapshot_query_cached`).
impl QueryEngine for TableSnapshot {
    fn plan_query(&mut self, plan: &Plan) -> Plan {
        plan_on_snapshot(self, plan, false)
    }

    fn query(&mut self, plan: &Plan) -> Batch {
        let total = std::time::Instant::now();
        if let Some((cache, token)) = self.result_cache() {
            match snapshot_query_cached(self, plan, cache, token, QueryMode::Rows) {
                CachedValue::Rows(rows) => {
                    record_engine_metrics(self, total.elapsed());
                    return rows;
                }
                CachedValue::Count(_) => unreachable!("Rows fingerprint yielded a count"),
            }
        }
        let chosen = plan_on_snapshot(self, plan, true);
        let start = std::time::Instant::now();
        let out = execute(&chosen, self.table(), self.indexes());
        record_timing_snapshot(self, &chosen, start.elapsed());
        record_engine_metrics(self, total.elapsed());
        out
    }

    fn query_count(&mut self, plan: &Plan) -> usize {
        let total = std::time::Instant::now();
        if let Some((cache, token)) = self.result_cache() {
            match snapshot_query_cached(self, plan, cache, token, QueryMode::Count) {
                CachedValue::Count(n) => {
                    record_engine_metrics(self, total.elapsed());
                    return n as usize;
                }
                CachedValue::Rows(_) => unreachable!("Count fingerprint yielded rows"),
            }
        }
        let chosen = plan_on_snapshot(self, plan, true);
        let start = std::time::Instant::now();
        let out = execute_count(&chosen, self.table(), self.indexes());
        record_timing_snapshot(self, &chosen, start.elapsed());
        record_engine_metrics(self, total.elapsed());
        out
    }

    fn query_traced(&mut self, plan: &Plan) -> (Batch, QueryTrace) {
        snapshot_query_traced(self, plan)
    }
}

/// Queries on the handle itself: each call plans and executes against a
/// freshly acquired snapshot (the read path is wait-free, so this is
/// cheap), which routes through the table's result cache when one was
/// attached via [`ConcurrentTable::with_result_cache`]. Callers that
/// need repeatable reads across several queries should hold an explicit
/// [`ConcurrentTable::snapshot`] instead.
impl QueryEngine for ConcurrentTable {
    fn plan_query(&mut self, plan: &Plan) -> Plan {
        self.snapshot().plan_query(plan)
    }

    fn query(&mut self, plan: &Plan) -> Batch {
        self.snapshot().query(plan)
    }

    fn query_count(&mut self, plan: &Plan) -> usize {
        self.snapshot().query_count(plan)
    }

    fn query_traced(&mut self, plan: &Plan) -> (Batch, QueryTrace) {
        self.snapshot().query_traced(plan)
    }
}

/// Writer queries run against the staging table (seeing unpublished
/// state), with the owner path's flush-and-re-plan NUC rule.
impl QueryEngine for TableWriter {
    fn plan_query(&mut self, plan: &Plan) -> Plan {
        self.staging_mut().plan_query(plan)
    }

    fn query(&mut self, plan: &Plan) -> Batch {
        self.staging_mut().query(plan)
    }

    fn query_count(&mut self, plan: &Plan) -> usize {
        self.staging_mut().query_count(plan)
    }

    fn query_traced(&mut self, plan: &Plan) -> (Batch, QueryTrace) {
        self.staging_mut().query_traced(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NO_INDEXES;
    use patchindex::{Design, MaintenanceMode, MaintenancePolicy, SortDir};
    use pi_exec::ops::sort::SortOrder;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};

    fn fresh(parts: usize) -> IndexedTable {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            parts,
            Partitioning::RoundRobin,
        );
        for pid in 0..parts {
            let base = (pid * 10) as i64;
            t.load_partition(
                pid,
                &[
                    ColumnData::Int((base..base + 5).collect()),
                    ColumnData::Int((base..base + 5).map(|v| v * 3).collect()),
                ],
            );
        }
        t.propagate_all();
        IndexedTable::new(t)
    }

    fn deferred() -> MaintenancePolicy {
        MaintenancePolicy {
            mode: MaintenanceMode::Deferred {
                flush_rows: usize::MAX,
            },
            ..MaintenancePolicy::default()
        }
    }

    #[test]
    fn query_plans_against_every_index() {
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        // Clean data + ZBP: both collapse to the excluding scan, each
        // bound to its own index.
        assert!(it.plan_query(&distinct).to_string().contains("slot=0"));
        assert!(it.plan_query(&sort).to_string().contains("slot=1"));
        assert_eq!(it.query_count(&distinct), 10);
        let sorted = it.query(&sort);
        assert!(pi_exec::ops::sort::is_sorted_asc(sorted.column(0)));
    }

    #[test]
    fn nuc_disjointness_rule_flushes_before_distinct() {
        let mut it = fresh(2).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        // Stage a duplicate of an existing value: disjointness suspended.
        let Value::Int(dup) = it.table().partition(0).value_at(1, 0) else {
            panic!()
        };
        it.insert(&[vec![Value::Int(999), Value::Int(dup)]]);
        assert!(it.index(slot).has_pending());

        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&distinct, it.table(), NO_INDEXES);
        // The facade flushes first, so the rewritten count is exact.
        assert_eq!(it.query_count(&distinct), reference);
        assert!(
            !it.index(slot).has_pending(),
            "facade must have flushed the NUC index"
        );
        it.check_consistency();
    }

    #[test]
    fn pending_nsc_does_not_force_a_flush() {
        let mut it = fresh(2).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        it.insert(&[vec![Value::Int(999), Value::Int(-5)]]); // out of order
        assert!(it.index(slot).has_pending());

        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let reference = execute(&sort, it.table(), NO_INDEXES);
        let got = it.query(&sort);
        assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
        // Staged rows were routed through the exception flow instead.
        assert!(
            it.index(slot).has_pending(),
            "NSC plans stay exact while pending"
        );
    }

    #[test]
    fn pending_ncc_stays_exact_without_flush() {
        // All values constant per partition; a staged insert of the
        // constant itself is conservatively patched, so the constant
        // appears in BOTH flows — the rewrite's global distinct dedups it
        // and no flush is required.
        let mut t = Table::new(
            "ncc",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("s", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(
            0,
            &[
                ColumnData::Int(vec![0, 1, 2]),
                ColumnData::Int(vec![7, 7, 7]),
            ],
        );
        t.load_partition(
            1,
            &[ColumnData::Int(vec![3, 4]), ColumnData::Int(vec![8, 8])],
        );
        t.propagate_all();
        let mut it = IndexedTable::new(t).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlyConstant, Design::Bitmap);
        it.insert(&[vec![Value::Int(100), Value::Int(7)]]);
        assert!(it.index(slot).has_pending());

        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = execute_count(&distinct, it.table(), NO_INDEXES);
        assert_eq!(reference, 2);
        let chosen = crate::optimizer::rewrite(distinct.clone(), &it.catalog().indexes[slot]);
        assert_eq!(execute_count(&chosen, it.table(), it.indexes()), reference);
        // The facade never flushes for NCC either way.
        assert_eq!(it.query_count(&distinct), reference);
        assert!(it.index(slot).has_pending());
    }

    #[test]
    fn facade_records_query_log_and_feedback() {
        let mut it = fresh(2);
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        it.query_count(&distinct);
        it.query_count(&distinct);
        it.query_count(&sort);
        // Query log: shapes per table column.
        use patchindex::{QueryShape, SortDir};
        assert_eq!(it.query_log().count(1, QueryShape::Distinct), 2);
        assert_eq!(it.query_log().count(1, QueryShape::Sort(SortDir::Asc)), 1);
        // Feedback: the NUC index was bound by both distinct queries with
        // a positive estimated saving; the sort query bound nothing.
        let fb = it.index(slot).query_feedback();
        assert_eq!(fb.times_bound, 2);
        assert!(fb.est_cost_saved > 0.0);
    }

    #[test]
    fn explain_then_run_counts_the_query_once() {
        let mut it = fresh(2);
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        // Inspecting the plan records nothing...
        it.plan_query(&distinct);
        use patchindex::QueryShape;
        assert_eq!(it.query_log().count(1, QueryShape::Distinct), 0);
        assert_eq!(it.index(slot).query_feedback().times_bound, 0);
        // ...running it records exactly once.
        it.query_count(&distinct);
        assert_eq!(it.query_log().count(1, QueryShape::Distinct), 1);
        assert_eq!(it.index(slot).query_feedback().times_bound, 1);
    }

    #[test]
    fn facade_reuses_the_cached_catalog_between_updates() {
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        for _ in 0..5 {
            it.query_count(&distinct);
        }
        assert_eq!(it.catalog_rebuilds(), 1, "one snapshot per mutation epoch");
        it.insert(&[vec![Value::Int(999), Value::Int(12345)]]);
        it.query_count(&distinct);
        it.query_count(&distinct);
        assert_eq!(it.catalog_rebuilds(), 2);
    }

    #[test]
    fn sort_only_queries_never_pay_the_distinct_pass() {
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        it.query_count(&sort);
        it.query_count(&sort);
        // Counts-only snapshots are taken fresh and never cached — no
        // full rebuild happened.
        assert_eq!(it.catalog_rebuilds(), 0);
    }

    #[test]
    fn unindexed_plans_never_flush() {
        let mut it = fresh(2).with_policy(deferred());
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let Value::Int(dup) = it.table().partition(0).value_at(1, 0) else {
            panic!()
        };
        it.insert(&[vec![Value::Int(999), Value::Int(dup)]]);
        // A plain scan does not bind the index; pending work stays batched.
        assert_eq!(it.query_count(&Plan::scan(vec![1])), 11);
        assert!(it.index(slot).has_pending());
    }

    #[test]
    fn measured_timing_lands_in_feedback() {
        let mut it = fresh(2);
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        // EXPLAIN records nothing measured.
        it.plan_query(&distinct);
        assert_eq!(it.index(slot).query_feedback().measured_queries, 0);
        it.query_count(&distinct);
        it.query_count(&distinct);
        let fb = it.index(slot).query_feedback();
        assert_eq!(fb.measured_queries, 2);
        assert!(fb.actual_micros > 0.0);
        assert!(fb.est_cost_executed > 0.0);
        assert!(fb.micros_per_cost_unit().unwrap() > 0.0);
    }

    #[test]
    fn snapshot_queries_match_owner_results() {
        use patchindex::ConcurrentTable;
        let mut it = fresh(4);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        it.insert(&[vec![Value::Int(777), Value::Int(0)]]); // dup + stray
        let (handle, _writer) = ConcurrentTable::new(it);
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let dref = execute_count(&distinct, snap.table(), NO_INDEXES);
        assert_eq!(snap.query_count(&distinct), dref);
        // The snapshot path binds indexes exactly like the owner path.
        assert!(snap.plan_query(&distinct).to_string().contains("slot=0"));
        let sorted = snap.query(&sort);
        let sref = execute(&sort, snap.table(), NO_INDEXES);
        assert_eq!(sorted.column(0).as_int(), sref.column(0).as_int());
    }

    #[test]
    fn pending_nuc_snapshot_falls_back_to_the_reference_plan() {
        use patchindex::ConcurrentTable;
        let it = fresh(2).with_policy(deferred());
        let (handle, mut writer) = ConcurrentTable::new(it);
        let slot = writer.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let Value::Int(dup) = writer.staging().table().partition(0).value_at(1, 0) else {
            panic!()
        };
        writer.insert(&[vec![Value::Int(999), Value::Int(dup)]]);
        assert!(writer.staging().index(slot).has_pending());
        writer.publish(); // deliberately unflushed: snapshot carries pending NUC
        let mut snap = handle.snapshot();
        assert!(snap.catalog().indexes[slot].pending);

        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        // The fallback plan is the unrewritten reference — and exact.
        let chosen = snap.plan_query(&distinct);
        assert!(!chosen.to_string().contains("PatchScan"), "{chosen}");
        let reference = execute_count(&distinct, snap.table(), NO_INDEXES);
        assert_eq!(snap.query_count(&distinct), reference);
        // The index version inside the snapshot still has its staged
        // state; the reader never flushed anything.
        assert!(snap.indexes()[slot].has_pending());

        // A flushed publish restores the rewrite for new snapshots.
        writer.publish_flushed();
        let mut fresh_snap = handle.snapshot();
        assert!(fresh_snap
            .plan_query(&distinct)
            .to_string()
            .contains("PatchScan"));
        assert_eq!(fresh_snap.query_count(&distinct), reference);
    }

    #[test]
    fn pending_nuc_mask_keeps_the_unrelated_nsc_rewrite() {
        use patchindex::ConcurrentTable;
        let it = fresh(2).with_policy(deferred());
        let (handle, mut writer) = ConcurrentTable::new(it);
        let nuc = writer.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let nsc = writer.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let Value::Int(dup) = writer.staging().table().partition(0).value_at(1, 0) else {
            panic!()
        };
        writer.insert(&[vec![Value::Int(999), Value::Int(dup)]]);
        writer.publish(); // unflushed: the snapshot carries the pending NUC
        let mut snap = handle.snapshot();
        assert!(snap.catalog().indexes[nuc].pending);

        // One plan, two sites: the distinct would bind the pending NUC,
        // the sort binds the NSC (exact while pending). Masking must
        // revert only the distinct site.
        let q = Plan::Union {
            inputs: vec![
                Plan::scan(vec![1]).distinct(vec![0]),
                Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]),
            ],
        };
        let chosen = snap.plan_query(&q);
        let s = chosen.to_string();
        assert!(
            s.contains(&format!("slot={nsc}")),
            "NSC rewrite must survive:\n{s}"
        );
        assert!(
            !s.contains(&format!("slot={nuc}")),
            "pending NUC must be masked:\n{s}"
        );
        let reference = execute_count(&q, snap.table(), NO_INDEXES);
        assert_eq!(snap.query_count(&q), reference);
    }

    #[test]
    fn pending_nsc_snapshot_keeps_its_rewrite() {
        use patchindex::ConcurrentTable;
        let it = fresh(2).with_policy(deferred());
        let (handle, mut writer) = ConcurrentTable::new(it);
        let slot = writer.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        writer.insert(&[vec![Value::Int(999), Value::Int(-5)]]); // out of order
        writer.publish();
        let mut snap = handle.snapshot();
        assert!(snap.catalog().indexes[slot].pending);
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        // NSC stays exact while pending: no fallback, results exact.
        assert!(snap.plan_query(&sort).to_string().contains("PatchScan"));
        let got = snap.query(&sort);
        let reference = execute(&sort, snap.table(), NO_INDEXES);
        assert_eq!(got.column(0).as_int(), reference.column(0).as_int());
    }

    #[test]
    fn snapshot_workload_evidence_reaches_the_writer() {
        use patchindex::ConcurrentTable;
        let mut it = fresh(2);
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        snap.query_count(&distinct);
        snap.query_count(&distinct);
        // EXPLAIN on a snapshot records nothing.
        snap.plan_query(&distinct);
        assert!(!snap.sink().is_empty());
        writer.absorb_feedback();
        let it = writer.staging();
        assert_eq!(it.query_log().count(1, QueryShape::Distinct), 2);
        let fb = it.index(slot).query_feedback();
        assert_eq!(fb.times_bound, 2);
        assert!(fb.est_cost_saved > 0.0);
        assert_eq!(fb.measured_queries, 2);
        assert!(fb.actual_micros > 0.0);
    }

    fn cached(it: IndexedTable) -> (ConcurrentTable, TableWriter) {
        ConcurrentTable::with_result_cache(
            it,
            Arc::new(ResultCache::new(ResultCache::DEFAULT_BUDGET)),
        )
    }

    #[test]
    fn cached_snapshot_repeats_hit_and_match_exactly() {
        let mut it = fresh(4);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, _writer) = cached(it);
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let first = snap.query(&distinct);
        let second = snap.query(&distinct);
        assert_eq!(first.column(0).as_int(), second.column(0).as_int());
        // Rows and counts fingerprint separately (the mode byte), so the
        // count is its own miss-then-hit, never a cross-mode confusion.
        let n = snap.query_count(&distinct);
        assert_eq!(n, first.len());
        assert_eq!(snap.query_count(&distinct), n);
        let stats = handle.cache_stats().unwrap();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn cache_hits_record_shapes_but_never_feedback_or_timing() {
        let mut it = fresh(2);
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = cached(it);
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        snap.query_count(&distinct); // miss: full evidence
        writer.absorb_feedback();
        let before = writer.staging().index(slot).query_feedback();
        assert_eq!(before.times_bound, 1);
        assert_eq!(before.measured_queries, 1);

        for _ in 0..3 {
            snap.query_count(&distinct); // hits: shapes only
        }
        writer.absorb_feedback();
        let it = writer.staging();
        // The advisor's demand signal still sees every query...
        assert_eq!(it.query_log().count(1, QueryShape::Distinct), 4);
        // ...but calibration inputs are untouched: a hit executed
        // nothing, so its ~0µs must not dilute micros-per-cost-unit.
        let after = it.index(slot).query_feedback();
        assert_eq!(after.times_bound, before.times_bound);
        assert_eq!(after.measured_queries, before.measured_queries);
        assert_eq!(after.actual_micros, before.actual_micros);
        assert_eq!(after.micros_per_cost_unit(), before.micros_per_cost_unit());
        // Hits are tallied in the cache's own counter instead.
        assert_eq!(handle.cache_stats().unwrap().hits, 3);
    }

    #[test]
    fn manufactured_fingerprint_collision_is_a_miss() {
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, _writer) = cached(it);
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let chosen = snap.plan_query(&distinct);
        let canon = canonical_bytes(&chosen, snap.catalog(), QueryMode::Count);
        let hash = fingerprint_hash(&canon);
        // Poison the exact bucket the query will probe with an entry
        // whose canonical bytes differ — a simulated 64-bit collision.
        let (cache, token) = snap.result_cache().unwrap();
        cache.insert(
            token,
            hash,
            b"not the same plan".to_vec().into(),
            snap.epoch(),
            CachedValue::Count(999_999),
            Footprint::new(Vec::new(), Vec::new()),
        );
        let reference = execute_count(&distinct, snap.table(), NO_INDEXES);
        assert_ne!(reference, 999_999);
        // The stored canonical form is compared on every probe, so the
        // collision is detected and the query recomputes.
        assert_eq!(snap.query_count(&distinct), reference);
        let stats = handle.cache_stats().unwrap();
        assert_eq!(stats.hits, 0);
        // The recomputed entry replaced the poisoned one; now it hits.
        assert_eq!(snap.query_count(&distinct), reference);
        assert_eq!(handle.cache_stats().unwrap().hits, 1);
    }

    #[test]
    fn publish_keeps_entries_whose_partitions_were_untouched() {
        let it = fresh(2);
        let (handle, mut writer) = cached(it);
        let mut snap = handle.snapshot();
        let limited = Plan::scan(vec![1]).limit(2);
        let full = Plan::scan(vec![1]);
        // The pushed-down limit is satisfied entirely by partition 0, so
        // its footprint excludes partition 1; the full scan touches both.
        let first = snap.query(&limited);
        assert_eq!(snap.query_count(&full), 10);
        assert_eq!(handle.cache_stats().unwrap().entries, 2);

        // Dirty only partition 1 and publish: copy-on-write replaces
        // p1's Arc and leaves p0's identical.
        writer.modify(1, &[0], 1, &[Value::Int(-777)]);
        writer.publish();
        let stats = handle.cache_stats().unwrap();
        assert_eq!(stats.invalidated, 1, "only the full scan depends on p1");
        assert_eq!(stats.entries, 1);

        let mut snap2 = handle.snapshot();
        // The surviving limit entry hits across the epoch bump...
        let again = snap2.query(&limited);
        assert_eq!(first.column(0).as_int(), again.column(0).as_int());
        assert_eq!(handle.cache_stats().unwrap().hits, 1);
        // ...and the invalidated full scan recomputes the new state.
        let fresh_count = snap2.query_count(&full);
        assert_eq!(fresh_count, 10);
        let refreshed = snap2.query(&full);
        assert!(refreshed.column(0).as_int().contains(&-777));
    }

    #[test]
    fn traced_query_matches_untraced_and_carries_operators() {
        let mut it = fresh(4);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let reference = it.query(&distinct);
        let (traced, trace) = it.query_traced(&distinct);
        assert_eq!(reference.column(0).as_int(), traced.column(0).as_int());
        assert_eq!(trace.rows_out, reference.len() as u64);
        assert_eq!(trace.planner.slots_bound, vec![0]);
        assert!(trace.planner.candidates_enumerated >= 1);
        assert_eq!(trace.planner.rewrites_chosen, 1);
        assert!(trace.optimized.contains("PatchScan"), "{}", trace.optimized);
        // Clean data: ZBP prunes every use_patches branch, so only the
        // excluding pipelines (4 partitions) plus the global combine ran.
        assert_eq!(trace.partitions_total, 4);
        assert_eq!(trace.partitions_visited, 4);
        assert!(!trace.operators.is_empty());
        let total_op_rows: u64 = trace
            .operators
            .iter()
            .filter(|o| o.partition.is_some())
            .map(|o| o.rows_out)
            .sum();
        assert_eq!(total_op_rows, 20, "per-partition scans emit every row");
        assert!(trace.cache.is_none(), "owner path has no cache concept");
    }

    #[test]
    fn traced_snapshot_reports_cache_hit_and_miss() {
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, _writer) = cached(it);
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let (first, t1) = snap.query_traced(&distinct);
        assert_eq!(t1.cache, Some(pi_obs::CacheOutcome::Miss));
        assert!(!t1.operators.is_empty());
        let (second, t2) = snap.query_traced(&distinct);
        assert_eq!(t2.cache, Some(pi_obs::CacheOutcome::Hit));
        assert!(t2.operators.is_empty(), "a hit executed nothing");
        assert_eq!(t2.partitions_visited, 0);
        assert_eq!(first.column(0).as_int(), second.column(0).as_int());
        // Traced and untraced share the cache: the untraced path now hits
        // the entry the traced miss inserted.
        let third = snap.query(&distinct);
        assert_eq!(third.column(0).as_int(), first.column(0).as_int());
        assert_eq!(handle.cache_stats().unwrap().hits, 2);
    }

    #[test]
    fn traced_snapshot_reports_masked_pending_nuc_slots() {
        use patchindex::ConcurrentTable;
        let it = fresh(2).with_policy(deferred());
        let (handle, mut writer) = ConcurrentTable::new(it);
        let slot = writer.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let Value::Int(dup) = writer.staging().table().partition(0).value_at(1, 0) else {
            panic!()
        };
        writer.insert(&[vec![Value::Int(999), Value::Int(dup)]]);
        writer.publish(); // unflushed: pending NUC rides into the snapshot
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        let (_, trace) = snap.query_traced(&distinct);
        assert_eq!(trace.planner.masked_pending_slots, vec![slot]);
        assert!(trace.planner.slots_bound.is_empty());
        assert_eq!(trace.cache, Some(pi_obs::CacheOutcome::Uncached));
    }

    #[test]
    fn snapshot_queries_feed_the_metrics_registry() {
        use patchindex::ConcurrentTable;
        use pi_obs::MetricsRegistry;
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let reg = Arc::new(MetricsRegistry::new());
        let cache = Arc::new(ResultCache::with_registry(
            ResultCache::DEFAULT_BUDGET,
            &reg,
        ));
        let (handle, _writer) =
            ConcurrentTable::with_observability(it, Some(cache), Arc::clone(&reg));
        let mut snap = handle.snapshot();
        let distinct = Plan::scan(vec![1]).distinct(vec![0]);
        snap.query_count(&distinct); // miss
        snap.query_count(&distinct); // hit
        snap.query_traced(&distinct); // rows-mode miss
        assert_eq!(reg.counter("engine.queries").get(), 3);
        assert_eq!(reg.histogram("engine.query_nanos").snapshot().count, 3);
        assert_eq!(reg.counter("cache.hits").get(), 1);
        assert_eq!(reg.counter("cache.misses").get(), 2);
        assert!(reg.counter("planner.rewrites_chosen").get() >= 3);
    }

    #[test]
    fn writer_facade_queries_staged_state() {
        use patchindex::ConcurrentTable;
        let mut it = fresh(2);
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        writer.insert(&[vec![Value::Int(999), Value::Int(424242)]]);
        let scan = Plan::scan(vec![1]);
        // The writer sees its unpublished insert; readers do not.
        assert_eq!(writer.query_count(&scan), 11);
        assert_eq!(handle.snapshot().query_count(&scan), 10);
        writer.publish();
        assert_eq!(handle.snapshot().query_count(&scan), 11);
    }
}
