//! The PatchIndex optimizer rules (paper, Sections 3.3 and 6.3).
//!
//! * `distinct` rewrite: drop the aggregation from the subtree that
//!   excludes patches, keep a small distinct over the patches, recombine
//!   with Union (Figure 2, left).
//! * `sort` rewrite: the excluding subtree is already sorted; sort only the
//!   patches and recombine with an order-preserving Merge.
//! * zero-branch pruning (ZBP): drop subtrees with a guaranteed-zero
//!   cardinality estimate (e.g. the patches flow of a perfect constraint).
//!
//! All rewrites are cost-gated: patch counts are known at optimization
//! time, so the [`cost`](crate::cost) model decides whether the rewritten
//! tree is cheaper (Section 3.5: Q12-style regressions "would not be
//! chosen by the optimizer").

use patchindex::{Constraint, PatchIndex, SortDir};
use pi_exec::ops::patch_select::PatchMode;
use pi_exec::ops::sort::SortOrder;

use crate::cost::{estimate, TableStats};
use crate::logical::Plan;

/// Optimizer-visible index metadata.
#[derive(Debug, Clone, Copy)]
pub struct IndexInfo {
    /// Indexed column.
    pub column: usize,
    /// Materialized constraint.
    pub constraint: Constraint,
    /// Total patches (known exactly at optimization time).
    pub patch_count: u64,
    /// Total rows.
    pub rows: u64,
}

impl IndexInfo {
    /// Snapshot of a live index.
    pub fn of(index: &PatchIndex) -> Self {
        IndexInfo {
            column: index.column(),
            constraint: index.constraint(),
            patch_count: index.exception_count(),
            rows: index.nrows(),
        }
    }
}

/// Applies the PatchIndex rewrites wherever the index matches and the cost
/// model approves, then prunes zero branches if `zbp` is enabled.
pub fn optimize(plan: Plan, index: IndexInfo, zbp: bool) -> Plan {
    let stats = TableStats { rows: index.rows, patches: index.patch_count };
    let rewritten = rewrite(plan.clone(), index);
    let chosen = if estimate(&rewritten, &stats) < estimate(&plan, &stats) {
        rewritten
    } else {
        plan
    };
    if zbp {
        zero_branch_prune(chosen, &stats)
    } else {
        chosen
    }
}

fn scan_produces_sorted(cols: &[usize], key: usize, index: IndexInfo) -> bool {
    matches!(index.constraint, Constraint::NearlySorted(SortDir::Asc))
        && cols.get(key) == Some(&index.column)
}

/// Structural rewrite without cost gating (exposed for tests/ablation).
pub fn rewrite(plan: Plan, index: IndexInfo) -> Plan {
    match plan {
        Plan::Distinct { input, cols } => match *input {
            // Figure 2 (left): clone the scan into both flows; the
            // excluding flow needs no aggregation because the NUC holds
            // there (and its values are disjoint from patch values).
            Plan::Scan { cols: scan_cols, filter }
                if matches!(index.constraint, Constraint::NearlyUnique)
                    && cols.len() == 1
                    && scan_cols.get(cols[0]) == Some(&index.column) =>
            {
                Plan::Union {
                    inputs: vec![
                        Plan::PatchScan {
                            cols: scan_cols.clone(),
                            filter: filter.clone(),
                            mode: PatchMode::ExcludePatches,
                        },
                        Plan::Distinct {
                            input: Box::new(Plan::PatchScan {
                                cols: scan_cols,
                                filter,
                                mode: PatchMode::UsePatches,
                            }),
                            cols,
                        },
                    ],
                }
            }
            // NCC: both flows get a distinct, but the excluding flow
            // aggregates into a single group per partition (the constant),
            // which the hash aggregation handles at near-scan speed. The
            // paper's Section 5.5 sketches such additional constraints.
            Plan::Scan { cols: scan_cols, filter }
                if matches!(index.constraint, Constraint::NearlyConstant)
                    && cols.len() == 1
                    && scan_cols.get(cols[0]) == Some(&index.column) =>
            {
                Plan::Union {
                    inputs: vec![
                        Plan::Distinct {
                            input: Box::new(Plan::PatchScan {
                                cols: scan_cols.clone(),
                                filter: filter.clone(),
                                mode: PatchMode::ExcludePatches,
                            }),
                            cols: cols.clone(),
                        },
                        Plan::Distinct {
                            input: Box::new(Plan::PatchScan {
                                cols: scan_cols,
                                filter,
                                mode: PatchMode::UsePatches,
                            }),
                            cols,
                        },
                    ],
                }
            }
            other => Plan::Distinct { input: Box::new(rewrite(other, index)), cols },
        },
        Plan::Sort { input, keys } => match *input {
            // Figure 2 with the aggregation exchanged for the sort
            // operator: the excluding flow is known to be sorted.
            Plan::Scan { cols: scan_cols, filter }
                if keys.len() == 1
                    && keys[0].1 == SortOrder::Asc
                    && scan_produces_sorted(&scan_cols, keys[0].0, index) =>
            {
                Plan::Merge {
                    inputs: vec![
                        Plan::PatchScan {
                            cols: scan_cols.clone(),
                            filter: filter.clone(),
                            mode: PatchMode::ExcludePatches,
                        },
                        Plan::Sort {
                            input: Box::new(Plan::PatchScan {
                                cols: scan_cols,
                                filter,
                                mode: PatchMode::UsePatches,
                            }),
                            keys: keys.clone(),
                        },
                    ],
                    keys,
                }
            }
            other => Plan::Sort { input: Box::new(rewrite(other, index)), keys },
        },
        Plan::Limit { input, n } => Plan::Limit { input: Box::new(rewrite(*input, index)), n },
        Plan::Union { inputs } => {
            Plan::Union { inputs: inputs.into_iter().map(|p| rewrite(p, index)).collect() }
        }
        Plan::Merge { inputs, keys } => Plan::Merge {
            inputs: inputs.into_iter().map(|p| rewrite(p, index)).collect(),
            keys,
        },
        leaf => leaf,
    }
}

/// Cardinality upper bound used by zero-branch pruning.
fn max_cardinality(plan: &Plan, stats: &TableStats) -> u64 {
    match plan {
        Plan::Scan { .. } => stats.rows,
        Plan::PatchScan { mode: PatchMode::UsePatches, .. } => stats.patches,
        Plan::PatchScan { mode: PatchMode::ExcludePatches, .. } => stats.rows - stats.patches,
        Plan::Distinct { input, .. } | Plan::Sort { input, .. } => max_cardinality(input, stats),
        Plan::Limit { input, n } => (*n as u64).min(max_cardinality(input, stats)),
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            inputs.iter().map(|p| max_cardinality(p, stats)).sum()
        }
    }
}

/// Zero-branch pruning (paper, Section 6.3): subtrees whose cardinality
/// estimate is guaranteed zero are dropped from Union/Merge nodes,
/// removing all overhead the subtree cloning introduced.
pub fn zero_branch_prune(plan: Plan, stats: &TableStats) -> Plan {
    match plan {
        Plan::Union { inputs } => {
            let mut kept: Vec<Plan> = inputs
                .into_iter()
                .filter(|p| max_cardinality(p, stats) > 0)
                .map(|p| zero_branch_prune(p, stats))
                .collect();
            if kept.len() == 1 {
                kept.pop().unwrap()
            } else {
                Plan::Union { inputs: kept }
            }
        }
        Plan::Merge { inputs, keys } => {
            let mut kept: Vec<Plan> = inputs
                .into_iter()
                .filter(|p| max_cardinality(p, stats) > 0)
                .map(|p| zero_branch_prune(p, stats))
                .collect();
            if kept.len() == 1 {
                kept.pop().unwrap()
            } else {
                Plan::Merge { inputs: kept, keys }
            }
        }
        Plan::Distinct { input, cols } => {
            Plan::Distinct { input: Box::new(zero_branch_prune(*input, stats)), cols }
        }
        Plan::Sort { input, keys } => {
            Plan::Sort { input: Box::new(zero_branch_prune(*input, stats)), keys }
        }
        Plan::Limit { input, n } => {
            Plan::Limit { input: Box::new(zero_branch_prune(*input, stats)), n }
        }
        leaf => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nuc_info(rows: u64, patches: u64) -> IndexInfo {
        IndexInfo { column: 1, constraint: Constraint::NearlyUnique, patch_count: patches, rows }
    }

    fn nsc_info(rows: u64, patches: u64) -> IndexInfo {
        IndexInfo {
            column: 1,
            constraint: Constraint::NearlySorted(SortDir::Asc),
            patch_count: patches,
            rows,
        }
    }

    #[test]
    fn distinct_rewrite_produces_figure2_shape() {
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan, nuc_info(1_000_000, 1_000), false);
        let s = opt.to_string();
        assert!(s.starts_with("Union"), "got:\n{s}");
        assert!(s.contains("exclude_patches"));
        assert!(s.contains("use_patches"));
        // The excluding flow must NOT contain a Distinct.
        let first_branch = s.lines().nth(1).unwrap();
        assert!(first_branch.contains("PatchScan[exclude_patches]"));
    }

    #[test]
    fn sort_rewrite_produces_merge() {
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan, nsc_info(1_000_000, 5_000), false);
        let s = opt.to_string();
        assert!(s.starts_with("Merge"), "got:\n{s}");
        assert!(s.contains("Sort"));
    }

    #[test]
    fn mismatched_column_not_rewritten() {
        // Distinct over column 0, index on column 1.
        let plan = Plan::scan(vec![0]).distinct(vec![0]);
        let opt = optimize(plan, nuc_info(1_000, 10), false);
        assert!(opt.to_string().starts_with("Distinct"));
    }

    #[test]
    fn descending_sort_not_rewritten_by_asc_index() {
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Desc)]);
        let opt = optimize(plan, nsc_info(1_000, 10), false);
        assert!(opt.to_string().starts_with("Sort"));
    }

    #[test]
    fn zbp_drops_empty_patches_branch() {
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan, nuc_info(1_000_000, 0), true);
        let s = opt.to_string();
        assert!(s.starts_with("PatchScan[exclude_patches]"), "got:\n{s}");
        assert!(!s.contains("use_patches"));
    }

    #[test]
    fn zbp_keeps_nonzero_branches() {
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan, nsc_info(1_000_000, 7), true);
        assert!(opt.to_string().starts_with("Merge"));
    }

    #[test]
    fn ncc_distinct_rewrite_produces_union_of_distincts() {
        let info = IndexInfo {
            column: 1,
            constraint: Constraint::NearlyConstant,
            patch_count: 100,
            rows: 1_000_000,
        };
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = rewrite(plan, info);
        let s = opt.to_string();
        assert!(s.starts_with("Union"), "got:\n{s}");
        assert!(s.contains("exclude_patches") && s.contains("use_patches"));
    }

    #[test]
    fn full_exception_rate_keeps_reference_plan() {
        // With e = 1 the rewrite buys nothing; the cost gate rejects it.
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan, nuc_info(1_000, 1_000), false);
        assert!(opt.to_string().starts_with("Distinct"), "got:\n{}", opt);
    }
}
