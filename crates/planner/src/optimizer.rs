//! The PatchIndex optimizer rules (paper, Sections 3.3 and 6.3), driven
//! by an [`IndexCatalog`] rather than a single hard-wired index.
//!
//! * `distinct` rewrite: drop the aggregation from the subtree that
//!   excludes patches, keep a small distinct over the patches, recombine
//!   with Union (Figure 2, left).
//! * `sort` rewrite: the excluding subtree is already sorted; sort only the
//!   patches and recombine with an order-preserving Merge.
//! * zero-branch pruning (ZBP): drop subtrees with a guaranteed-zero
//!   cardinality estimate (e.g. the patches flow of a perfect constraint).
//!   Plan-level ZBP here uses global patch totals; lowering additionally
//!   prunes *per partition* (see [`crate::physical`]).
//!
//! [`optimize`] walks the plan bottom-up; at every rewritable site it
//! enumerates one candidate per matching catalog index, costs each with
//! the [`cost`](crate::cost) model (patch counts are known exactly at
//! optimization time), and keeps the cheapest — so different sites of one
//! plan may bind different indexes, and a rewrite that does not pay off
//! (Section 3.5: Q12-style regressions "would not be chosen by the
//! optimizer") is rejected site-locally.

use std::borrow::Cow;

use patchindex::{Constraint, IndexCatalog, IndexStats, SortDir};
use pi_exec::ops::patch_select::PatchMode;
use pi_exec::ops::sort::SortOrder;

use crate::cost::estimate;
use crate::logical::Plan;

/// What the rewriter did during one [`optimize_with_stats`] pass — the
/// planner third of an EXPLAIN ANALYZE trace.
#[derive(Debug, Default, Clone)]
pub struct OptimizeStats {
    /// Candidate (site, index) rewrites whose pattern matched.
    pub candidates_enumerated: u64,
    /// Matching candidates the cost model rejected.
    pub cost_gated: u64,
    /// Sites where a rewrite won and was applied.
    pub rewrites_chosen: u64,
}

/// Applies the PatchIndex rewrites wherever some catalog index matches
/// and the cost model approves, then prunes zero branches (globally) if
/// `zbp` is enabled.
pub fn optimize(plan: Plan, cat: &IndexCatalog, zbp: bool) -> Plan {
    optimize_with_stats(plan, cat, zbp, &mut OptimizeStats::default())
}

/// [`optimize`] while counting candidates enumerated / cost-gated /
/// chosen into `stats`.
pub fn optimize_with_stats(
    plan: Plan,
    cat: &IndexCatalog,
    zbp: bool,
    stats: &mut OptimizeStats,
) -> Plan {
    let chosen = optimize_rec(plan, cat, stats);
    if zbp {
        zero_branch_prune(chosen, cat)
    } else {
        chosen
    }
}

fn optimize_rec(plan: Plan, cat: &IndexCatalog, stats: &mut OptimizeStats) -> Plan {
    match plan {
        Plan::Distinct { input, cols } => {
            let node = Plan::Distinct {
                input: Box::new(optimize_rec(*input, cat, stats)),
                cols,
            };
            best_rewrite(node, cat, stats)
        }
        Plan::Sort { input, keys } => {
            let node = Plan::Sort {
                input: Box::new(optimize_rec(*input, cat, stats)),
                keys,
            };
            best_rewrite(node, cat, stats)
        }
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(optimize_rec(*input, cat, stats)),
            n,
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| optimize_rec(p, cat, stats))
                .collect(),
        },
        Plan::Merge { inputs, keys } => Plan::Merge {
            inputs: inputs
                .into_iter()
                .map(|p| optimize_rec(p, cat, stats))
                .collect(),
            keys,
        },
        leaf => leaf,
    }
}

/// Enumerates the candidate rewrites of this node across every catalog
/// index and keeps the cheapest (the unrewritten node included).
fn best_rewrite(node: Plan, cat: &IndexCatalog, stats: &mut OptimizeStats) -> Plan {
    let mut best_cost = estimate(&node, cat);
    let mut best: Option<Plan> = None;
    let mut enumerated_here = 0u64;
    for e in &cat.indexes {
        if let Some(cand) = rewrite_site(&node, e) {
            enumerated_here += 1;
            let c = estimate(&cand, cat);
            if c < best_cost {
                best_cost = c;
                best = Some(cand);
            }
        }
    }
    stats.candidates_enumerated += enumerated_here;
    if best.is_some() {
        stats.rewrites_chosen += 1;
        stats.cost_gated += enumerated_here - 1;
    } else {
        stats.cost_gated += enumerated_here;
    }
    best.unwrap_or(node)
}

fn scan_produces_sorted(cols: &[usize], key: usize, e: &IndexStats) -> bool {
    matches!(e.constraint, Constraint::NearlySorted(SortDir::Asc))
        && cols.get(key) == Some(&e.column)
}

/// The Figure-2 rewrite of one node with one index, if its pattern
/// matches there (no recursion, no cost gate).
fn rewrite_site(node: &Plan, e: &IndexStats) -> Option<Plan> {
    match node {
        Plan::Distinct { input, cols } => match &**input {
            // Figure 2 (left): clone the scan into both flows; the
            // excluding flow needs no aggregation because the NUC holds
            // there (and its values are disjoint from patch values).
            // Single-column scans only: the excluding flow keeps the scan
            // width while the patches flow aggregates down to the key, so
            // a wider scan would union mismatched widths.
            Plan::Scan {
                cols: scan_cols,
                filter,
            } if matches!(e.constraint, Constraint::NearlyUnique)
                && cols.len() == 1
                && scan_cols.len() == 1
                && scan_cols.get(cols[0]) == Some(&e.column) =>
            {
                let union = Plan::Union {
                    inputs: vec![
                        Plan::PatchScan {
                            cols: scan_cols.clone(),
                            filter: filter.clone(),
                            mode: PatchMode::ExcludePatches,
                            slot: e.slot,
                        },
                        Plan::Distinct {
                            input: Box::new(Plan::PatchScan {
                                cols: scan_cols.clone(),
                                filter: filter.clone(),
                                mode: PatchMode::UsePatches,
                                slot: e.slot,
                            }),
                            cols: cols.clone(),
                        },
                    ],
                };
                if e.global_unique {
                    Some(union)
                } else {
                    // The index cannot vouch for cross-partition
                    // uniqueness of its kept values (a NUC restored from
                    // a pre-v4 checkpoint, whose discovery was
                    // partition-local): the flows may overlap across
                    // partitions, so dedup the union globally — the NCC
                    // shape. Still cheaper than re-aggregating the scan
                    // whenever the cost gate keeps it.
                    Some(Plan::Distinct {
                        input: Box::new(union),
                        cols: vec![0],
                    })
                }
            }
            // NCC: both flows get a distinct, but the excluding flow
            // aggregates into a single group per partition (the constant),
            // which the hash aggregation handles at near-scan speed. The
            // paper's Section 5.5 sketches such additional constraints.
            // Unlike the NUC rewrite, the flows' value sets are NOT
            // disjoint — a patch may carry another partition's constant
            // (or, while deferred maintenance is pending, the constant
            // itself) — so a global distinct over the union dedups across
            // flows and partitions; its input is already tiny.
            Plan::Scan {
                cols: scan_cols,
                filter,
            } if matches!(e.constraint, Constraint::NearlyConstant)
                && cols.len() == 1
                && scan_cols.get(cols[0]) == Some(&e.column) =>
            {
                Some(Plan::Distinct {
                    input: Box::new(Plan::Union {
                        inputs: vec![
                            Plan::Distinct {
                                input: Box::new(Plan::PatchScan {
                                    cols: scan_cols.clone(),
                                    filter: filter.clone(),
                                    mode: PatchMode::ExcludePatches,
                                    slot: e.slot,
                                }),
                                cols: cols.clone(),
                            },
                            Plan::Distinct {
                                input: Box::new(Plan::PatchScan {
                                    cols: scan_cols.clone(),
                                    filter: filter.clone(),
                                    mode: PatchMode::UsePatches,
                                    slot: e.slot,
                                }),
                                cols: cols.clone(),
                            },
                        ],
                    }),
                    // The inner distincts emit just the key column.
                    cols: vec![0],
                })
            }
            _ => None,
        },
        // Figure 2 with the aggregation exchanged for the sort operator:
        // the excluding flow is known to be sorted.
        Plan::Sort { input, keys } => match &**input {
            Plan::Scan {
                cols: scan_cols,
                filter,
            } if keys.len() == 1
                && keys[0].1 == SortOrder::Asc
                && scan_produces_sorted(scan_cols, keys[0].0, e) =>
            {
                Some(Plan::Merge {
                    inputs: vec![
                        Plan::PatchScan {
                            cols: scan_cols.clone(),
                            filter: filter.clone(),
                            mode: PatchMode::ExcludePatches,
                            slot: e.slot,
                        },
                        Plan::Sort {
                            input: Box::new(Plan::PatchScan {
                                cols: scan_cols.clone(),
                                filter: filter.clone(),
                                mode: PatchMode::UsePatches,
                                slot: e.slot,
                            }),
                            keys: keys.clone(),
                        },
                    ],
                    keys: keys.clone(),
                })
            }
            _ => None,
        },
        _ => None,
    }
}

/// Structural rewrite with one index and without cost gating (exposed
/// for tests/ablation): applies the index's pattern wherever it matches.
pub fn rewrite(plan: Plan, e: &IndexStats) -> Plan {
    let plan = match plan {
        Plan::Distinct { input, cols } => Plan::Distinct {
            input: Box::new(rewrite(*input, e)),
            cols,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(rewrite(*input, e)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(rewrite(*input, e)),
            n,
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs.into_iter().map(|p| rewrite(p, e)).collect(),
        },
        Plan::Merge { inputs, keys } => Plan::Merge {
            inputs: inputs.into_iter().map(|p| rewrite(p, e)).collect(),
            keys,
        },
        leaf => leaf,
    };
    rewrite_site(&plan, e).unwrap_or(plan)
}

/// Cardinality upper bound with a caller-supplied leaf bound — global
/// catalog totals for plan-level ZBP, per-partition live counts for the
/// lowering's partition prune. `leaf` is only invoked on Scan/PatchScan
/// nodes.
pub(crate) fn bounded_cardinality<F: Fn(&Plan) -> u64>(plan: &Plan, leaf: &F) -> u64 {
    match plan {
        Plan::Scan { .. } | Plan::PatchScan { .. } => leaf(plan),
        Plan::Distinct { input, .. } | Plan::Sort { input, .. } => bounded_cardinality(input, leaf),
        Plan::Limit { input, n } => (*n as u64).min(bounded_cardinality(input, leaf)),
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            inputs.iter().map(|p| bounded_cardinality(p, leaf)).sum()
        }
    }
}

/// The one zero-branch-prune traversal, shared by plan-level ZBP and the
/// lowering's per-partition specialization: drops Union/Merge children
/// whose cardinality bound is zero, collapses single-child combines, and
/// returns `None` when the whole subtree is provably empty.
///
/// Returns a [`Cow`]: a subtree from which nothing was pruned is
/// *borrowed*, not rebuilt — so the per-partition specialization of a
/// partition that prunes nothing costs a traversal, never a deep clone
/// of the plan tree (the lowering runs this once per partition).
///
/// `collapse_single_merge` must only be set when the caller lowers the
/// result for a **single partition**: within one partition a surviving
/// Merge child really is sorted, but at plan level a bare
/// `PatchScan[exclude]` lowers as a bag concatenation of partitions —
/// NSC sortedness is per-partition, so dropping the Merge there would
/// return partition-concatenated (unsorted) output. Single-child
/// *Union* collapse is always safe (bag semantics either way).
pub(crate) fn prune_zero_branches<'a, F: Fn(&Plan) -> u64>(
    plan: &'a Plan,
    leaf: &F,
    collapse_single_merge: bool,
) -> Option<Cow<'a, Plan>> {
    if bounded_cardinality(plan, leaf) == 0 {
        return None;
    }
    // "Unchanged" means borrowed AND the very node that went in: a
    // combine that collapsed to a single child also comes back borrowed
    // (of the *child*), and treating that as unchanged would silently
    // undo the pruning wherever a combine sits under a wrapper node.
    let unchanged = |c: &Cow<'a, Plan>, original: &Plan| matches!(c, Cow::Borrowed(b) if std::ptr::eq(*b, original));
    let prune = |p: &'a Plan| prune_zero_branches(p, leaf, collapse_single_merge);
    let pruned = match plan {
        Plan::Union { inputs } => {
            let mut kept: Vec<Cow<'a, Plan>> = inputs.iter().filter_map(prune).collect();
            if kept.len() == inputs.len() && kept.iter().zip(inputs).all(|(c, i)| unchanged(c, i)) {
                Cow::Borrowed(plan)
            } else if kept.len() == 1 {
                kept.pop().unwrap()
            } else {
                Cow::Owned(Plan::Union {
                    inputs: kept.into_iter().map(Cow::into_owned).collect(),
                })
            }
        }
        Plan::Merge { inputs, keys } => {
            let mut kept: Vec<Cow<'a, Plan>> = inputs.iter().filter_map(prune).collect();
            if kept.len() == inputs.len() && kept.iter().zip(inputs).all(|(c, i)| unchanged(c, i)) {
                Cow::Borrowed(plan)
            } else if kept.len() == 1 && collapse_single_merge {
                kept.pop().unwrap()
            } else {
                Cow::Owned(Plan::Merge {
                    inputs: kept.into_iter().map(Cow::into_owned).collect(),
                    keys: keys.clone(),
                })
            }
        }
        Plan::Distinct { input, cols } => {
            let child = prune(input)?;
            if unchanged(&child, input) {
                Cow::Borrowed(plan)
            } else {
                Cow::Owned(Plan::Distinct {
                    input: Box::new(child.into_owned()),
                    cols: cols.clone(),
                })
            }
        }
        Plan::Sort { input, keys } => {
            let child = prune(input)?;
            if unchanged(&child, input) {
                Cow::Borrowed(plan)
            } else {
                Cow::Owned(Plan::Sort {
                    input: Box::new(child.into_owned()),
                    keys: keys.clone(),
                })
            }
        }
        Plan::Limit { input, n } => {
            let child = prune(input)?;
            if unchanged(&child, input) {
                Cow::Borrowed(plan)
            } else {
                Cow::Owned(Plan::Limit {
                    input: Box::new(child.into_owned()),
                    n: *n,
                })
            }
        }
        leaf_node => Cow::Borrowed(leaf_node),
    };
    Some(pruned)
}

/// Zero-branch pruning (paper, Section 6.3): subtrees whose cardinality
/// estimate is guaranteed zero are dropped from Union/Merge nodes,
/// removing all overhead the subtree cloning introduced. This is the
/// plan-level (global-count) prune; lowering additionally prunes per
/// partition with the same traversal.
pub fn zero_branch_prune(plan: Plan, cat: &IndexCatalog) -> Plan {
    let slot_entry = |slot: usize| {
        cat.by_slot(slot)
            .expect("PatchScan bound to a slot outside the catalog")
    };
    let leaf = |p: &Plan| match p {
        Plan::Scan { .. } => cat.rows(),
        Plan::PatchScan {
            mode: PatchMode::UsePatches,
            slot,
            ..
        } => slot_entry(*slot).patches(),
        Plan::PatchScan {
            mode: PatchMode::ExcludePatches,
            slot,
            ..
        } => {
            let e = slot_entry(*slot);
            e.rows() - e.patches()
        }
        _ => unreachable!("leaf bound invoked on a non-leaf node"),
    };
    match prune_zero_branches(&plan, &leaf, false) {
        Some(pruned) => pruned.into_owned(),
        None => plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{catalog, entry};

    fn nuc_cat(rows: u64, patches: u64) -> IndexCatalog {
        catalog(
            vec![rows],
            vec![entry(
                0,
                1,
                Constraint::NearlyUnique,
                vec![(rows, patches)],
                patches / 2,
            )],
        )
    }

    fn nsc_cat(rows: u64, patches: u64) -> IndexCatalog {
        catalog(
            vec![rows],
            vec![entry(
                0,
                1,
                Constraint::NearlySorted(SortDir::Asc),
                vec![(rows, patches)],
                0,
            )],
        )
    }

    #[test]
    fn distinct_rewrite_produces_figure2_shape() {
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan, &nuc_cat(1_000_000, 1_000), false);
        let s = opt.to_string();
        assert!(s.starts_with("Union"), "got:\n{s}");
        assert!(s.contains("exclude_patches"));
        assert!(s.contains("use_patches"));
        // The excluding flow must NOT contain a Distinct.
        let first_branch = s.lines().nth(1).unwrap();
        assert!(first_branch.contains("PatchScan[exclude_patches]"));
    }

    #[test]
    fn nuc_without_global_uniqueness_gets_an_outer_distinct() {
        // A legacy (pre-v4 checkpoint) NUC cannot vouch for cross-
        // partition uniqueness: the rewrite must dedup the union
        // globally, like the NCC shape.
        let mut e = entry(
            0,
            1,
            Constraint::NearlyUnique,
            vec![(1_000_000, 1_000)],
            500,
        );
        e.global_unique = false;
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let s = rewrite(plan.clone(), &e).to_string();
        assert!(s.starts_with("Distinct"), "got:\n{s}");
        assert!(s.lines().nth(1).unwrap().contains("Union"), "got:\n{s}");
        assert!(s.contains("exclude_patches") && s.contains("use_patches"));
        // The guarded shape re-aggregates nearly everything, so the cost
        // gate prefers the reference plan — the guard only matters if a
        // cost quirk ever picks the rewrite, and then it is still exact.
        let cat = catalog(vec![1_000_000], vec![e]);
        let opt = optimize(plan, &cat, false).to_string();
        assert!(!opt.contains("PatchScan"), "got:\n{opt}");
    }

    #[test]
    fn sort_rewrite_produces_merge() {
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan, &nsc_cat(1_000_000, 5_000), false);
        let s = opt.to_string();
        assert!(s.starts_with("Merge"), "got:\n{s}");
        assert!(s.contains("Sort"));
    }

    #[test]
    fn mismatched_column_not_rewritten() {
        // Distinct over column 0, index on column 1.
        let plan = Plan::scan(vec![0]).distinct(vec![0]);
        let opt = optimize(plan, &nuc_cat(1_000, 10), false);
        assert!(opt.to_string().starts_with("Distinct"));
    }

    #[test]
    fn descending_sort_not_rewritten_by_asc_index() {
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Desc)]);
        let opt = optimize(plan, &nsc_cat(1_000, 10), false);
        assert!(opt.to_string().starts_with("Sort"));
    }

    #[test]
    fn zbp_drops_empty_patches_branch() {
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan, &nuc_cat(1_000_000, 0), true);
        let s = opt.to_string();
        assert!(s.starts_with("PatchScan[exclude_patches]"), "got:\n{s}");
        assert!(!s.contains("use_patches"));
    }

    #[test]
    fn zbp_keeps_nonzero_branches() {
        let plan = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let opt = optimize(plan, &nsc_cat(1_000_000, 7), true);
        assert!(opt.to_string().starts_with("Merge"));
    }

    #[test]
    fn ncc_distinct_rewrite_produces_deduped_union_of_distincts() {
        let e = entry(0, 1, Constraint::NearlyConstant, vec![(1_000_000, 100)], 0);
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = rewrite(plan, &e);
        let s = opt.to_string();
        // Outer global distinct: the flows' value sets are not disjoint.
        assert!(s.starts_with("Distinct"), "got:\n{s}");
        assert!(s.lines().nth(1).unwrap().contains("Union"), "got:\n{s}");
        assert!(s.contains("exclude_patches") && s.contains("use_patches"));
    }

    #[test]
    fn full_exception_rate_keeps_reference_plan() {
        // With e = 1 the rewrite buys nothing; the cost gate rejects it.
        let plan = Plan::scan(vec![1]).distinct(vec![0]);
        let opt = optimize(plan, &nuc_cat(1_000, 1_000), false);
        assert!(opt.to_string().starts_with("Distinct"), "got:\n{}", opt);
    }

    #[test]
    fn selects_the_matching_index_per_query_across_columns() {
        // Two NUC indexes on different columns; each distinct query binds
        // the index of the column it scans.
        let cat = catalog(
            vec![100_000],
            vec![
                entry(0, 1, Constraint::NearlyUnique, vec![(100_000, 50)], 20),
                entry(1, 2, Constraint::NearlyUnique, vec![(100_000, 80)], 30),
            ],
        );
        // Distinct over table col 1 -> slot 0.
        let q1 = Plan::scan(vec![1]).distinct(vec![0]);
        let s = optimize(q1, &cat, false).to_string();
        assert!(s.contains("slot=0"), "got:\n{s}");
        assert!(!s.contains("slot=1"));
        // Distinct over table col 2 -> slot 1.
        let q2 = Plan::scan(vec![2]).distinct(vec![0]);
        let s = optimize(q2, &cat, false).to_string();
        assert!(s.contains("slot=1"), "got:\n{s}");
        assert!(!s.contains("slot=0"));
    }

    #[test]
    fn multi_column_scan_distinct_is_not_rewritten() {
        // A wider scan must keep the reference plan: the excluding flow
        // keeps the full scan width while the patches flow aggregates to
        // the key, so the Figure-2 union would mismatch widths.
        let cat = catalog(
            vec![1_000_000],
            vec![entry(
                0,
                1,
                Constraint::NearlyUnique,
                vec![(1_000_000, 10)],
                5,
            )],
        );
        let q = Plan::Scan {
            cols: vec![0, 1],
            filter: None,
        }
        .distinct(vec![1]);
        let s = optimize(q, &cat, false).to_string();
        assert!(s.starts_with("Distinct"), "got:\n{s}");
        assert!(!s.contains("PatchScan"));
    }

    #[test]
    fn selects_the_cheaper_index_when_both_match() {
        // NUC and NCC both cover the distinct column; whichever has the
        // (much) smaller patch set must win — tested in both directions.
        let plan = || Plan::scan(vec![1]).distinct(vec![0]);
        let nuc_cheap = catalog(
            vec![1_000_000],
            vec![
                entry(0, 1, Constraint::NearlyUnique, vec![(1_000_000, 100)], 40),
                entry(
                    1,
                    1,
                    Constraint::NearlyConstant,
                    vec![(1_000_000, 600_000)],
                    0,
                ),
            ],
        );
        let s = optimize(plan(), &nuc_cheap, false).to_string();
        assert!(s.contains("slot=0"), "NUC should win:\n{s}");
        assert!(!s.contains("slot=1"));

        let ncc_cheap = catalog(
            vec![1_000_000],
            vec![
                entry(
                    0,
                    1,
                    Constraint::NearlyUnique,
                    vec![(1_000_000, 990_000)],
                    300_000,
                ),
                entry(1, 1, Constraint::NearlyConstant, vec![(1_000_000, 100)], 0),
            ],
        );
        let s = optimize(plan(), &ncc_cheap, false).to_string();
        assert!(s.contains("slot=1"), "NCC should win:\n{s}");
        assert!(!s.contains("slot=0"));
    }

    #[test]
    fn different_sites_bind_different_indexes() {
        // A Union of two distinct queries over different columns: each
        // site binds its own index.
        let cat = catalog(
            vec![100_000],
            vec![
                entry(0, 1, Constraint::NearlyUnique, vec![(100_000, 10)], 5),
                entry(1, 2, Constraint::NearlyUnique, vec![(100_000, 10)], 5),
            ],
        );
        let q = Plan::Union {
            inputs: vec![
                Plan::scan(vec![1]).distinct(vec![0]),
                Plan::scan(vec![2]).distinct(vec![0]),
            ],
        };
        let s = optimize(q, &cat, false).to_string();
        assert!(s.contains("slot=0") && s.contains("slot=1"), "got:\n{s}");
    }
}
