//! Cost model (paper, Section 3.5).
//!
//! PatchIndex plans are built from ordinary operators whose cardinalities
//! are known at optimization time (the patch count is materialized), so a
//! classical per-tuple cost model suffices. The constants approximate the
//! relative operator costs observed in the evaluation: the patch selection
//! adds a small fixed per-tuple overhead (paper: "typically below 1%" of
//! runtime), aggregation and sorting dominate.
//!
//! Statistics come from an [`IndexCatalog`] snapshot: each `PatchScan`
//! site is costed with the per-slot counts of the index it binds, and the
//! distinct-cardinality estimate is index-informed — when a NUC index
//! covers the distinct column, `distinct ≈ (rows − patches) +
//! distinct(patches)` replaces the conventional 50% guess (the NUC
//! materializes every occurrence of a duplicated value as a patch, so the
//! kept rows are exactly the single-occurrence values).

use patchindex::{Constraint, IndexCatalog, IndexStats};
use pi_exec::ops::patch_select::PatchMode;

use crate::logical::Plan;

/// Per-tuple scan cost.
const C_SCAN: f64 = 1.0;
/// Per-tuple overhead of the patch selection modes.
const C_PATCH_SELECT: f64 = 0.05;
/// Per-tuple hash-aggregation cost.
const C_AGG: f64 = 4.0;
/// Per-tuple cost of a hash aggregation that collapses into one group
/// per partition (the NCC excluding flow): every probe hits the same hot
/// cache line, so it runs at near-scan speed.
const C_AGG_CONST: f64 = 0.5;
/// Per-tuple-comparison sort constant (multiplied by log2 n).
const C_SORT: f64 = 0.6;
/// Per-tuple union/merge cost.
const C_COMBINE: f64 = 0.1;

fn slot_stats(cat: &IndexCatalog, slot: usize) -> &IndexStats {
    cat.by_slot(slot)
        .expect("PatchScan bound to a slot outside the catalog")
}

/// Whether `input` is the constraint-satisfying flow of an NCC index on
/// the distinct column — its aggregation sees one group per partition.
fn is_ncc_constant_flow(input: &Plan, cols: &[usize], cat: &IndexCatalog) -> bool {
    if cols.len() != 1 {
        return false;
    }
    match input {
        Plan::PatchScan {
            cols: scan_cols,
            mode: PatchMode::ExcludePatches,
            slot,
            ..
        } => {
            let e = slot_stats(cat, *slot);
            e.constraint == Constraint::NearlyConstant && scan_cols.get(cols[0]) == Some(&e.column)
        }
        _ => false,
    }
}

/// Index-informed distinct output estimate; `None` when no materialized
/// constraint covers the (single) distinct column and the conventional
/// reduction applies.
fn indexed_distinct_estimate(input: &Plan, cols: &[usize], cat: &IndexCatalog) -> Option<f64> {
    if cols.len() != 1 {
        return None;
    }
    if is_ncc_constant_flow(input, cols, cat) {
        // One constant value per partition.
        return Some(cat.partition_count() as f64);
    }
    match input {
        Plan::Scan {
            cols: scan_cols, ..
        } => {
            let col = *scan_cols.get(cols[0])?;
            let e = cat.nuc_on(col)?;
            Some((e.rows() - e.patches() + e.patch_distinct) as f64)
        }
        Plan::PatchScan {
            cols: scan_cols,
            mode,
            slot,
            ..
        } => {
            let e = slot_stats(cat, *slot);
            if e.constraint != Constraint::NearlyUnique || scan_cols.get(cols[0]) != Some(&e.column)
            {
                return None;
            }
            Some(match mode {
                // Kept rows are unique (and each a distinct value).
                PatchMode::ExcludePatches => (e.rows() - e.patches()) as f64,
                // Every patch value is materialized with its duplicates.
                PatchMode::UsePatches => e.patch_distinct as f64,
            })
        }
        _ => None,
    }
}

/// Estimated output cardinality.
pub fn cardinality(plan: &Plan, cat: &IndexCatalog) -> f64 {
    match plan {
        Plan::Scan { .. } => cat.rows() as f64,
        Plan::PatchScan {
            mode: PatchMode::UsePatches,
            slot,
            ..
        } => slot_stats(cat, *slot).patches() as f64,
        Plan::PatchScan {
            mode: PatchMode::ExcludePatches,
            slot,
            ..
        } => {
            let e = slot_stats(cat, *slot);
            (e.rows() - e.patches()) as f64
        }
        Plan::Distinct { input, cols } => {
            let input_card = cardinality(input, cat);
            indexed_distinct_estimate(input, cols, cat)
                // Distinct output is data dependent; a 50% reduction is
                // the conventional default estimate when no index informs
                // it.
                .unwrap_or(input_card * 0.5)
                .min(input_card)
        }
        Plan::Sort { input, .. } => cardinality(input, cat),
        Plan::Limit { input, n } => cardinality(input, cat).min(*n as f64),
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            inputs.iter().map(|p| cardinality(p, cat)).sum()
        }
    }
}

/// Estimated execution cost of the plan tree.
pub fn estimate(plan: &Plan, cat: &IndexCatalog) -> f64 {
    match plan {
        Plan::Scan { .. } => cat.rows() as f64 * C_SCAN,
        // The selection reads every scanned tuple and drops a part.
        Plan::PatchScan { slot, .. } => {
            slot_stats(cat, *slot).rows() as f64 * (C_SCAN + C_PATCH_SELECT)
        }
        Plan::Distinct { input, cols } => {
            let per_tuple = if is_ncc_constant_flow(input, cols, cat) {
                C_AGG_CONST
            } else {
                C_AGG
            };
            estimate(input, cat) + cardinality(input, cat) * per_tuple
        }
        Plan::Sort { input, .. } => {
            let n = cardinality(input, cat).max(2.0);
            estimate(input, cat) + n * n.log2() * C_SORT
        }
        Plan::Limit { input, .. } => estimate(input, cat),
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            let children: f64 = inputs.iter().map(|p| estimate(p, cat)).sum();
            children + cardinality(plan, cat) * C_COMBINE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{catalog, entry};
    use patchindex::Constraint;
    use pi_exec::ops::sort::SortOrder;

    fn nuc_cat(rows: u64, patches: u64, patch_distinct: u64) -> IndexCatalog {
        catalog(
            vec![rows],
            vec![entry(
                0,
                1,
                Constraint::NearlyUnique,
                vec![(rows, patches)],
                patch_distinct,
            )],
        )
    }

    fn pscan(mode: PatchMode, slot: usize) -> Plan {
        Plan::PatchScan {
            cols: vec![1],
            filter: None,
            mode,
            slot,
        }
    }

    #[test]
    fn rewritten_distinct_cheaper_at_low_e() {
        let reference = Plan::scan(vec![1]).distinct(vec![0]);
        let rewritten = Plan::Union {
            inputs: vec![
                pscan(PatchMode::ExcludePatches, 0),
                Plan::Distinct {
                    input: Box::new(pscan(PatchMode::UsePatches, 0)),
                    cols: vec![0],
                },
            ],
        };
        let cat = nuc_cat(1_000_000, 10_000, 4_000);
        assert!(estimate(&rewritten, &cat) < estimate(&reference, &cat));
        // At e = 1 the rewrite pays double scans for nothing.
        let cat1 = nuc_cat(1_000_000, 1_000_000, 400_000);
        assert!(estimate(&rewritten, &cat1) > estimate(&reference, &cat1));
    }

    #[test]
    fn sort_cost_grows_superlinearly() {
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let small = estimate(&sort, &nuc_cat(1_000, 0, 0));
        let big = estimate(&sort, &nuc_cat(100_000, 0, 0));
        assert!(big > small * 100.0);
    }

    #[test]
    fn cardinalities_split_by_patches() {
        let cat = nuc_cat(100, 30, 10);
        let ex = pscan(PatchMode::ExcludePatches, 0);
        let us = pscan(PatchMode::UsePatches, 0);
        assert_eq!(cardinality(&ex, &cat), 70.0);
        assert_eq!(cardinality(&us, &cat), 30.0);
        assert_eq!(
            cardinality(
                &Plan::Union {
                    inputs: vec![ex, us]
                },
                &cat
            ),
            100.0
        );
    }

    #[test]
    fn limit_caps_cardinality() {
        let p = Plan::scan(vec![0]).limit(10);
        assert_eq!(cardinality(&p, &nuc_cat(1_000, 0, 0)), 10.0);
    }

    #[test]
    fn nuc_informs_distinct_estimate() {
        // Near-unique column: 100 patches over 2 duplicated values. The
        // old 50% guess said 500_000; the index knows better.
        let cat = nuc_cat(1_000_000, 100, 2);
        let full = Plan::scan(vec![1]).distinct(vec![0]);
        assert_eq!(cardinality(&full, &cat), (1_000_000 - 100 + 2) as f64);
        // Both rewritten flows are exact too.
        let ex_distinct = pscan(PatchMode::ExcludePatches, 0).distinct(vec![0]);
        assert_eq!(cardinality(&ex_distinct, &cat), (1_000_000 - 100) as f64);
        let us_distinct = pscan(PatchMode::UsePatches, 0).distinct(vec![0]);
        assert_eq!(cardinality(&us_distinct, &cat), 2.0);
    }

    #[test]
    fn distinct_over_unindexed_column_keeps_default_reduction() {
        // The NUC covers column 1; the scan produces column 0.
        let cat = catalog(
            vec![1_000],
            vec![entry(0, 1, Constraint::NearlyUnique, vec![(1_000, 10)], 5)],
        );
        let p = Plan::scan(vec![0]).distinct(vec![0]);
        assert_eq!(cardinality(&p, &cat), 500.0);
    }
}
