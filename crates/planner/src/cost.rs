//! Cost model (paper, Section 3.5).
//!
//! PatchIndex plans are built from ordinary operators whose cardinalities
//! are known at optimization time (the patch count is materialized), so a
//! classical per-tuple cost model suffices. The constants approximate the
//! relative operator costs observed in the evaluation: the patch selection
//! adds a small fixed per-tuple overhead (paper: "typically below 1%" of
//! runtime), aggregation and sorting dominate.

use pi_exec::ops::patch_select::PatchMode;

use crate::logical::Plan;

/// Optimizer statistics for the bound table.
#[derive(Debug, Clone, Copy)]
pub struct TableStats {
    /// Total rows.
    pub rows: u64,
    /// Patches of the index under consideration.
    pub patches: u64,
}

/// Per-tuple scan cost.
const C_SCAN: f64 = 1.0;
/// Per-tuple overhead of the patch selection modes.
const C_PATCH_SELECT: f64 = 0.05;
/// Per-tuple hash-aggregation cost.
const C_AGG: f64 = 4.0;
/// Per-tuple-comparison sort constant (multiplied by log2 n).
const C_SORT: f64 = 0.6;
/// Per-tuple union/merge cost.
const C_COMBINE: f64 = 0.1;

/// Estimated output cardinality.
pub fn cardinality(plan: &Plan, stats: &TableStats) -> f64 {
    match plan {
        Plan::Scan { .. } => stats.rows as f64,
        Plan::PatchScan { mode: PatchMode::UsePatches, .. } => stats.patches as f64,
        Plan::PatchScan { mode: PatchMode::ExcludePatches, .. } => {
            (stats.rows - stats.patches) as f64
        }
        // Distinct output is data dependent; a 50% reduction is the
        // conventional default estimate.
        Plan::Distinct { input, .. } => cardinality(input, stats) * 0.5,
        Plan::Sort { input, .. } => cardinality(input, stats),
        Plan::Limit { input, n } => cardinality(input, stats).min(*n as f64),
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            inputs.iter().map(|p| cardinality(p, stats)).sum()
        }
    }
}

/// Estimated execution cost of the plan tree.
pub fn estimate(plan: &Plan, stats: &TableStats) -> f64 {
    match plan {
        Plan::Scan { .. } => stats.rows as f64 * C_SCAN,
        // The selection reads every scanned tuple and drops a part.
        Plan::PatchScan { .. } => stats.rows as f64 * (C_SCAN + C_PATCH_SELECT),
        Plan::Distinct { input, .. } => {
            estimate(input, stats) + cardinality(input, stats) * C_AGG
        }
        Plan::Sort { input, .. } => {
            let n = cardinality(input, stats).max(2.0);
            estimate(input, stats) + n * n.log2() * C_SORT
        }
        Plan::Limit { input, .. } => estimate(input, stats),
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            let children: f64 = inputs.iter().map(|p| estimate(p, stats)).sum();
            children + cardinality(plan, stats) * C_COMBINE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_exec::ops::sort::SortOrder;

    fn stats(rows: u64, patches: u64) -> TableStats {
        TableStats { rows, patches }
    }

    #[test]
    fn rewritten_distinct_cheaper_at_low_e() {
        let reference = Plan::scan(vec![1]).distinct(vec![0]);
        let rewritten = Plan::Union {
            inputs: vec![
                Plan::PatchScan {
                    cols: vec![1],
                    filter: None,
                    mode: PatchMode::ExcludePatches,
                },
                Plan::Distinct {
                    input: Box::new(Plan::PatchScan {
                        cols: vec![1],
                        filter: None,
                        mode: PatchMode::UsePatches,
                    }),
                    cols: vec![0],
                },
            ],
        };
        let s = stats(1_000_000, 10_000);
        assert!(estimate(&rewritten, &s) < estimate(&reference, &s));
        // At e = 1 the rewrite pays double scans for nothing.
        let s1 = stats(1_000_000, 1_000_000);
        assert!(estimate(&rewritten, &s1) > estimate(&reference, &s1));
    }

    #[test]
    fn sort_cost_grows_superlinearly() {
        let sort = Plan::scan(vec![1]).sort(vec![(0, SortOrder::Asc)]);
        let small = estimate(&sort, &stats(1_000, 0));
        let big = estimate(&sort, &stats(100_000, 0));
        assert!(big > small * 100.0);
    }

    #[test]
    fn cardinalities_split_by_patches() {
        let s = stats(100, 30);
        let ex = Plan::PatchScan { cols: vec![1], filter: None, mode: PatchMode::ExcludePatches };
        let us = Plan::PatchScan { cols: vec![1], filter: None, mode: PatchMode::UsePatches };
        assert_eq!(cardinality(&ex, &s), 70.0);
        assert_eq!(cardinality(&us, &s), 30.0);
        assert_eq!(cardinality(&Plan::Union { inputs: vec![ex, us] }, &s), 100.0);
    }

    #[test]
    fn limit_caps_cardinality() {
        let p = Plan::scan(vec![0]).limit(10);
        assert_eq!(cardinality(&p, &stats(1_000, 0)), 10.0);
    }
}
