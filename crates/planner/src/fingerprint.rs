//! Canonical plan fingerprints for the result cache.
//!
//! The cache in `patchindex::cache` identifies entries by a stable 64-bit
//! hash of a **canonical byte encoding** of the chosen (optimized)
//! logical plan, the query mode (rows vs count) and the catalog entries
//! its `PatchScan` sites bind. The encoding — not the hash — is the
//! source of truth: entries store the canonical bytes and verify them on
//! every hit, so a hash collision degrades to a cache miss, never to a
//! wrong result.
//!
//! Two executions share a fingerprint only when they would run the same
//! operator tree against indexes materializing the same `(column,
//! constraint)` at the same slots. Everything *data-dependent* (row
//! counts, patch rates, Arc versions) is deliberately excluded — data
//! validity is the dependency footprint's job, checked by pointer
//! identity at lookup time.
//!
//! The hash is FNV-1a over the canonical bytes: stable across runs and
//! platforms (no `RandomState`), which keeps fingerprints reproducible
//! in tests and benchmarks.

use patchindex::{Constraint, IndexCatalog, SortDir};
use pi_exec::expr::{ArithOp, CmpOp, Expr};
use pi_exec::ops::patch_select::PatchMode;
use pi_exec::ops::sort::SortOrder;

use crate::logical::Plan;

/// Which executing entry point a fingerprint is for. `query` and
/// `query_count` of the same plan return different value shapes, so they
/// must never share a cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Materialized rows (`query`).
    Rows,
    /// Row count only (`query_count`).
    Count,
}

/// Encoding version tag — bump when the byte layout changes so stale
/// entries from an incompatible layout can never verify.
const VERSION: u8 = 1;

/// Builds the canonical byte form of `(plan, mode, bound catalog
/// entries)`. Deterministic: equal inputs yield equal bytes.
pub fn canonical_bytes(plan: &Plan, cat: &IndexCatalog, mode: QueryMode) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(VERSION);
    out.push(match mode {
        QueryMode::Rows => 0,
        QueryMode::Count => 1,
    });
    encode_plan(plan, &mut out);
    // Bound catalog entries: which (column, constraint) each PatchScan
    // slot resolves to. Two tables (or two epochs of one table, after
    // drops shifted slots) where slot 0 means different indexes must not
    // share a fingerprint.
    let mut slots = bound_slots(plan);
    slots.sort_unstable();
    slots.dedup();
    push_usize(&mut out, slots.len());
    for slot in slots {
        let stats = &cat.indexes[slot];
        push_usize(&mut out, slot);
        push_usize(&mut out, stats.column);
        out.push(constraint_code(stats.constraint));
    }
    out
}

/// Stable FNV-1a 64-bit hash of the canonical bytes.
pub fn fingerprint_hash(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Every `PatchScan` slot bound anywhere in the plan (unsorted, may
/// repeat).
pub fn bound_slots(plan: &Plan) -> Vec<usize> {
    let mut slots = Vec::new();
    collect_slots(plan, &mut slots);
    slots
}

fn collect_slots(plan: &Plan, out: &mut Vec<usize>) {
    match plan {
        Plan::Scan { .. } => {}
        Plan::PatchScan { slot, .. } => out.push(*slot),
        Plan::Distinct { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
            collect_slots(input, out)
        }
        Plan::Union { inputs } | Plan::Merge { inputs, .. } => {
            for p in inputs {
                collect_slots(p, out);
            }
        }
    }
}

fn constraint_code(c: Constraint) -> u8 {
    match c {
        Constraint::NearlyUnique => 0,
        Constraint::NearlySorted(SortDir::Asc) => 1,
        Constraint::NearlySorted(SortDir::Desc) => 2,
        Constraint::NearlyConstant => 3,
    }
}

fn push_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn push_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_keys(out: &mut Vec<u8>, keys: &[(usize, SortOrder)]) {
    push_usize(out, keys.len());
    for (col, order) in keys {
        push_usize(out, *col);
        out.push(match order {
            SortOrder::Asc => 0,
            SortOrder::Desc => 1,
        });
    }
}

fn push_cols(out: &mut Vec<u8>, cols: &[usize]) {
    push_usize(out, cols.len());
    for &c in cols {
        push_usize(out, c);
    }
}

fn encode_plan(plan: &Plan, out: &mut Vec<u8>) {
    match plan {
        Plan::Scan { cols, filter } => {
            out.push(1);
            push_cols(out, cols);
            encode_filter(filter.as_ref(), out);
        }
        Plan::PatchScan {
            cols,
            filter,
            mode,
            slot,
        } => {
            out.push(2);
            push_cols(out, cols);
            encode_filter(filter.as_ref(), out);
            out.push(match mode {
                PatchMode::ExcludePatches => 0,
                PatchMode::UsePatches => 1,
            });
            push_usize(out, *slot);
        }
        Plan::Distinct { input, cols } => {
            out.push(3);
            encode_plan(input, out);
            push_cols(out, cols);
        }
        Plan::Sort { input, keys } => {
            out.push(4);
            encode_plan(input, out);
            push_keys(out, keys);
        }
        Plan::Limit { input, n } => {
            out.push(5);
            encode_plan(input, out);
            push_usize(out, *n);
        }
        Plan::Union { inputs } => {
            out.push(6);
            push_usize(out, inputs.len());
            for p in inputs {
                encode_plan(p, out);
            }
        }
        Plan::Merge { inputs, keys } => {
            out.push(7);
            push_usize(out, inputs.len());
            for p in inputs {
                encode_plan(p, out);
            }
            push_keys(out, keys);
        }
    }
}

fn encode_filter(filter: Option<&Expr>, out: &mut Vec<u8>) {
    match filter {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            encode_expr(e, out);
        }
    }
}

fn encode_expr(e: &Expr, out: &mut Vec<u8>) {
    match e {
        Expr::Col(i) => {
            out.push(1);
            push_usize(out, *i);
        }
        Expr::LitInt(v) => {
            out.push(2);
            push_i64(out, *v);
        }
        Expr::LitFloat(v) => {
            // Bit pattern, not value: 0.0 and -0.0 compare equal but
            // produce different downstream results in sorts — distinct
            // bits must stay distinct fingerprints.
            out.push(3);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Expr::LitCode(c) => {
            out.push(4);
            out.extend_from_slice(&c.to_le_bytes());
        }
        Expr::Cmp(op, a, b) => {
            out.push(5);
            out.push(match op {
                CmpOp::Eq => 0,
                CmpOp::Ne => 1,
                CmpOp::Lt => 2,
                CmpOp::Le => 3,
                CmpOp::Gt => 4,
                CmpOp::Ge => 5,
            });
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::Between(a, lo, hi) => {
            out.push(6);
            encode_expr(a, out);
            push_i64(out, *lo);
            push_i64(out, *hi);
        }
        Expr::InInts(a, set) => {
            out.push(7);
            encode_expr(a, out);
            push_usize(out, set.len());
            for v in set {
                push_i64(out, *v);
            }
        }
        Expr::And(a, b) => {
            out.push(8);
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::Or(a, b) => {
            out.push(9);
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::Not(a) => {
            out.push(10);
            encode_expr(a, out);
        }
        Expr::Arith(op, a, b) => {
            out.push(11);
            out.push(match op {
                ArithOp::Add => 0,
                ArithOp::Sub => 1,
                ArithOp::Mul => 2,
                ArithOp::Div => 3,
            });
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::Year(a) => {
            out.push(12);
            encode_expr(a, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchindex::{Design, PatchIndex};
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table};

    fn catalog(constraint: Constraint) -> IndexCatalog {
        let mut t = Table::new(
            "f",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            1,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![1, 2, 3])]);
        t.propagate_all();
        let idx = vec![PatchIndex::create(&t, 0, constraint, Design::Bitmap)];
        IndexCatalog::of(&t, &idx)
    }

    #[test]
    fn equal_plans_share_a_fingerprint() {
        let cat = catalog(Constraint::NearlyUnique);
        let a = Plan::scan(vec![0]).distinct(vec![0]);
        let b = Plan::scan(vec![0]).distinct(vec![0]);
        assert_eq!(
            canonical_bytes(&a, &cat, QueryMode::Rows),
            canonical_bytes(&b, &cat, QueryMode::Rows)
        );
    }

    #[test]
    fn mode_and_shape_separate_fingerprints() {
        let cat = catalog(Constraint::NearlyUnique);
        let plan = Plan::scan(vec![0]).distinct(vec![0]);
        let rows = canonical_bytes(&plan, &cat, QueryMode::Rows);
        let count = canonical_bytes(&plan, &cat, QueryMode::Count);
        assert_ne!(rows, count, "rows vs count must not share entries");
        let other = canonical_bytes(&Plan::scan(vec![0]), &cat, QueryMode::Rows);
        assert_ne!(rows, other);
        let limited = canonical_bytes(&Plan::scan(vec![0]).limit(3), &cat, QueryMode::Rows);
        let limited9 = canonical_bytes(&Plan::scan(vec![0]).limit(9), &cat, QueryMode::Rows);
        assert_ne!(limited, limited9);
    }

    #[test]
    fn bound_entries_enter_the_encoding() {
        let plan = Plan::PatchScan {
            cols: vec![0],
            filter: None,
            mode: PatchMode::ExcludePatches,
            slot: 0,
        };
        let nuc = canonical_bytes(&plan, &catalog(Constraint::NearlyUnique), QueryMode::Rows);
        let nsc = canonical_bytes(
            &plan,
            &catalog(Constraint::NearlySorted(SortDir::Asc)),
            QueryMode::Rows,
        );
        // Same plan tree, same slot — but the slot binds a different
        // constraint, so the canonical forms differ.
        assert_ne!(nuc, nsc);
        assert_eq!(bound_slots(&plan), vec![0]);
    }

    #[test]
    fn filters_and_float_bits_are_canonical() {
        let cat = catalog(Constraint::NearlyUnique);
        let f = |e: Expr| Plan::Scan {
            cols: vec![0],
            filter: Some(e),
        };
        let a = canonical_bytes(&f(Expr::col(0).ge(Expr::LitInt(5))), &cat, QueryMode::Rows);
        let b = canonical_bytes(&f(Expr::col(0).ge(Expr::LitInt(6))), &cat, QueryMode::Rows);
        assert_ne!(a, b);
        let z = canonical_bytes(
            &f(Expr::Cmp(
                CmpOp::Eq,
                Box::new(Expr::Col(0)),
                Box::new(Expr::LitFloat(0.0)),
            )),
            &cat,
            QueryMode::Rows,
        );
        let nz = canonical_bytes(
            &f(Expr::Cmp(
                CmpOp::Eq,
                Box::new(Expr::Col(0)),
                Box::new(Expr::LitFloat(-0.0)),
            )),
            &cat,
            QueryMode::Rows,
        );
        assert_ne!(z, nz, "distinct float bit patterns stay distinct");
    }

    #[test]
    fn hash_is_stable() {
        // Locked value: the hash must never depend on process state.
        assert_eq!(fingerprint_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            fingerprint_hash(b"patchindex"),
            fingerprint_hash(b"patchindex")
        );
        assert_ne!(fingerprint_hash(b"a"), fingerprint_hash(b"b"));
    }
}
