//! Synthetic catalog builders shared by the planner unit tests.

use patchindex::{Constraint, IndexCatalog, IndexStats, PartitionStats, QueryFeedback};

/// A synthetic index snapshot from `(rows, patches)` pairs per partition.
pub(crate) fn entry(
    slot: usize,
    column: usize,
    constraint: Constraint,
    parts: Vec<(u64, u64)>,
    patch_distinct: u64,
) -> IndexStats {
    let parts: Vec<PartitionStats> = parts
        .into_iter()
        .map(|(rows, patches)| PartitionStats { rows, patches })
        .collect();
    let rows: u64 = parts.iter().map(|p| p.rows).sum();
    let patches: u64 = parts.iter().map(|p| p.patches).sum();
    let e = if rows == 0 {
        1.0
    } else {
        1.0 - patches as f64 / rows as f64
    };
    IndexStats {
        slot,
        column,
        constraint,
        parts,
        patch_distinct,
        pending: false,
        e,
        baseline_e: e,
        drift_patches: 0,
        maintained_rows: 0,
        memory_bytes: 0,
        global_unique: true,
        feedback: QueryFeedback::default(),
    }
}

/// A synthetic catalog over the given per-partition row counts.
pub(crate) fn catalog(part_rows: Vec<u64>, indexes: Vec<IndexStats>) -> IndexCatalog {
    IndexCatalog { part_rows, indexes }
}
