//! Synthetic catalog builders shared by the planner unit tests.

use patchindex::{Constraint, IndexCatalog, IndexStats, PartitionStats};

/// A synthetic index snapshot from `(rows, patches)` pairs per partition.
pub(crate) fn entry(
    slot: usize,
    column: usize,
    constraint: Constraint,
    parts: Vec<(u64, u64)>,
    patch_distinct: u64,
) -> IndexStats {
    IndexStats {
        slot,
        column,
        constraint,
        parts: parts
            .into_iter()
            .map(|(rows, patches)| PartitionStats { rows, patches })
            .collect(),
        patch_distinct,
        pending: false,
    }
}

/// A synthetic catalog over the given per-partition row counts.
pub(crate) fn catalog(part_rows: Vec<u64>, indexes: Vec<IndexStats>) -> IndexCatalog {
    IndexCatalog { part_rows, indexes }
}
