//! # pi-planner — PatchIndex-aware query optimization
//!
//! Logical plans ([`Plan`]), the PatchIndex rewrites of the paper's
//! Section 3.3 (distinct/sort subtree cloning, Figure 2), zero-branch
//! pruning (Section 6.3), a per-tuple [`cost`] model gating the rewrites
//! (Section 3.5), and lowering to `pi-exec` operator trees with
//! partition-parallel combines.
//!
//! The TPC-H join plans of Figure 10 are hand-lowered in `pi-tpch`, using
//! the same building blocks.

#![warn(missing_docs)]

pub mod cost;
mod logical;
mod optimizer;
pub mod physical;

pub use logical::Plan;
pub use optimizer::{optimize, rewrite, zero_branch_prune, IndexInfo};
pub use physical::{execute, execute_count, lower_global, lower_partition};
