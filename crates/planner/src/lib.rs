//! # pi-planner — PatchIndex-aware query optimization
//!
//! Logical plans ([`Plan`]), the PatchIndex rewrites of the paper's
//! Section 3.3 (distinct/sort subtree cloning, Figure 2) enumerated over
//! an [`IndexCatalog`] of *all* indexes on the table, zero-branch pruning
//! (Section 6.3) applied both plan-level and **per partition** at
//! lowering, a per-tuple [`cost`] model gating every rewrite with
//! per-partition statistics (Section 3.5), and lowering to `pi-exec`
//! operator trees with partition-parallel combines.
//!
//! The [`QueryEngine`] facade ties it together for an
//! `IndexedTable`: catalog snapshot → flush-if-exactness-required (the
//! NUC-disjointness rule of deferred maintenance) → optimize → execute.
//!
//! The TPC-H join plans of Figure 10 are hand-lowered in `pi-tpch`, using
//! the same building blocks.

#![warn(missing_docs)]

pub mod cost;
mod engine;
pub mod fingerprint;
mod logical;
mod optimizer;
pub mod physical;
#[cfg(test)]
mod testutil;

pub use engine::QueryEngine;
pub use fingerprint::{canonical_bytes, fingerprint_hash, QueryMode};
pub use logical::Plan;
pub use optimizer::{optimize, optimize_with_stats, rewrite, zero_branch_prune, OptimizeStats};
pub use patchindex::{IndexCatalog, IndexStats, PartitionStats};
pub use physical::{
    execute, execute_count, execute_count_metered, execute_count_traced, execute_count_with,
    execute_metered, execute_traced, lower_global, lower_global_metered, lower_global_traced,
    lower_global_with, lower_partition, prune_for_partition, ExecTrace, Pruning, TouchLog,
    NO_INDEXES,
};
