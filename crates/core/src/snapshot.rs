//! Snapshot-isolated concurrent reads during background maintenance.
//!
//! [`IndexedTable`] is single-writer: every query, flush and recompute
//! used to serialize on one `&mut` path. This module splits that into an
//! MVCC-style pair (cf. the epoch/snapshot designs of the incremental
//! view-maintenance literature):
//!
//! * [`TableSnapshot`] — a shared, immutable epoch of the table: `Arc`'d
//!   partitions, `Arc`'d [`PatchIndex`] versions and the precomputed
//!   [`IndexCatalog`]. Any number of reader threads query snapshots
//!   concurrently without locks, and a snapshot's results never change —
//!   readers never observe a half-applied patch set.
//! * [`TableWriter`] — the single writer. It stages inserts / modifies /
//!   deletes, runs deferred and collision maintenance and advisor-driven
//!   recomputes entirely **off the read path**, then
//!   [`TableWriter::publish`]es a new snapshot with one atomic epoch
//!   pointer swap. Old snapshots stay alive (and exact) until their last
//!   reader drops them.
//! * [`ConcurrentTable`] — the cloneable handle readers pull snapshots
//!   from.
//!
//! ## Copy-on-write economics
//!
//! Publishing is cheap because nothing is deep-copied eagerly: the
//! snapshot captures the writer's table (one `Arc` bump per partition)
//! and its index handles (one `Arc` bump per index). The *next* writer
//! mutation of a partition or index that a live snapshot still shares
//! pays a one-time copy ([`std::sync::Arc::make_mut`]); everything else
//! mutates in place exactly as before. A read-only epoch costs nothing.
//!
//! ## The pending-NUC masking rule
//!
//! Deferred maintenance may be staged when a snapshot is published; the
//! snapshot then carries `pending` catalog entries. NSC / NCC / exception
//! plans stay exact against staged state (see [`crate::deferred`]), but a
//! pending **NUC** index suspends the kept/patch disjointness invariant.
//! The writer-side rule was "flush before such queries"; a reader cannot
//! flush an immutable snapshot, so the query facade in `pi-planner`
//! instead **re-optimizes with exactly the pending NUC entries masked
//! out of the catalog** — rewrites that stay exact while pending survive
//! at their sites, only the suspended NUC binding reverts to reference
//! form, and the next published (flushed) snapshot restores the rewrite.
//!
//! ## Workload evidence from readers
//!
//! The writer's advisor needs query-log and feedback evidence, but reader
//! queries run against immutable snapshots. Every snapshot therefore
//! carries a [`WorkloadSink`]: readers record events there, and the
//! writer drains them into its query log / per-index feedback on
//! [`TableWriter::absorb_feedback`] (also invoked by `publish`). Events
//! identify indexes by `(column, constraint)` — not slot — so drops that
//! shift slots between an event and its absorption cannot misattribute
//! feedback.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use pi_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use pi_storage::{RowAddr, Table, Value};

use crate::cache::{CacheStats, ResultCache};
use crate::catalog::IndexCatalog;
use crate::constraint::{Constraint, Design};
use crate::index::PatchIndex;
use crate::indexed::{IndexedTable, MaintenancePolicy, QueryShape};

/// Distinguishes tables sharing one [`ResultCache`] — and, because it is
/// globally unique, guarantees a fresh `ConcurrentTable` can never hit
/// entries left behind by a dead one.
static NEXT_CACHE_TOKEN: AtomicU64 = AtomicU64::new(1);

/// One workload observation recorded by a reader against a snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadEvent {
    /// A planned query scanned `col` through an advisable shape.
    Query {
        /// Table column the query scanned.
        col: usize,
        /// The advisable shape (distinct / sort).
        shape: QueryShape,
    },
    /// A chosen plan bound the index on `(column, constraint)` with this
    /// estimated cost saving.
    Feedback {
        /// Indexed column.
        column: usize,
        /// The bound index's constraint.
        constraint: Constraint,
        /// Estimated planner cost saved vs the unrewritten plan.
        est_cost_saved: f64,
    },
    /// A measured execution of a query that bound `(column, constraint)`.
    Timing {
        /// Indexed column.
        column: usize,
        /// The bound index's constraint.
        constraint: Constraint,
        /// Measured wall-clock execution time, microseconds.
        actual_micros: f64,
        /// Estimated cost of the chosen plan (this index's share).
        est_cost: f64,
    },
}

/// Where snapshot readers deposit workload evidence for the writer.
/// Shared by every snapshot of one [`ConcurrentTable`]; drained by
/// [`TableWriter::absorb_feedback`].
///
/// The buffer is **bounded**: evidence is advisory, and a read-mostly
/// deployment (or one whose writer was dropped via
/// [`TableWriter::into_inner`]) would otherwise grow it without limit.
/// Once [`WorkloadSink::CAPACITY`] events are buffered, further events
/// are counted but dropped — the workload they describe is statistically
/// indistinguishable from the retained prefix anyway.
#[derive(Debug, Default)]
pub struct WorkloadSink {
    events: Mutex<Vec<WorkloadEvent>>,
    dropped: std::sync::atomic::AtomicU64,
}

impl WorkloadSink {
    /// Most events buffered between drains; see the type docs.
    pub const CAPACITY: usize = 1 << 16;

    /// Records one event (readers call this concurrently). Dropped
    /// silently once the buffer is full — see the type docs.
    pub fn record(&self, event: WorkloadEvent) {
        let mut events = self.events.lock();
        if events.len() < Self::CAPACITY {
            events.push(event);
        } else {
            drop(events);
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Takes every event recorded so far, in arrival order.
    pub fn drain(&self) -> Vec<WorkloadEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Events discarded because the buffer was full when they arrived.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// When a [`TableWriter`] publishes on its own, without explicit
/// [`TableWriter::publish`] calls — the pacing knob that replaces manual
/// publish bookkeeping in long writer loops. Statement pacing counts
/// insert / modify / delete calls against the writer; flush pacing
/// publishes right after each [`TableWriter::flush_maintenance`], so
/// readers pick up flushed (non-pending) epochs as soon as they exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PublishPolicy {
    /// Publish once this many statements accumulated since the last
    /// publish (`None` disables statement pacing).
    pub every_statements: Option<u64>,
    /// Publish immediately after every explicit maintenance flush.
    pub after_flush: bool,
}

impl PublishPolicy {
    /// Manual publishing only (the default).
    pub fn manual() -> Self {
        PublishPolicy::default()
    }

    /// Statement-paced publishing: one publish per `n` statements.
    pub fn every(n: u64) -> Self {
        PublishPolicy {
            every_statements: Some(n.max(1)),
            after_flush: false,
        }
    }

    /// Additionally publish after each maintenance flush.
    pub fn and_after_flush(mut self) -> Self {
        self.after_flush = true;
        self
    }
}

#[derive(Debug)]
struct SnapshotInner {
    epoch: u64,
    table: Table,
    indexes: Vec<Arc<PatchIndex>>,
    catalog: IndexCatalog,
    sink: Arc<WorkloadSink>,
    cache: Option<Arc<ResultCache>>,
    cache_token: u64,
    metrics: Option<Arc<MetricsRegistry>>,
}

/// An immutable epoch of an indexed table: shared partitions, shared
/// index versions and the catalog precomputed at publish time. Cloning is
/// one `Arc` bump; all accessors are `&self` and lock-free.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    inner: Arc<SnapshotInner>,
}

impl TableSnapshot {
    fn capture(
        it: &mut IndexedTable,
        sink: Arc<WorkloadSink>,
        epoch: u64,
        cache: Option<Arc<ResultCache>>,
        cache_token: u64,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        // The full catalog (including the NUC distinct-patch pass) is
        // computed here, on the writer — snapshot readers plan against it
        // for free. Reuses the mutation-invalidated cache: a publish with
        // no data change since the last catalog read costs counter reads.
        let catalog = it.cached_catalog().clone();
        TableSnapshot {
            inner: Arc::new(SnapshotInner {
                epoch,
                table: it.table().clone(),
                indexes: it.share_indexes(),
                catalog,
                sink,
                cache,
                cache_token,
                metrics,
            }),
        }
    }

    /// The epoch counter this snapshot was published at (monotonically
    /// increasing per [`TableWriter::publish`]).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The table state of this epoch.
    pub fn table(&self) -> &Table {
        &self.inner.table
    }

    /// The index versions of this epoch.
    pub fn indexes(&self) -> &[Arc<PatchIndex>] {
        &self.inner.indexes
    }

    /// The catalog precomputed at publish time (full distinct statistics).
    pub fn catalog(&self) -> &IndexCatalog {
        &self.inner.catalog
    }

    /// The sink reader queries report workload evidence to.
    pub fn sink(&self) -> &WorkloadSink {
        &self.inner.sink
    }

    /// The shared result cache the query facade consults for this
    /// snapshot, paired with the table's cache token (`None` when the
    /// table was split without [`ConcurrentTable::with_result_cache`]).
    pub fn result_cache(&self) -> Option<(&ResultCache, u64)> {
        self.inner
            .cache
            .as_deref()
            .map(|c| (c, self.inner.cache_token))
    }

    /// The metrics registry this table publishes observability into
    /// (`None` unless split via [`ConcurrentTable::with_observability`]).
    /// The `pi-planner` query facade records planner and engine metrics
    /// here when present.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.inner.metrics.as_ref()
    }

    /// Verifies every index of this epoch against its table (test
    /// helper). Exempt from the writer's pending-flush caveat only when
    /// the snapshot was published flushed.
    pub fn check_consistency(&self) {
        for idx in &self.inner.indexes {
            idx.check_consistency(&self.inner.table);
        }
    }
}

#[derive(Debug)]
struct Shared {
    current: RwLock<TableSnapshot>,
}

/// The reader-side handle: clone freely across threads, pull a
/// [`TableSnapshot`] per query (or batch of queries) and read without
/// ever blocking on maintenance.
#[derive(Debug, Clone)]
pub struct ConcurrentTable {
    shared: Arc<Shared>,
}

impl ConcurrentTable {
    /// Splits an [`IndexedTable`] into the shared read handle and the
    /// single writer. The initial snapshot is published immediately.
    pub fn new(it: IndexedTable) -> (ConcurrentTable, TableWriter) {
        Self::with_cache(it, None)
    }

    /// Like [`ConcurrentTable::new`], but snapshots consult (and fill)
    /// the given result cache through the `pi-planner` query facade. The
    /// cache may be shared between tables — entries carry a per-table
    /// token, and each writer's publish sweeps only its own.
    pub fn with_result_cache(
        it: IndexedTable,
        cache: Arc<ResultCache>,
    ) -> (ConcurrentTable, TableWriter) {
        Self::with_cache(it, Some(cache))
    }

    /// Like [`ConcurrentTable::new`], but every snapshot carries the
    /// metrics registry (so the `pi-planner` query facade records
    /// planner / engine / cache metrics into it) and the writer reports
    /// publish-side observability: `publish.nanos` (epoch swap latency),
    /// `publish.partitions_copied` / `publish.indexes_copied` (the
    /// copy-on-write work since the previous epoch),
    /// `publish.cache_invalidated`, and the `publish.epoch` gauge. Pass
    /// a cache built with `ResultCache::with_registry` on the same
    /// registry to get `cache.*` counters in the same place.
    pub fn with_observability(
        it: IndexedTable,
        cache: Option<Arc<ResultCache>>,
        registry: Arc<MetricsRegistry>,
    ) -> (ConcurrentTable, TableWriter) {
        Self::build(it, cache, Some(registry))
    }

    fn with_cache(
        it: IndexedTable,
        cache: Option<Arc<ResultCache>>,
    ) -> (ConcurrentTable, TableWriter) {
        Self::build(it, cache, None)
    }

    fn build(
        mut it: IndexedTable,
        cache: Option<Arc<ResultCache>>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> (ConcurrentTable, TableWriter) {
        let cache_token = NEXT_CACHE_TOKEN.fetch_add(1, Ordering::Relaxed);
        let sink = Arc::new(WorkloadSink::default());
        let first = TableSnapshot::capture(
            &mut it,
            Arc::clone(&sink),
            0,
            cache.clone(),
            cache_token,
            metrics.clone(),
        );
        let shared = Arc::new(Shared {
            current: RwLock::new(first),
        });
        (
            ConcurrentTable {
                shared: Arc::clone(&shared),
            },
            TableWriter {
                staging: it,
                shared,
                sink,
                epoch: 0,
                publish_policy: PublishPolicy::default(),
                statements_since_publish: 0,
                cache,
                cache_token,
                publish_metrics: metrics.as_deref().map(PublishMetrics::new),
                metrics,
            },
        )
    }

    /// The current snapshot (one `Arc` bump under a read lock held for
    /// nanoseconds — the epoch pointer swap in [`TableWriter::publish`]
    /// is the only writer of this lock).
    pub fn snapshot(&self) -> TableSnapshot {
        self.shared.current.read().clone()
    }

    /// Epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.current.read().epoch()
    }

    /// The shared result cache, when this table was split with one.
    pub fn result_cache(&self) -> Option<Arc<ResultCache>> {
        self.shared.current.read().inner.cache.clone()
    }

    /// Counter snapshot of the result cache (`None` without one). Note
    /// that a shared cache reports totals across every table using it.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared
            .current
            .read()
            .inner
            .cache
            .as_deref()
            .map(ResultCache::stats)
    }

    /// The metrics registry, when this table was split with
    /// [`ConcurrentTable::with_observability`].
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.shared.current.read().inner.metrics.clone()
    }
}

/// Pre-registered handles for the writer's publish-side metrics — one
/// registry lookup each at construction, plain atomic updates per
/// publish.
struct PublishMetrics {
    publishes: Arc<Counter>,
    noops: Arc<Counter>,
    nanos: Arc<Histogram>,
    partitions_copied: Arc<Counter>,
    indexes_copied: Arc<Counter>,
    cache_invalidated: Arc<Counter>,
    epoch: Arc<Gauge>,
}

impl PublishMetrics {
    fn new(reg: &MetricsRegistry) -> Self {
        PublishMetrics {
            publishes: reg.counter("publish.count"),
            noops: reg.counter("publish.noops"),
            nanos: reg.histogram("publish.nanos"),
            partitions_copied: reg.counter("publish.partitions_copied"),
            indexes_copied: reg.counter("publish.indexes_copied"),
            cache_invalidated: reg.counter("publish.cache_invalidated"),
            epoch: reg.gauge("publish.epoch"),
        }
    }
}

/// The single-writer half: owns the staging [`IndexedTable`], applies
/// updates and maintenance off the read path, and publishes epochs.
///
/// Mutations accumulate in the staging table and become visible to new
/// snapshots only at [`TableWriter::publish`] — concurrent readers keep
/// whatever epoch they hold. Queries through the writer itself (it
/// implements the planner's `QueryEngine` too) see staged state
/// immediately, exactly like a plain [`IndexedTable`].
pub struct TableWriter {
    staging: IndexedTable,
    shared: Arc<Shared>,
    sink: Arc<WorkloadSink>,
    epoch: u64,
    publish_policy: PublishPolicy,
    statements_since_publish: u64,
    cache: Option<Arc<ResultCache>>,
    cache_token: u64,
    metrics: Option<Arc<MetricsRegistry>>,
    publish_metrics: Option<PublishMetrics>,
}

impl TableWriter {
    /// Inserts rows into the staging table (visible at the next publish,
    /// which the [`PublishPolicy`] may trigger right away).
    pub fn insert(&mut self, rows: &[Vec<Value>]) -> Vec<RowAddr> {
        let addrs = self.staging.insert(rows);
        self.note_statement();
        addrs
    }

    /// Patches one column of staged visible rows.
    pub fn modify(&mut self, pid: usize, rids: &[usize], col: usize, values: &[Value]) {
        self.staging.modify(pid, rids, col, values);
        self.note_statement();
    }

    /// Deletes staged visible rows.
    pub fn delete(&mut self, pid: usize, rids: &[usize]) {
        self.staging.delete(pid, rids);
        self.note_statement();
    }

    /// Statement-pacing hook shared by the update entry points.
    fn note_statement(&mut self) {
        self.statements_since_publish += 1;
        if let Some(n) = self.publish_policy.every_statements {
            if self.statements_since_publish >= n {
                self.publish();
            }
        }
    }

    /// Replaces the automatic publish pacing (manual by default).
    pub fn set_publish_policy(&mut self, policy: PublishPolicy) {
        self.publish_policy = policy;
    }

    /// Builder form of [`TableWriter::set_publish_policy`].
    pub fn with_publish_policy(mut self, policy: PublishPolicy) -> Self {
        self.publish_policy = policy;
        self
    }

    /// The active publish pacing.
    pub fn publish_policy(&self) -> PublishPolicy {
        self.publish_policy
    }

    /// Creates a PatchIndex (discovery runs on the writer, off the read
    /// path) and returns its slot.
    pub fn add_index(&mut self, col: usize, constraint: Constraint, design: Design) -> usize {
        self.staging.add_index(col, constraint, design)
    }

    /// Drops the index in `slot`; snapshots published earlier keep
    /// serving it until they are dropped.
    pub fn drop_index(&mut self, slot: usize) -> Arc<PatchIndex> {
        self.staging.drop_index(slot)
    }

    /// Recomputes the index in `slot` — the background "recompute storm"
    /// case: readers keep querying the published epoch while this runs.
    pub fn recompute_index(&mut self, slot: usize) {
        self.staging.recompute_index(slot)
    }

    /// Runs all deferred maintenance staged on the writer, publishing
    /// right after when the [`PublishPolicy`] asks for it.
    pub fn flush_maintenance(&mut self) {
        self.staging.flush_maintenance();
        if self.publish_policy.after_flush {
            self.publish();
        }
    }

    /// Applies the maintenance policy once (recompute / condense).
    pub fn run_policy_now(&mut self) -> (usize, usize) {
        self.staging.run_policy_now()
    }

    /// Sets the staging maintenance policy.
    pub fn set_policy(&mut self, policy: MaintenancePolicy) {
        self.staging.set_policy(policy);
    }

    /// The staging table (reflects unpublished mutations).
    pub fn staging(&self) -> &IndexedTable {
        &self.staging
    }

    /// Mutable access to the staging table for callers composed above
    /// this type (the advisor steps against this). Changes become visible
    /// at the next publish.
    pub fn staging_mut(&mut self) -> &mut IndexedTable {
        &mut self.staging
    }

    /// Epoch of the last published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sink shared with every published snapshot.
    pub fn sink(&self) -> &Arc<WorkloadSink> {
        &self.sink
    }

    /// Drains reader-reported workload evidence into the staging table's
    /// query log and per-index feedback. Events naming a `(column,
    /// constraint)` without a live index (dropped since) are discarded.
    pub fn absorb_feedback(&mut self) {
        let events = self.sink.drain();
        if events.is_empty() {
            return;
        }
        let slot_of = |staging: &IndexedTable, column: usize, constraint: Constraint| {
            staging
                .indexes()
                .iter()
                .position(|idx| idx.column() == column && idx.constraint() == constraint)
        };
        for event in events {
            match event {
                WorkloadEvent::Query { col, shape } => self.staging.record_query(col, shape),
                WorkloadEvent::Feedback {
                    column,
                    constraint,
                    est_cost_saved,
                } => {
                    if let Some(slot) = slot_of(&self.staging, column, constraint) {
                        self.staging.record_query_feedback(slot, est_cost_saved);
                    }
                }
                WorkloadEvent::Timing {
                    column,
                    constraint,
                    actual_micros,
                    est_cost,
                } => {
                    if let Some(slot) = slot_of(&self.staging, column, constraint) {
                        self.staging
                            .record_query_timing(slot, actual_micros, est_cost);
                    }
                }
            }
        }
    }

    /// Publishes the staging state as a new snapshot: absorbs reader
    /// feedback, captures the epoch (Arc bumps, no data copies) and swaps
    /// the shared pointer. Returns the new epoch. Readers holding older
    /// snapshots are unaffected; they pick the new epoch up at their next
    /// [`ConcurrentTable::snapshot`] call.
    ///
    /// A publish with **zero changes** since the last epoch — every
    /// partition and index Arc pointer-identical to the published
    /// snapshot — is detected and skipped entirely: no epoch bump, no
    /// catalog capture, no cache sweep. Statement pacing
    /// ([`PublishPolicy::every`]) therefore cannot churn reader epochs
    /// (or invalidate result-cache entries) for nothing; the returned
    /// epoch is the still-current one.
    pub fn publish(&mut self) -> u64 {
        let start = Instant::now();
        self.statements_since_publish = 0;
        self.absorb_feedback();
        if self.staging_matches_published() {
            if let Some(m) = &self.publish_metrics {
                m.noops.inc();
            }
            return self.epoch;
        }
        if let Some(m) = &self.publish_metrics {
            // The copy-on-write bill of this epoch: how many partition /
            // index Arcs the staged mutations actually rewrote.
            let (parts, idxs) = self.copies_vs_published();
            m.partitions_copied.add(parts);
            m.indexes_copied.add(idxs);
        }
        self.epoch += 1;
        let snap = TableSnapshot::capture(
            &mut self.staging,
            Arc::clone(&self.sink),
            self.epoch,
            self.cache.clone(),
            self.cache_token,
            self.metrics.clone(),
        );
        let mut invalidated = 0;
        if let Some(cache) = &self.cache {
            // Sweep before the pointer swap so a reader of the new epoch
            // can't pick up a stale entry; entries a concurrent reader of
            // the *old* epoch re-inserts during the window are caught by
            // hit-time footprint validation instead.
            invalidated = cache.invalidate_stale(self.cache_token, snap.table(), snap.indexes());
        }
        *self.shared.current.write() = snap;
        if let Some(m) = &self.publish_metrics {
            m.publishes.inc();
            m.cache_invalidated.add(invalidated);
            m.epoch.set(self.epoch as i64);
            m.nanos.record(start.elapsed().as_nanos() as u64);
        }
        self.epoch
    }

    /// Counts the staged partition / index Arcs that differ from the
    /// published snapshot (new slots count as copies).
    fn copies_vs_published(&self) -> (u64, u64) {
        let cur = self.shared.current.read();
        let published = cur.table().partitions();
        let parts = self
            .staging
            .table()
            .partitions()
            .iter()
            .enumerate()
            .filter(|(i, p)| published.get(*i).is_none_or(|q| !Arc::ptr_eq(p, q)))
            .count() as u64;
        let idxs = self
            .staging
            .indexes()
            .iter()
            .enumerate()
            .filter(|(i, p)| cur.indexes().get(*i).is_none_or(|q| !Arc::ptr_eq(p, q)))
            .count() as u64;
        (parts, idxs)
    }

    /// Whether the staging state is pointer-identical (copy-on-write:
    /// hence byte-identical) to the currently published snapshot.
    fn staging_matches_published(&self) -> bool {
        let cur = self.shared.current.read();
        let published = cur.table().partitions();
        let staged = self.staging.table().partitions();
        staged.len() == published.len()
            && self.staging.indexes().len() == cur.indexes().len()
            && staged.iter().zip(published).all(|(a, b)| Arc::ptr_eq(a, b))
            && self
                .staging
                .indexes()
                .iter()
                .zip(cur.indexes())
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Flushes any staged deferred maintenance, then publishes — the
    /// "writer publishes a flushed snapshot" half of the pending-NUC
    /// rule: snapshots published through this never force readers off
    /// their index rewrites.
    pub fn publish_flushed(&mut self) -> u64 {
        self.staging.flush_maintenance();
        self.publish()
    }

    /// Unwraps the writer back into its staging table. The shared handle
    /// keeps serving the last published epoch forever after.
    pub fn into_inner(self) -> IndexedTable {
        self.staging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::SortDir;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn fresh() -> IndexedTable {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(
            0,
            &[
                ColumnData::Int(vec![0, 1, 2]),
                ColumnData::Int(vec![10, 20, 30]),
            ],
        );
        t.load_partition(
            1,
            &[ColumnData::Int(vec![3, 4]), ColumnData::Int(vec![40, 50])],
        );
        t.propagate_all();
        IndexedTable::new(t)
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn snapshots_are_isolated_from_writer_mutations() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let before = handle.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.table().visible_len(), 5);

        writer.insert(&[row(100, 20), row(101, 60)]);
        // Unpublished: the handle still serves epoch 0, and the old
        // snapshot's data is untouched.
        assert_eq!(handle.snapshot().epoch(), 0);
        assert_eq!(before.table().visible_len(), 5);
        assert_eq!(before.indexes()[0].nrows(), 5);
        assert_eq!(writer.staging().table().visible_len(), 7);

        let epoch = writer.publish();
        assert_eq!(epoch, 1);
        let after = handle.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.table().visible_len(), 7);
        assert_eq!(after.indexes()[0].nrows(), 7);
        // The pre-publish snapshot still reads its own epoch.
        assert_eq!(before.table().visible_len(), 5);
        before.check_consistency();
        after.check_consistency();
    }

    #[test]
    fn old_snapshot_survives_recompute_and_drop() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let old = handle.snapshot();
        writer.insert(&[row(100, 5)]); // out of order -> patch on flush/eager
        writer.recompute_index(0);
        writer.drop_index(0);
        writer.publish();
        // The dropped index version lives on inside the old snapshot.
        assert_eq!(old.indexes().len(), 1);
        old.check_consistency();
        assert!(handle.snapshot().indexes().is_empty());
    }

    #[test]
    fn publish_is_cheap_when_nothing_changed() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let a = handle.snapshot();
        writer.publish();
        let b = handle.snapshot();
        // Identical epochs share every partition and index allocation.
        for (pa, pb) in a.table().partitions().iter().zip(b.table().partitions()) {
            assert!(Arc::ptr_eq(pa, pb));
        }
        for (ia, ib) in a.indexes().iter().zip(b.indexes()) {
            assert!(Arc::ptr_eq(ia, ib));
        }
    }

    #[test]
    fn noop_publish_skips_epoch_bump_and_capture() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let before = handle.snapshot();

        // Nothing staged: every Arc is identical, so publish is a no-op.
        assert_eq!(writer.publish(), 0);
        assert_eq!(writer.epoch(), 0);
        assert_eq!(handle.epoch(), 0);
        let after = handle.snapshot();
        assert!(Arc::ptr_eq(&before.inner, &after.inner), "same snapshot");

        // Statement pacing over zero-change statements can't churn epochs.
        writer.set_publish_policy(PublishPolicy::every(1));
        writer.insert(&[]);
        writer.insert(&[]);
        assert_eq!(handle.epoch(), 0);

        // A real change publishes again (and exactly once).
        writer.insert(&[row(100, 60)]);
        assert_eq!(handle.epoch(), 1);
        assert_eq!(writer.epoch(), 1);
        assert!(!Arc::ptr_eq(
            &handle.snapshot().table().partitions()[0],
            &before.table().partitions()[0]
        ));
    }

    #[test]
    fn noop_publish_still_absorbs_reader_feedback() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        handle.snapshot().sink().record(WorkloadEvent::Query {
            col: 1,
            shape: QueryShape::Distinct,
        });
        // Query-shape evidence mutates only the writer's query log, so
        // the publish is still skipped — but the evidence is absorbed.
        assert_eq!(writer.publish(), 0);
        assert_eq!(
            writer.staging().query_log().count(1, QueryShape::Distinct),
            1
        );

        // Timing evidence mutates the index version (copy-on-write), so
        // the next publish is real.
        handle.snapshot().sink().record(WorkloadEvent::Timing {
            column: 1,
            constraint: Constraint::NearlyUnique,
            actual_micros: 9.0,
            est_cost: 3.0,
        });
        assert_eq!(writer.publish(), 1);
    }

    #[test]
    fn publish_sweeps_only_dirty_footprints_from_the_cache() {
        use crate::cache::{CachedValue, Footprint, ResultCache};

        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let cache = Arc::new(ResultCache::new(1 << 20));
        let (handle, mut writer) = ConcurrentTable::with_result_cache(it, Arc::clone(&cache));
        let snap = handle.snapshot();
        let (c, token) = snap.result_cache().expect("cache wired into snapshots");
        assert!(std::ptr::eq(c, &*cache));

        let part = |pid: usize| (pid, Arc::clone(&snap.table().partitions()[pid]));
        let canon = |tag: u8| -> Arc<[u8]> { Arc::from([tag].as_slice()) };
        // Entry 1 reads partition 0 only; entry 2 reads both; entry 3
        // depends on the index version.
        c.insert(
            token,
            1,
            canon(1),
            0,
            CachedValue::Count(1),
            Footprint::new(vec![part(0)], vec![]),
        );
        c.insert(
            token,
            2,
            canon(2),
            0,
            CachedValue::Count(2),
            Footprint::new(vec![part(0), part(1)], vec![]),
        );
        c.insert(
            token,
            3,
            canon(3),
            0,
            CachedValue::Count(3),
            Footprint::new(vec![], vec![(0, Arc::clone(&snap.indexes()[0]))]),
        );

        // Dirty partition 1 only (value 50 -> 51 keeps the NUC clean but
        // rewrites the partition Arc; the index version changes too since
        // eager maintenance touches it).
        writer.modify(1, &[1], 1, &[Value::Int(51)]);
        writer.publish();
        let new = handle.snapshot();
        assert_eq!(new.epoch(), 1);
        assert!(Arc::ptr_eq(
            &snap.table().partitions()[0],
            &new.table().partitions()[0]
        ));

        // Entry 1's footprint survived untouched; 2 and 3 are gone.
        assert!(c
            .lookup(token, 1, &canon(1), 1, new.table(), new.indexes())
            .is_some());
        assert!(c
            .lookup(token, 2, &canon(2), 1, new.table(), new.indexes())
            .is_none());
        assert!(c
            .lookup(token, 3, &canon(3), 1, new.table(), new.indexes())
            .is_none());
        let stats = handle
            .cache_stats()
            .expect("stats surface through the handle");
        assert_eq!(stats.invalidated, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn observability_reports_publish_work() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let reg = Arc::new(MetricsRegistry::new());
        let cache = Arc::new(ResultCache::with_registry(1 << 20, &reg));
        let (handle, mut writer) =
            ConcurrentTable::with_observability(it, Some(cache), Arc::clone(&reg));
        assert!(handle.snapshot().metrics().is_some());
        assert!(handle.metrics().is_some());

        // Nothing staged: the publish is counted as a no-op only.
        writer.publish();
        assert_eq!(reg.counter("publish.noops").get(), 1);
        assert_eq!(reg.counter("publish.count").get(), 0);

        // One partition mutated: exactly that partition (plus the
        // eagerly maintained index version) is billed as copied.
        writer.modify(0, &[0], 1, &[Value::Int(11)]);
        writer.publish();
        assert_eq!(reg.counter("publish.count").get(), 1);
        assert_eq!(reg.gauge("publish.epoch").get(), 1);
        assert_eq!(reg.counter("publish.partitions_copied").get(), 1);
        assert_eq!(reg.counter("publish.indexes_copied").get(), 1);
        assert_eq!(reg.histogram("publish.nanos").snapshot().count, 1);
    }

    #[test]
    fn writer_mutation_copies_only_the_touched_partition() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let old = handle.snapshot();
        // Modify partition 0 only; partition 1 stays shared after publish.
        writer.modify(0, &[0], 1, &[Value::Int(11)]);
        writer.publish();
        let new = handle.snapshot();
        assert!(!Arc::ptr_eq(
            &old.table().partitions()[0],
            &new.table().partitions()[0]
        ));
        assert!(Arc::ptr_eq(
            &old.table().partitions()[1],
            &new.table().partitions()[1]
        ));
    }

    #[test]
    fn catalog_is_captured_at_publish_time() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        writer.insert(&[row(100, 20)]); // duplicates 20 -> 2 patches
        writer.publish();
        let snap = handle.snapshot();
        assert_eq!(snap.catalog().indexes[0].patches(), 2);
        assert_eq!(snap.catalog().rows(), 6);
        // Snapshot catalog mirrors a fresh computation over its state.
        let fresh_cat = IndexCatalog::of(snap.table(), snap.indexes());
        assert_eq!(snap.catalog().part_rows, fresh_cat.part_rows);
        assert_eq!(snap.catalog().indexes[0].parts, fresh_cat.indexes[0].parts);
    }

    #[test]
    fn sink_events_flow_into_writer_state() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let snap = handle.snapshot();
        snap.sink().record(WorkloadEvent::Query {
            col: 1,
            shape: QueryShape::Distinct,
        });
        snap.sink().record(WorkloadEvent::Feedback {
            column: 1,
            constraint: Constraint::NearlyUnique,
            est_cost_saved: 42.0,
        });
        snap.sink().record(WorkloadEvent::Timing {
            column: 1,
            constraint: Constraint::NearlyUnique,
            actual_micros: 12.5,
            est_cost: 100.0,
        });
        // An event for an index that no longer exists is dropped quietly.
        snap.sink().record(WorkloadEvent::Feedback {
            column: 0,
            constraint: Constraint::NearlyConstant,
            est_cost_saved: 7.0,
        });
        writer.absorb_feedback();
        assert!(writer.sink().is_empty());
        let it = writer.staging();
        assert_eq!(it.query_log().count(1, QueryShape::Distinct), 1);
        let fb = it.index(0).query_feedback();
        assert_eq!(fb.times_bound, 1);
        assert!((fb.est_cost_saved - 42.0).abs() < 1e-9);
        assert_eq!(fb.measured_queries, 1);
        assert!((fb.actual_micros - 12.5).abs() < 1e-9);
        assert!((fb.est_cost_executed - 100.0).abs() < 1e-9);
        assert_eq!(fb.micros_per_cost_unit(), Some(0.125));
    }

    #[test]
    fn sink_is_bounded() {
        let sink = WorkloadSink::default();
        for _ in 0..WorkloadSink::CAPACITY + 10 {
            sink.record(WorkloadEvent::Query {
                col: 0,
                shape: QueryShape::Distinct,
            });
        }
        assert_eq!(sink.len(), WorkloadSink::CAPACITY);
        assert_eq!(sink.dropped(), 10);
        assert_eq!(sink.drain().len(), WorkloadSink::CAPACITY);
        // Draining frees the budget again.
        sink.record(WorkloadEvent::Query {
            col: 0,
            shape: QueryShape::Distinct,
        });
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn publish_flushed_clears_pending_state() {
        use crate::indexed::{MaintenanceMode, MaintenancePolicy};
        let it = fresh().with_policy(MaintenancePolicy {
            mode: MaintenanceMode::Deferred {
                flush_rows: usize::MAX,
            },
            ..MaintenancePolicy::default()
        });
        let (handle, mut writer) = ConcurrentTable::new(it);
        writer.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        writer.insert(&[row(100, 20)]);
        writer.publish();
        assert!(handle.snapshot().catalog().indexes[0].pending);
        writer.publish_flushed();
        let snap = handle.snapshot();
        assert!(!snap.catalog().indexes[0].pending);
        snap.check_consistency();
    }

    #[test]
    fn statement_pacing_publishes_automatically() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        writer.set_publish_policy(PublishPolicy::every(3));
        writer.insert(&[row(100, 60)]);
        writer.modify(0, &[0], 1, &[Value::Int(11)]);
        assert_eq!(handle.epoch(), 0, "two statements stay unpublished");
        writer.delete(1, &[0]);
        assert_eq!(handle.epoch(), 1, "the third statement publishes");
        assert_eq!(handle.snapshot().table().visible_len(), 5);
        // A manual publish restarts the pacing counter.
        writer.insert(&[row(101, 70)]);
        writer.publish();
        assert_eq!(handle.epoch(), 2);
        writer.insert(&[row(102, 80)]);
        writer.insert(&[row(103, 90)]);
        assert_eq!(handle.epoch(), 2);
        writer.insert(&[row(104, 95)]);
        assert_eq!(handle.epoch(), 3);
    }

    #[test]
    fn flush_pacing_publishes_flushed_epochs() {
        use crate::indexed::{MaintenanceMode, MaintenancePolicy};
        let it = fresh().with_policy(MaintenancePolicy {
            mode: MaintenanceMode::Deferred {
                flush_rows: usize::MAX,
            },
            ..MaintenancePolicy::default()
        });
        let (handle, mut writer) = ConcurrentTable::new(it);
        writer.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        writer.set_publish_policy(PublishPolicy::manual().and_after_flush());
        writer.insert(&[row(100, 20)]);
        assert_eq!(
            handle.epoch(),
            0,
            "flush pacing alone never paces statements"
        );
        writer.flush_maintenance();
        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), 1, "the flush published");
        assert!(!snap.catalog().indexes[0].pending);
        snap.check_consistency();
    }

    #[test]
    fn concurrent_readers_during_writer_churn() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        let (handle, mut writer) = ConcurrentTable::new(it);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = handle.clone();
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = handle.snapshot();
                        // Row count and index coverage always agree
                        // within one epoch — the atomicity guarantee.
                        assert_eq!(
                            snap.indexes()[0].nrows() as usize,
                            snap.table().visible_len(),
                            "epoch {} tore",
                            snap.epoch()
                        );
                    }
                });
            }
            for i in 0..50 {
                writer.insert(&[row(1000 + i, 2000 + i)]);
                if i % 7 == 0 {
                    writer.recompute_index(0);
                }
                writer.publish();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(handle.snapshot().table().visible_len(), 55);
    }
}
