//! Update handling: maintaining the patch sets under table inserts,
//! modifies and deletes without index recomputation or full table scans
//! (paper, Section 5 / Table 1).
//!
//! | constraint | insert | modify | delete |
//! |---|---|---|---|
//! | NUC | join inserted tuples with the table (dynamic range propagation), merge colliding rowIDs into the patches | like insert, over the modified tuples | drop tracking info |
//! | NSC | extend the existing sorted subsequence with a longest sorted subsequence of the inserted values | merge all modified rowIDs into the patches | drop tracking info |
//!
//! The NUC collision join supports two execution strategies
//! ([`ProbeStrategy`]): the default hashes the changed tuples **once** into
//! a shared [`JoinTable`] and fans the per-partition DRP-pruned probes out
//! over all cores, applying bitmap patches straight through a
//! [`ConcurrentShardedBitmap`]; [`ProbeStrategy::SequentialRebuild`] keeps
//! the original one-partition-at-a-time pipeline (re-hashing the build
//! batch per partition) as a benchmark baseline.

use std::ops::Range;

use pi_bitmap::ConcurrentShardedBitmap;
use pi_exec::ops::hash_join::{HashJoinOp, JoinTable, ProbeSide};
use pi_exec::ops::scan::ScanOp;
use pi_exec::parallel::per_partition;
use pi_exec::{collect, Batch, BatchSource, OpRef, Operator};
use pi_storage::{ColumnData, Partition, RowAddr, Table};

use crate::constraint::{Constraint, Design, SortDir};
use crate::index::PatchIndex;
use crate::lis;

/// How the NUC collision join executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Re-hash the changed-tuple batch for every partition and probe the
    /// partitions one after another (the pre-optimization pipeline, kept
    /// as a measurable baseline).
    SequentialRebuild,
    /// Hash the changed tuples once into a shared [`JoinTable`] and probe
    /// all partitions in parallel; bitmap-design patches are applied
    /// concurrently while probing.
    #[default]
    ParallelShared,
}

/// Counters describing the maintenance work an index performed
/// (cumulative; preserved across [`PatchIndex::recompute`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Collision-join rounds executed (one per eager NUC statement, one
    /// per deferred flush).
    pub collision_rounds: u64,
    /// How many times a build side was hashed. The shared strategy pays
    /// exactly one per round; the sequential baseline pays one per
    /// partition per round.
    pub build_invocations: u64,
    /// Partition probes executed across all rounds.
    pub probed_partitions: u64,
    /// Row-events this index maintained (inserted, modified or deleted
    /// rows handled, eagerly or staged) — the denominator of the
    /// advisor's drift rate and its maintenance-cost proxy.
    pub maintained_rows: u64,
}

/// Candidate row ranges for probing values in `env`: zone-map pruning over
/// base data plus the full append buffer — the receiving end of dynamic
/// range propagation (paper, Figure 5: "scanning the full table is reduced
/// to only the blocks that contain potential join partners").
#[allow(clippy::single_range_in_vec_init)]
pub fn drp_ranges(partition: &Partition, col: usize, env: Option<(i64, i64)>) -> Vec<Range<usize>> {
    let Some((lo, hi)) = env else {
        return Vec::new();
    };
    let delta = partition.delta();
    if delta.has_positional_shifts() || delta.has_modifies() {
        return vec![0..partition.visible_len()];
    }
    match partition.zonemap_if_built(col) {
        Some(zm) => {
            let mut ranges = zm.candidate_ranges(lo, hi);
            let append_len = delta.append_len();
            if append_len > 0 {
                let start = delta.base_visible_len();
                ranges.push(start..start + append_len);
            }
            ranges
        }
        None => vec![0..partition.visible_len()],
    }
}

/// Materializes the `[value, pid, rid]` build batch of the collision join
/// from the changed `(partition, rowID)` set.
pub(crate) fn build_changed_batch(table: &Table, col: usize, changed: &[(usize, usize)]) -> Batch {
    let mut per_part: Vec<Vec<usize>> = vec![Vec::new(); table.partition_count()];
    for &(pid, rid) in changed {
        per_part[pid].push(rid);
    }
    let mut value_col: Option<ColumnData> = None;
    let mut pid_col: Vec<i64> = Vec::with_capacity(changed.len());
    let mut rid_col: Vec<i64> = Vec::with_capacity(changed.len());
    for (pid, rids) in per_part.iter().enumerate() {
        if rids.is_empty() {
            continue;
        }
        let vals = table.partition(pid).gather(&[col], rids).pop().unwrap();
        match &mut value_col {
            Some(acc) => acc.extend_from(&vals),
            None => value_col = Some(vals),
        }
        pid_col.extend(std::iter::repeat_n(pid as i64, rids.len()));
        rid_col.extend(rids.iter().map(|&r| r as i64));
    }
    Batch::new(vec![
        value_col.expect("changed set non-empty"),
        ColumnData::Int(pid_col),
        ColumnData::Int(rid_col),
    ])
}

/// Materializes the `[value, pid, rid]` build batch from explicit
/// `(pid, rid, value)` snapshots (deferred flush; string columns are
/// represented by their dictionary codes, which is exactly what the join
/// hashes on the probe side too).
pub(crate) fn build_changed_batch_from(entries: &[(usize, u64, i64)]) -> Batch {
    let mut vals = Vec::with_capacity(entries.len());
    let mut pids = Vec::with_capacity(entries.len());
    let mut rids = Vec::with_capacity(entries.len());
    for &(pid, rid, v) in entries {
        vals.push(v);
        pids.push(pid as i64);
        rids.push(rid as i64);
    }
    Batch::new(vec![
        ColumnData::Int(vals),
        ColumnData::Int(pids),
        ColumnData::Int(rids),
    ])
}

/// What a collision-probe round produced.
pub(crate) struct ProbeOutcome {
    /// Probe-side collision rowIDs per partition. Left empty when a
    /// concurrent sink applied them directly.
    pub probe_hits: Vec<Vec<u64>>,
    /// Build-side collision rows `(pid, rid)`, sorted and deduplicated.
    /// Every entry refers to a changed tuple.
    pub build_hits: Vec<(usize, u64)>,
}

/// Runs the NUC collision query of Figure 5 with a **build-once** shared
/// hash table: the `[value, pid, rid]` build batch is hashed exactly once,
/// then every partition is probed in parallel with its scan restricted by
/// dynamic range propagation. Collisions may cross partitions: an inserted
/// value can collide with a tuple in a different partition, whose local
/// patch set must then be extended too.
///
/// Filtering depends on the caller:
/// * eager (`skip_dirty == None`): exact self-pairs (a changed tuple
///   matching itself) are dropped;
/// * deferred flush (`skip_dirty == Some`): every probe hit on a pending
///   row is dropped — pending-vs-pending collisions are resolved by the
///   caller's value-interval sweep, which knows the statement ordering.
///
/// With `sink` set (bitmap design), probe- and build-side patches are set
/// directly in the per-partition concurrent bitmaps while probing; only
/// `build_hits` are still collected (the deferred flush needs them to
/// decide which staged rows were genuine).
/// Statements smaller than this probe the partitions inline on the
/// calling thread: spawning one worker per partition does not amortize
/// for near-empty DRP-pruned probes (the same small-work rule the bulk
/// delete applies — paper, Figure 6). The build side is still hashed
/// exactly once either way.
const INLINE_PROBE_BUILD_ROWS: usize = 64;

/// The concurrent-bitmap swap of a collision round copies every partition
/// bitmap twice; it only runs when each changed row amortizes at most
/// this many copied bits (64 words), otherwise hits are collected and
/// applied through `add_patches`.
const CONCURRENT_SWAP_BITS_PER_ROW: u64 = 4096;

pub(crate) fn nuc_collision_probe(
    table: &Table,
    col: usize,
    build_batch: Batch,
    skip_dirty: Option<&[Vec<u64>]>,
    sink: Option<&[ConcurrentShardedBitmap]>,
    stats: &mut MaintenanceStats,
) -> ProbeOutcome {
    let inline = build_batch.len() < INLINE_PROBE_BUILD_ROWS;
    let shared = JoinTable::from_batch(build_batch, 0);
    stats.collision_rounds += 1;
    stats.build_invocations += 1;
    stats.probed_partitions += table.partition_count() as u64;
    let worker = |partition: &Partition| {
        let pid = partition.id;
        let probe = ProbeSide::Deferred(Box::new(move |env| {
            let ranges = drp_ranges(partition, col, env);
            Box::new(ScanOp::with_ranges(partition, vec![col], ranges, true)) as OpRef<'_>
        }));
        let mut join = HashJoinOp::with_table(&shared, probe, 0);
        // Output: [probe value, probe rid, build value, build pid, build
        // rid]. Both rowID projections read one materialized join result —
        // the Reuse operator's effect (Figure 5) without recomputing the
        // subtree.
        let mut probe_hits: Vec<u64> = Vec::new();
        let mut build_hits: Vec<(usize, u64)> = Vec::new();
        while let Some(out) = join.next() {
            let probe_rids = out.column(1).as_int();
            let build_pids = out.column(3).as_int();
            let build_rids = out.column(4).as_int();
            for i in 0..out.len() {
                let probe_rid = probe_rids[i] as u64;
                let (b_pid, b_rid) = (build_pids[i] as usize, build_rids[i] as u64);
                match skip_dirty {
                    // Deferred: pending rows are handled by the interval
                    // sweep; their probe hits must not re-enter here.
                    Some(dirty) => {
                        if dirty[pid].binary_search(&probe_rid).is_ok() {
                            continue;
                        }
                    }
                    // Eager: only a changed tuple matching itself is benign.
                    None => {
                        if b_pid == pid && b_rid == probe_rid {
                            continue;
                        }
                    }
                }
                match sink {
                    Some(bitmaps) => {
                        bitmaps[pid].set(probe_rid);
                        bitmaps[b_pid].set(b_rid);
                    }
                    None => probe_hits.push(probe_rid),
                }
                build_hits.push((b_pid, b_rid));
            }
        }
        probe_hits.sort_unstable();
        probe_hits.dedup();
        (probe_hits, build_hits)
    };
    let per_part = if inline {
        table.partitions().iter().map(|p| worker(p)).collect()
    } else {
        per_partition(table, worker)
    };
    let mut probe_hits = Vec::with_capacity(per_part.len());
    let mut build_hits = Vec::new();
    for (p, b) in per_part {
        probe_hits.push(p);
        build_hits.extend(b);
    }
    build_hits.sort_unstable();
    build_hits.dedup();
    ProbeOutcome {
        probe_hits,
        build_hits,
    }
}

/// The original sequential pipeline: for every partition, re-materialize
/// the build side from a cloned batch, rebuild the hash table and probe
/// that partition — `O(partitions × changed)` hashing per statement. Kept
/// as the measurable baseline of [`ProbeStrategy::SequentialRebuild`].
fn nuc_collisions_sequential(
    table: &Table,
    col: usize,
    build_batch: Batch,
    stats: &mut MaintenanceStats,
) -> Vec<(usize, usize)> {
    stats.collision_rounds += 1;
    let mut patches: Vec<(usize, usize)> = Vec::new();
    for pid in 0..table.partition_count() {
        let partition = table.partition(pid);
        // Build side: the changed tuples. Probe side: deferred scan whose
        // ranges come from the build-key envelope (dynamic range
        // propagation).
        let build: OpRef<'_> = Box::new(BatchSource::single(build_batch.clone()));
        let probe = ProbeSide::Deferred(Box::new(move |env| {
            let ranges = drp_ranges(partition, col, env);
            Box::new(ScanOp::with_ranges(partition, vec![col], ranges, true)) as OpRef<'_>
        }));
        let mut join = HashJoinOp::new(build, 0, probe, 0);
        stats.build_invocations += 1;
        stats.probed_partitions += 1;
        let out = collect(&mut join);
        if out.is_empty() {
            continue;
        }
        let probe_rids = out.column(1).as_int();
        let build_pids = out.column(3).as_int();
        let build_rids = out.column(4).as_int();
        for i in 0..out.len() {
            let probe_rid = probe_rids[i] as usize;
            let (b_pid, b_rid) = (build_pids[i] as usize, build_rids[i] as usize);
            if b_pid == pid && b_rid == probe_rid {
                continue; // a changed tuple matching itself
            }
            patches.push((pid, probe_rid));
            patches.push((b_pid, b_rid));
        }
    }
    patches.sort_unstable();
    patches.dedup();
    patches
}

/// Distributes collision rowIDs into the per-partition patch stores.
fn apply_collisions(index: &mut PatchIndex, patches: &[(usize, usize)]) {
    let mut per_part: Vec<Vec<u64>> = vec![Vec::new(); index.partition_count()];
    for &(pid, rid) in patches {
        per_part[pid].push(rid as u64);
    }
    for (pid, rids) in per_part.iter().enumerate() {
        if !rids.is_empty() {
            index.partition_mut(pid).store.add_patches(rids);
        }
    }
}

/// Ensures zone maps exist on every prunable partition (the DRP receiver;
/// needs `&mut Table`, while the collision scans only need `&`).
pub(crate) fn prepare_zonemaps(table: &Table, col: usize) {
    for pid in 0..table.partition_count() {
        // Zone-map building is a `&self` cache fill on the partition, so
        // this never copies a partition that live snapshots share.
        let p = table.partition(pid);
        if !p.delta().has_positional_shifts() && !p.delta().has_modifies() {
            p.zonemap(col);
        }
    }
}

impl PatchIndex {
    /// Runs one build-once collision round (zone maps prepared, build
    /// batch hashed once, partition probes fanned out) and applies all
    /// **probe-side** patches — directly through concurrent bitmaps for
    /// the bitmap design (paper, Section 5.4), via collected rowIDs for
    /// the identifier design. Returns the build-side hits; what they mean
    /// is the caller's business (eager: patches to apply; deferred flush:
    /// staged rows confirmed genuine).
    pub(crate) fn collision_round(
        &mut self,
        table: &mut Table,
        build_batch: Batch,
        skip_dirty: Option<&[Vec<u64>]>,
    ) -> Vec<(usize, u64)> {
        let col = self.column();
        prepare_zonemaps(table, col);
        let mut stats = self.maintenance_stats();
        // The concurrent swap costs two full bitmap copies per partition,
        // so it must amortize against the round's work: require a
        // thread-pool-worthy batch (same bound as the inline probe) AND
        // at most CONCURRENT_SWAP_BITS_PER_ROW bitmap bits copied per
        // changed row — a 64-row statement over a 100M-row partition
        // applies its handful of hits through add_patches instead.
        let max_nrows = (0..self.partition_count())
            .map(|pid| self.partition(pid).store.nrows())
            .max();
        let concurrent = self.design() == Design::Bitmap
            && build_batch.len() >= INLINE_PROBE_BUILD_ROWS
            && build_batch.len() as u64 >= max_nrows.unwrap_or(0) / CONCURRENT_SWAP_BITS_PER_ROW;
        let build_hits = if concurrent {
            // Swap every partition's bitmap into its concurrent form (an
            // O(words) move) so the parallel probes apply patches directly
            // — including cross-partition build-side hits.
            let bitmaps: Vec<ConcurrentShardedBitmap> = (0..self.partition_count())
                .map(|pid| {
                    self.partition_mut(pid)
                        .store
                        .begin_concurrent()
                        .expect("bitmap design")
                })
                .collect();
            let outcome = nuc_collision_probe(
                table,
                col,
                build_batch,
                skip_dirty,
                Some(&bitmaps),
                &mut stats,
            );
            for (pid, bm) in bitmaps.into_iter().enumerate() {
                self.partition_mut(pid).store.end_concurrent(bm);
            }
            outcome.build_hits
        } else {
            let outcome =
                nuc_collision_probe(table, col, build_batch, skip_dirty, None, &mut stats);
            for (pid, rids) in outcome.probe_hits.iter().enumerate() {
                if !rids.is_empty() {
                    self.partition_mut(pid).store.add_patches(rids);
                }
            }
            outcome.build_hits
        };
        self.set_maintenance_stats(stats);
        build_hits
    }

    /// Runs the eager NUC collision round for `changed` tuples under the
    /// given strategy and applies all resulting patches.
    fn run_nuc_eager(
        &mut self,
        table: &mut Table,
        changed: &[(usize, usize)],
        strategy: ProbeStrategy,
    ) {
        if changed.is_empty() {
            return;
        }
        let col = self.column();
        match strategy {
            ProbeStrategy::SequentialRebuild => {
                prepare_zonemaps(table, col);
                let build_batch = build_changed_batch(table, col, changed);
                let mut stats = self.maintenance_stats();
                let patches = nuc_collisions_sequential(table, col, build_batch, &mut stats);
                self.set_maintenance_stats(stats);
                apply_collisions(self, &patches);
            }
            ProbeStrategy::ParallelShared => {
                let build_batch = build_changed_batch(table, col, changed);
                let build_hits = self.collision_round(table, build_batch, None);
                // Build-side hits are patches too (idempotent for the
                // bitmap design, where the sink already set them).
                let pairs: Vec<(usize, usize)> = build_hits
                    .iter()
                    .map(|&(pid, rid)| (pid, rid as usize))
                    .collect();
                apply_collisions(self, &pairs);
            }
        }
    }

    /// Maintains the index after `table.insert_rows` returned `inserted`,
    /// with the default [`ProbeStrategy`].
    ///
    /// NUC: bitmap resize + collision join with dynamic range propagation.
    /// NSC: extend the sorted subsequence with a longest sorted
    /// subsequence of the inserted values; the rest become patches. This
    /// may lose global optimality (paper's (1,2,10)+(3,4) example) but
    /// never correctness; the monitoring policy recomputes eventually.
    pub fn handle_insert(&mut self, table: &mut Table, inserted: &[RowAddr]) {
        self.handle_insert_with(table, inserted, ProbeStrategy::default());
    }

    /// [`PatchIndex::handle_insert`] with an explicit NUC probe strategy.
    pub fn handle_insert_with(
        &mut self,
        table: &mut Table,
        inserted: &[RowAddr],
        strategy: ProbeStrategy,
    ) {
        assert!(
            !self.has_pending(),
            "flush deferred maintenance before eager insert handling (IndexedTable does this)"
        );
        self.note_maintained(inserted.len() as u64);
        let col = self.column();
        let constraint = self.constraint();
        // Group inserted rowIDs per partition.
        let mut per_part: Vec<Vec<usize>> = vec![Vec::new(); table.partition_count()];
        for addr in inserted {
            per_part[addr.partition].push(addr.rid);
        }
        // Step one: cover the appended rows in every partition's store.
        self.cover_inserted(table, &per_part);
        match constraint {
            Constraint::NearlyUnique => {
                let changed: Vec<(usize, usize)> =
                    inserted.iter().map(|a| (a.partition, a.rid)).collect();
                self.run_nuc_eager(table, &changed, strategy);
            }
            Constraint::NearlySorted(dir) => {
                for (pid, rids) in per_part.iter().enumerate() {
                    if rids.is_empty() {
                        continue;
                    }
                    let values = gather_values(table.partition(pid), col, rids);
                    let part = self.partition_mut(pid);
                    let (keep, last) = extend_sorted_run(&values, part.last_sorted, dir);
                    if last.is_some() {
                        part.last_sorted = last;
                    }
                    let patches: Vec<u64> = rids
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !keep.contains(i))
                        .map(|(_, &r)| r as u64)
                        .collect();
                    part.store.add_patches(&patches);
                }
            }
            Constraint::NearlyConstant => {
                // Local view only: inserted values that differ from the
                // partition's constant become patches. An empty partition
                // adopts the first inserted value as its constant.
                for (pid, rids) in per_part.iter().enumerate() {
                    if rids.is_empty() {
                        continue;
                    }
                    let values = gather_values(table.partition(pid), col, rids);
                    let part = self.partition_mut(pid);
                    let constant = *part.last_sorted.get_or_insert(values[0]);
                    let patches: Vec<u64> = rids
                        .iter()
                        .zip(&values)
                        .filter(|(_, &v)| v != constant)
                        .map(|(&r, _)| r as u64)
                        .collect();
                    part.store.add_patches(&patches);
                }
            }
        }
    }

    /// Extends every partition store over freshly appended rows (insert
    /// handling step one — shared by the eager and deferred paths).
    pub(crate) fn cover_inserted(&mut self, table: &Table, per_part: &[Vec<usize>]) {
        for (pid, rids) in per_part.iter().enumerate() {
            if rids.is_empty() {
                continue;
            }
            let visible = table.partition(pid).visible_len() as u64;
            let k = rids.len() as u64;
            let part = self.partition_mut(pid);
            assert_eq!(
                part.store.nrows() + k,
                visible,
                "insert handling must run directly after the insert"
            );
            part.store.extend_rows(k);
        }
    }

    /// Maintains the index after `table.modify` patched `col` values of
    /// `rids` in partition `pid`, with the default [`ProbeStrategy`].
    ///
    /// NUC: same collision query as insert handling (paper, Section 5.2),
    /// without the bitmap resize. NSC: all modified tuples join the patch
    /// set — no query needed.
    pub fn handle_modify(&mut self, table: &mut Table, pid: usize, rids: &[usize]) {
        self.handle_modify_with(table, pid, rids, ProbeStrategy::default());
    }

    /// [`PatchIndex::handle_modify`] with an explicit NUC probe strategy.
    pub fn handle_modify_with(
        &mut self,
        table: &mut Table,
        pid: usize,
        rids: &[usize],
        strategy: ProbeStrategy,
    ) {
        assert!(
            !self.has_pending(),
            "flush deferred maintenance before eager modify handling (IndexedTable does this)"
        );
        if rids.is_empty() {
            return;
        }
        self.note_maintained(rids.len() as u64);
        let col = self.column();
        match self.constraint() {
            Constraint::NearlyUnique => {
                let changed: Vec<(usize, usize)> = rids.iter().map(|&r| (pid, r)).collect();
                self.run_nuc_eager(table, &changed, strategy);
            }
            Constraint::NearlySorted(_) => {
                let patches: Vec<u64> = rids.iter().map(|&r| r as u64).collect();
                self.partition_mut(pid).store.add_patches(&patches);
            }
            Constraint::NearlyConstant => {
                // Modified values keep the constraint only if they still
                // equal the constant.
                let values = gather_values(table.partition(pid), col, rids);
                let part = self.partition_mut(pid);
                let patches: Vec<u64> = match part.last_sorted {
                    Some(c) => rids
                        .iter()
                        .zip(&values)
                        .filter(|(_, &v)| v != c)
                        .map(|(&r, _)| r as u64)
                        .collect(),
                    None => rids.iter().map(|&r| r as u64).collect(),
                };
                part.store.add_patches(&patches);
            }
        }
    }

    /// Maintains the index for a delete of `rids` (the same pre-delete
    /// rowIDs passed to `table.delete`). Tracking information about the
    /// deleted tuples is dropped; subsequent rowIDs shift down via the
    /// sharded bitmap's bulk delete / identifier decrementing (paper,
    /// Section 5.3).
    pub fn handle_delete(&mut self, pid: usize, rids: &[usize]) {
        assert!(
            !self.has_pending(),
            "deferred maintenance must be flushed before deletes (IndexedTable does this)"
        );
        self.note_maintained(rids.len() as u64);
        let deleted: Vec<u64> = rids.iter().map(|&r| r as u64).collect();
        self.partition_mut(pid).store.on_delete(&deleted);
    }
}

pub(crate) fn gather_values(partition: &Partition, col: usize, rids: &[usize]) -> Vec<i64> {
    match &partition.gather(&[col], rids)[0] {
        ColumnData::Int(v) => v.clone(),
        ColumnData::Str { codes, .. } => codes.iter().map(|&c| c as i64).collect(),
        other => panic!("NSC over {:?}", other.data_type()),
    }
}

/// Chooses which of `values` (in insertion order) extend the existing
/// sorted run that currently ends at `last`. Returns the chosen index set
/// and the new last value.
pub(crate) fn extend_sorted_run(
    values: &[i64],
    last: Option<i64>,
    dir: SortDir,
) -> (std::collections::BTreeSet<usize>, Option<i64>) {
    // Orient so the run is always non-decreasing.
    let orient = |v: i64| match dir {
        SortDir::Asc => v,
        SortDir::Desc => -v,
    };
    let anchor = last.map(orient);
    // Candidates must not precede the current anchor.
    let candidates: Vec<usize> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| anchor.is_none_or(|a| orient(v) >= a))
        .map(|(i, _)| i)
        .collect();
    let cand_values: Vec<i64> = candidates.iter().map(|&i| orient(values[i])).collect();
    let lis_local = lis::longest_nondecreasing_indices(&cand_values);
    let keep: std::collections::BTreeSet<usize> =
        lis_local.iter().map(|&j| candidates[j]).collect();
    let new_last = keep.iter().next_back().map(|&i| values[i]);
    (keep, new_last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Design;
    use pi_storage::{DataType, Field, Partitioning, Schema, Value};

    fn table(vals: Vec<i64>, nparts: usize) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            nparts,
            Partitioning::RoundRobin,
        );
        for (i, chunk) in vals.chunks(vals.len().div_ceil(nparts)).enumerate() {
            let keys: Vec<i64> = (0..chunk.len() as i64).collect();
            t.load_partition(i, &[ColumnData::Int(keys), ColumnData::Int(chunk.to_vec())]);
        }
        t.propagate_all();
        t
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn nuc_insert_collision_with_existing_value() {
        let mut t = table(vec![10, 20, 30, 40], 1);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(idx.exception_count(), 0);
        // Insert a duplicate of 20 and a fresh 50.
        let addrs = t.insert_rows(&[row(100, 20), row(101, 50)]);
        idx.handle_insert(&mut t, &addrs);
        // Old row 1 (value 20) and new row 4 become patches; 50 stays clean.
        assert_eq!(idx.partition(0).store.patch_rids(), vec![1, 4]);
        idx.check_consistency(&t);
    }

    #[test]
    fn nuc_insert_duplicates_within_inserts() {
        let mut t = table(vec![1, 2, 3], 1);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Identifier);
        let addrs = t.insert_rows(&[row(10, 77), row(11, 77)]);
        idx.handle_insert(&mut t, &addrs);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![3, 4]);
        idx.check_consistency(&t);
    }

    #[test]
    fn nuc_insert_no_collision_adds_no_patches() {
        let mut t = table(vec![1, 2, 3], 1);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Bitmap);
        let addrs = t.insert_rows(&[row(10, 100)]);
        idx.handle_insert(&mut t, &addrs);
        assert_eq!(idx.exception_count(), 0);
        assert_eq!(idx.nrows(), 4);
        idx.check_consistency(&t);
    }

    #[test]
    fn nsc_insert_extends_sorted_run() {
        let mut t = table(vec![1, 2, 3, 10], 1);
        let mut idx = PatchIndex::create(
            &t,
            1,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        assert_eq!(idx.partition(0).last_sorted, Some(10));
        // 12 and 15 extend; 11 after 12? 11 < 12 so LIS keeps 12,15 or
        // 11,15 — longest is (12, 15) or (11, 15): both length 2.
        let addrs = t.insert_rows(&[row(20, 12), row(21, 5), row(22, 15)]);
        idx.handle_insert(&mut t, &addrs);
        // 5 < last_sorted(10): always a patch.
        assert!(idx.partition(0).store.contains(5));
        assert_eq!(idx.partition(0).store.patch_count(), 1);
        assert_eq!(idx.partition(0).last_sorted, Some(15));
        idx.check_consistency(&t);
    }

    #[test]
    fn nsc_insert_loses_optimality_but_not_correctness() {
        // The paper's example: values (1,2,10) + inserts (3,4): the global
        // LIS would keep 1,2,3,4 but the local extension keeps 10 and
        // patches 3,4.
        let mut t = table(vec![1, 2, 10], 1);
        let mut idx = PatchIndex::create(
            &t,
            1,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        let addrs = t.insert_rows(&[row(20, 3), row(21, 4)]);
        idx.handle_insert(&mut t, &addrs);
        assert_eq!(idx.exception_count(), 2);
        idx.check_consistency(&t); // still sorted when excluding patches
    }

    #[test]
    fn nsc_descending_insert() {
        let mut t = table(vec![9, 8, 7], 1);
        let mut idx = PatchIndex::create(
            &t,
            1,
            Constraint::NearlySorted(SortDir::Desc),
            Design::Bitmap,
        );
        let addrs = t.insert_rows(&[row(20, 6), row(21, 7), row(22, 3)]);
        idx.handle_insert(&mut t, &addrs);
        // Run ends at 7; both (6,3) and (7,3) are maximal non-increasing
        // extensions — exactly one of the three inserts becomes a patch.
        assert_eq!(idx.partition(0).store.patch_count(), 1);
        assert_eq!(idx.partition(0).last_sorted, Some(3));
        idx.check_consistency(&t);
    }

    #[test]
    fn modify_nuc_runs_collision_query() {
        let mut t = table(vec![1, 2, 3, 4], 1);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Bitmap);
        t.modify(0, &[3], 1, &[Value::Int(2)]); // 4 -> 2 collides with row 1
        idx.handle_modify(&mut t, 0, &[3]);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![1, 3]);
        idx.check_consistency(&t);
    }

    #[test]
    fn modify_nsc_patches_modified_rows() {
        let mut t = table(vec![1, 2, 3, 4], 1);
        let mut idx = PatchIndex::create(
            &t,
            1,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
        );
        t.modify(0, &[1], 1, &[Value::Int(100)]);
        idx.handle_modify(&mut t, 0, &[1]);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![1]);
        idx.check_consistency(&t);
    }

    #[test]
    fn delete_drops_tracking_info_and_shifts() {
        let mut t = table(vec![1, 5, 5, 9], 1);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![1, 2]);
        // Delete rows 0 and 2 (one of the duplicates).
        t.delete(0, &[0, 2]);
        idx.handle_delete(0, &[0, 2]);
        // Remaining rows: old 1 (value 5, patch, now rid 0), old 3 (9, rid 1).
        assert_eq!(idx.partition(0).store.patch_rids(), vec![0]);
        assert_eq!(idx.nrows(), 2);
        // The lone 5 stays a patch (lost optimality, still correct).
        idx.check_consistency(&t);
    }

    #[test]
    fn multi_partition_insert_routes_maintenance() {
        let mut t = table((0..40).collect(), 4);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Bitmap);
        let addrs = t.insert_rows(&[row(100, 3), row(101, 999)]);
        idx.handle_insert(&mut t, &addrs);
        // Value 3 collides in whichever partition holds it.
        assert_eq!(idx.exception_count(), 2);
        idx.check_consistency(&t);
    }

    #[test]
    fn ncc_insert_and_modify() {
        let mut t = table(vec![4, 4, 4, 9, 4], 1);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyConstant, Design::Bitmap);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![3]);
        assert_eq!(idx.partition(0).last_sorted, Some(4));
        // Insert one conforming and one deviating value.
        let addrs = t.insert_rows(&[row(10, 4), row(11, 7)]);
        idx.handle_insert(&mut t, &addrs);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![3, 6]);
        idx.check_consistency(&t);
        // Modify a conforming row away from the constant.
        t.modify(0, &[0], 1, &[Value::Int(-1)]);
        idx.handle_modify(&mut t, 0, &[0]);
        assert!(idx.partition(0).store.contains(0));
        idx.check_consistency(&t);
        // Deletes drop tracking info like the other constraints.
        t.delete(0, &[3]);
        idx.handle_delete(0, &[3]);
        idx.check_consistency(&t);
    }

    #[test]
    fn extend_sorted_run_unit() {
        let (keep, last) = extend_sorted_run(&[12, 5, 15], Some(10), SortDir::Asc);
        assert!(keep.contains(&0) && keep.contains(&2) && !keep.contains(&1));
        assert_eq!(last, Some(15));
        let (keep, last) = extend_sorted_run(&[1, 2, 3], None, SortDir::Asc);
        assert_eq!(keep.len(), 3);
        assert_eq!(last, Some(3));
        let (keep, last) = extend_sorted_run(&[], Some(4), SortDir::Asc);
        assert!(keep.is_empty());
        assert_eq!(last, None);
    }

    /// Acceptance guard of the build-once pipeline: one maintenance round
    /// over a 4-partition table hashes the build side exactly once under
    /// the shared strategy — the sequential baseline pays once per
    /// partition — and both strategies produce identical patch sets.
    #[test]
    fn shared_probe_hashes_build_side_exactly_once() {
        for design in [Design::Bitmap, Design::Identifier] {
            let vals: Vec<i64> = (0..40).collect();
            let mut shared_t = table(vals.clone(), 4);
            let mut seq_t = table(vals, 4);
            let mut shared_idx = PatchIndex::create(&shared_t, 1, Constraint::NearlyUnique, design);
            let mut seq_idx = PatchIndex::create(&seq_t, 1, Constraint::NearlyUnique, design);

            // Duplicates of 3 and 17 plus fresh values, spread round-robin
            // over all four partitions (cross-partition collisions).
            let rows: Vec<Vec<Value>> = [3, 17, 100, 101, 3, 102]
                .iter()
                .enumerate()
                .map(|(i, &v)| row(200 + i as i64, v))
                .collect();
            let a1 = shared_t.insert_rows(&rows);
            shared_idx.handle_insert_with(&mut shared_t, &a1, ProbeStrategy::ParallelShared);
            let a2 = seq_t.insert_rows(&rows);
            seq_idx.handle_insert_with(&mut seq_t, &a2, ProbeStrategy::SequentialRebuild);

            let shared_stats = shared_idx.maintenance_stats();
            assert_eq!(shared_stats.collision_rounds, 1);
            assert_eq!(
                shared_stats.build_invocations, 1,
                "build hashed once per round"
            );
            assert_eq!(shared_stats.probed_partitions, 4);

            let seq_stats = seq_idx.maintenance_stats();
            assert_eq!(seq_stats.collision_rounds, 1);
            assert_eq!(
                seq_stats.build_invocations, 4,
                "baseline rebuilds per partition"
            );

            for pid in 0..4 {
                assert_eq!(
                    shared_idx.partition(pid).store.patch_rids(),
                    seq_idx.partition(pid).store.patch_rids(),
                    "design {design:?} partition {pid}"
                );
            }
            shared_idx.check_consistency(&shared_t);
        }
    }

    /// Modify rounds go through the same shared pipeline.
    #[test]
    fn shared_probe_counts_modify_rounds() {
        let mut t = table((0..20).collect(), 2);
        let mut idx = PatchIndex::create(&t, 1, Constraint::NearlyUnique, Design::Bitmap);
        t.modify(0, &[0], 1, &[Value::Int(11)]); // collides with 11 (partition 1)
        idx.handle_modify(&mut t, 0, &[0]);
        let stats = idx.maintenance_stats();
        assert_eq!(stats.collision_rounds, 1);
        assert_eq!(stats.build_invocations, 1);
        assert_eq!(idx.exception_count(), 2);
        idx.check_consistency(&t);
    }
}
