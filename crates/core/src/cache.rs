//! Epoch-keyed query result cache with pointer-identity invalidation.
//!
//! Copy-on-write publishing (see [`crate::snapshot`]) gives every epoch
//! an exact, free dirty-set signal: a partition or index whose `Arc`
//! pointer is unchanged across epochs is byte-identical. This cache
//! turns that into result reuse — each entry remembers the **dependency
//! footprint** of the execution that produced it (the `Arc<Partition>`
//! and `Arc<PatchIndex>` pointers the plan actually touched), and stays
//! valid exactly as long as every one of those pointers is still the
//! live version. Invalidation is therefore *exact, not heuristic*: a
//! publish that rewrites one partition kills only the entries whose
//! executions read that partition.
//!
//! The cache itself is plan-agnostic: the planner supplies an opaque
//! fingerprint hash plus the canonical plan bytes behind it. Entries
//! are verified against those bytes on every hit, so a fingerprint
//! collision degrades to a miss, never to a wrong result.
//!
//! Layout: entries are spread over independently locked shards (hot
//! readers don't serialize on one mutex), each holding a byte budget
//! slice. Within a shard, eviction is LRU by a per-shard use tick.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use pi_exec::Batch;
use pi_obs::{Counter, MetricsRegistry};
use pi_storage::{Partition, Table};

use crate::index::PatchIndex;

/// A cached query result: materialized rows or a bare count, mirroring
/// the two executing entry points of the planner's `QueryEngine`.
#[derive(Debug, Clone)]
pub enum CachedValue {
    /// A materialized result batch (`query`).
    Rows(Batch),
    /// A row count (`query_count`).
    Count(u64),
}

impl CachedValue {
    fn heap_bytes(&self) -> usize {
        match self {
            CachedValue::Rows(b) => b.heap_bytes(),
            CachedValue::Count(_) => std::mem::size_of::<u64>(),
        }
    }
}

/// The set of shared-state pointers one execution actually read: the
/// partitions it pulled rows from (or consulted and found empty) and the
/// indexes its plan bound. An entry built from this footprint is valid
/// for any snapshot in which every pointer is still the live version —
/// partitions the execution provably never reached (a pushed-down
/// `LIMIT` stopped before them) are absent, so churn there cannot
/// invalidate the entry.
#[derive(Debug, Clone)]
pub struct Footprint {
    partitions: Vec<(usize, Arc<Partition>)>,
    indexes: Vec<(usize, Arc<PatchIndex>)>,
}

impl Footprint {
    /// Builds a footprint from `(pid, partition)` and `(slot, index)`
    /// pairs.
    pub fn new(
        partitions: Vec<(usize, Arc<Partition>)>,
        indexes: Vec<(usize, Arc<PatchIndex>)>,
    ) -> Self {
        Footprint {
            partitions,
            indexes,
        }
    }

    /// Whether every footprint pointer is still the live version in the
    /// given snapshot state (`Arc::ptr_eq` — byte-identity by CoW).
    pub fn matches(&self, table: &Table, indexes: &[Arc<PatchIndex>]) -> bool {
        self.partitions.iter().all(|(pid, p)| {
            table
                .partitions()
                .get(*pid)
                .is_some_and(|q| Arc::ptr_eq(p, q))
        }) && self
            .indexes
            .iter()
            .all(|(slot, i)| indexes.get(*slot).is_some_and(|j| Arc::ptr_eq(i, j)))
    }

    /// Whether partition `pid` is part of this footprint.
    pub fn covers_partition(&self, pid: usize) -> bool {
        self.partitions.iter().any(|(p, _)| *p == pid)
    }

    /// The partition ids in this footprint, ascending.
    pub fn partition_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.partitions.iter().map(|(p, _)| *p).collect();
        ids.sort_unstable();
        ids
    }

    /// The bound index slots in this footprint, ascending.
    pub fn index_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self.indexes.iter().map(|(s, _)| *s).collect();
        slots.sort_unstable();
        slots
    }
}

#[derive(Debug)]
struct Entry {
    /// Which table (cache token) this entry belongs to — a shared cache
    /// must never let one table's publish sweep kill another's entries,
    /// nor serve an entry across tables on a hash collision.
    table: u64,
    /// Canonical plan bytes, verified on every hit (collision guard).
    canon: Arc<[u8]>,
    value: CachedValue,
    footprint: Footprint,
    /// Epoch the footprint was last validated against — same-epoch
    /// lookups skip pointer checks entirely.
    epoch: u64,
    last_used: u64,
    bytes: usize,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
}

/// Counter snapshot of a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found no valid entry.
    pub misses: u64,
    /// Entries removed because a footprint pointer changed (publish
    /// sweeps and hit-time validation failures).
    pub invalidated: u64,
    /// Entries removed to stay inside the byte budget.
    pub evicted: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Result bytes currently resident.
    pub bytes: u64,
}

/// A sharded, byte-budgeted query result cache. See the module docs.
///
/// Lookups identify entries by `(table token, fingerprint hash)` and
/// verify the canonical plan bytes plus — across epochs — the footprint
/// pointers. The counters are `pi-obs` [`Counter`] handles — private to
/// this cache by default, or shared with a [`MetricsRegistry`] (under
/// `cache.*` names) via [`ResultCache::with_registry`]; either way the
/// per-shard mutex is held only for the map operation itself.
#[derive(Debug)]
pub struct ResultCache {
    shards: Box<[Mutex<Shard>]>,
    shard_budget: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    invalidated: Arc<Counter>,
    evicted: Arc<Counter>,
}

impl ResultCache {
    /// Default byte budget (64 MiB).
    pub const DEFAULT_BUDGET: usize = 64 << 20;
    const SHARDS: usize = 16;

    /// Creates a cache with the given total byte budget, split evenly
    /// over the shards. Counters are private to this cache.
    pub fn new(budget_bytes: usize) -> Self {
        let mut shards = Vec::with_capacity(Self::SHARDS);
        shards.resize_with(Self::SHARDS, Mutex::default);
        ResultCache {
            shards: shards.into_boxed_slice(),
            shard_budget: (budget_bytes / Self::SHARDS).max(1),
            hits: Arc::new(Counter::default()),
            misses: Arc::new(Counter::default()),
            invalidated: Arc::new(Counter::default()),
            evicted: Arc::new(Counter::default()),
        }
    }

    /// Like [`ResultCache::new`], but the counters live in `registry`
    /// as `cache.hits` / `cache.misses` / `cache.invalidated` /
    /// `cache.evicted`, so the cache shows up in registry snapshots.
    /// [`ResultCache::stats`] keeps reporting the same numbers — it is
    /// a thin view over the shared handles.
    pub fn with_registry(budget_bytes: usize, registry: &MetricsRegistry) -> Self {
        ResultCache {
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            invalidated: registry.counter("cache.invalidated"),
            evicted: registry.counter("cache.evicted"),
            ..ResultCache::new(budget_bytes)
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        // High bits pick the shard; the map keys on the full hash.
        &self.shards[(hash >> 48) as usize & (Self::SHARDS - 1)]
    }

    /// Looks up `(table, hash)` for a snapshot at `epoch` with the given
    /// live state. Returns the cached value only when the canonical
    /// bytes match (collision guard) and the footprint still holds
    /// (pointer identity); a stale entry found here is removed on the
    /// spot — hit-time validation backstops any publish-sweep race.
    pub fn lookup(
        &self,
        table_token: u64,
        hash: u64,
        canon: &[u8],
        epoch: u64,
        table: &Table,
        indexes: &[Arc<PatchIndex>],
    ) -> Option<CachedValue> {
        let mut shard = self.shard(hash).lock();
        shard.tick += 1;
        let tick = shard.tick;
        let stale = match shard.map.get_mut(&hash) {
            Some(e) if e.table == table_token && *e.canon == *canon => {
                if e.epoch == epoch || e.footprint.matches(table, indexes) {
                    e.epoch = epoch;
                    e.last_used = tick;
                    let value = e.value.clone();
                    drop(shard);
                    self.hits.inc();
                    return Some(value);
                }
                true
            }
            _ => false,
        };
        if stale {
            let e = shard.map.remove(&hash).expect("entry just matched");
            shard.bytes -= e.bytes;
            self.invalidated.inc();
        }
        drop(shard);
        self.misses.inc();
        None
    }

    /// Inserts (or replaces) an entry, then evicts least-recently-used
    /// entries until the shard is back inside its budget slice. A value
    /// too large to ever fit is dropped immediately rather than allowed
    /// to blow the budget.
    pub fn insert(
        &self,
        table_token: u64,
        hash: u64,
        canon: Arc<[u8]>,
        epoch: u64,
        value: CachedValue,
        footprint: Footprint,
    ) {
        // Entry overhead: footprint pairs + map slot, approximated.
        let bytes = canon.len()
            + value.heap_bytes()
            + 32 * (footprint.partitions.len() + footprint.indexes.len())
            + 96;
        let mut evictions = 0u64;
        let mut shard = self.shard(hash).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(old) = shard.map.insert(
            hash,
            Entry {
                table: table_token,
                canon,
                value,
                footprint,
                epoch,
                last_used: tick,
                bytes,
            },
        ) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        while shard.bytes > self.shard_budget {
            let lru = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&h, _)| h)
                .expect("over budget implies non-empty");
            let e = shard.map.remove(&lru).expect("key from live iteration");
            shard.bytes -= e.bytes;
            evictions += 1;
        }
        drop(shard);
        if evictions > 0 {
            self.evicted.add(evictions);
        }
    }

    /// Publish-side sweep: removes every entry of `table_token` whose
    /// footprint no longer matches the freshly published state. Entries
    /// of other tables sharing the cache are untouched. Returns how many
    /// entries were invalidated.
    pub fn invalidate_stale(
        &self,
        table_token: u64,
        table: &Table,
        indexes: &[Arc<PatchIndex>],
    ) -> u64 {
        let mut removed = 0u64;
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let before = shard.map.len();
            let mut freed = 0usize;
            shard.map.retain(|_, e| {
                let keep = e.table != table_token || e.footprint.matches(table, indexes);
                if !keep {
                    freed += e.bytes;
                }
                keep
            });
            removed += (before - shard.map.len()) as u64;
            shard.bytes -= freed;
        }
        if removed > 0 {
            self.invalidated.add(removed);
        }
        removed
    }

    /// Drops every entry (tests and manual administration).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in self.shards.iter() {
            let shard = shard.lock();
            entries += shard.map.len() as u64;
            bytes += shard.bytes as u64;
        }
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidated: self.invalidated.get(),
            evicted: self.evicted.get(),
            entries,
            bytes,
        }
    }

    /// Hit ratio over all lookups so far (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.get() as f64;
        let m = self.misses.get() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(Self::DEFAULT_BUDGET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Constraint, Design};
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table(parts: usize) -> Table {
        let mut t = Table::new(
            "c",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            parts,
            Partitioning::RoundRobin,
        );
        for pid in 0..parts {
            let base = (pid * 10) as i64;
            t.load_partition(pid, &[ColumnData::Int((base..base + 5).collect())]);
        }
        t.propagate_all();
        t
    }

    fn canon(tag: u8) -> Arc<[u8]> {
        Arc::from(vec![tag, 1, 2, 3].into_boxed_slice())
    }

    fn count(v: u64) -> CachedValue {
        CachedValue::Count(v)
    }

    #[test]
    fn hit_requires_matching_canonical_bytes() {
        let cache = ResultCache::new(1 << 20);
        let t = table(2);
        let fp = Footprint::new(vec![(0, Arc::clone(&t.partitions()[0]))], vec![]);
        cache.insert(7, 42, canon(1), 0, count(5), fp);
        // Same hash, same table, different canonical form: a manufactured
        // fingerprint collision must miss, not serve the wrong result.
        assert!(cache.lookup(7, 42, &canon(2), 0, &t, &[]).is_none());
        let got = cache.lookup(7, 42, &canon(1), 0, &t, &[]);
        assert!(matches!(got, Some(CachedValue::Count(5))));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cross_epoch_hit_validates_pointers() {
        let cache = ResultCache::new(1 << 20);
        let t = table(2);
        let fp = Footprint::new(vec![(0, Arc::clone(&t.partitions()[0]))], vec![]);
        cache.insert(1, 9, canon(0), 3, count(1), fp);
        // A later epoch with the same partition pointer still hits...
        assert!(cache.lookup(1, 9, &canon(0), 8, &t, &[]).is_some());
        // ...and the entry's epoch was refreshed to the validated one.
        assert!(cache.lookup(1, 9, &canon(0), 8, &t, &[]).is_some());
        // A snapshot whose partition 0 was rewritten misses and removes
        // the entry.
        let mut other = table(2);
        other.load_partition(0, &[ColumnData::Int(vec![99])]);
        other.propagate_all();
        assert!(cache.lookup(1, 9, &canon(0), 9, &other, &[]).is_none());
        assert_eq!(cache.stats().invalidated, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn publish_sweep_removes_only_dirty_footprints() {
        let cache = ResultCache::new(1 << 20);
        let t = table(3);
        let p = |pid: usize| (pid, Arc::clone(&t.partitions()[pid]));
        cache.insert(
            1,
            1,
            canon(1),
            0,
            count(1),
            Footprint::new(vec![p(0)], vec![]),
        );
        cache.insert(
            1,
            2,
            canon(2),
            0,
            count(2),
            Footprint::new(vec![p(1)], vec![]),
        );
        cache.insert(
            1,
            3,
            canon(3),
            0,
            count(3),
            Footprint::new(vec![p(0), p(1), p(2)], vec![]),
        );
        // Another table's entry with a now-stale pointer must survive a
        // sweep scoped to table 1.
        cache.insert(
            2,
            4,
            canon(4),
            0,
            count(4),
            Footprint::new(vec![p(1)], vec![]),
        );

        // "Publish": clone-then-append rewrites partition 1's Arc only
        // (copy-on-write leaves 0 and 2 pointer-identical).
        let mut next = t.clone();
        next.load_partition(1, &[ColumnData::Int(vec![1000])]);

        let removed = cache.invalidate_stale(1, &next, &[]);
        assert_eq!(removed, 2, "exactly the entries reading partition 1");
        assert!(cache.lookup(1, 1, &canon(1), 1, &next, &[]).is_some());
        assert!(cache.lookup(1, 2, &canon(2), 1, &next, &[]).is_none());
        assert!(cache.lookup(1, 3, &canon(3), 1, &next, &[]).is_none());
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn index_pointer_change_invalidates() {
        let cache = ResultCache::new(1 << 20);
        let t = table(2);
        let idx = Arc::new(PatchIndex::create(
            &t,
            0,
            Constraint::NearlyUnique,
            Design::Bitmap,
        ));
        let fp = Footprint::new(vec![], vec![(0, Arc::clone(&idx))]);
        cache.insert(1, 5, canon(5), 0, count(9), fp);
        assert!(cache
            .lookup(1, 5, &canon(5), 2, &t, std::slice::from_ref(&idx))
            .is_some());
        // A recomputed (new-Arc) index at the slot invalidates.
        let recomputed = Arc::new(PatchIndex::create(
            &t,
            0,
            Constraint::NearlyUnique,
            Design::Bitmap,
        ));
        assert!(cache
            .lookup(1, 5, &canon(5), 3, &t, std::slice::from_ref(&recomputed))
            .is_none());
        // A dropped slot (shorter index vec) invalidates too.
        cache.insert(
            1,
            5,
            canon(5),
            3,
            count(9),
            Footprint::new(vec![], vec![(0, idx)]),
        );
        assert!(cache.lookup(1, 5, &canon(5), 4, &t, &[]).is_none());
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // Tiny budget: per-shard slice fits roughly one small entry.
        let cache = ResultCache::new(ResultCache::SHARDS * 256);
        let t = table(1);
        let fp = || Footprint::new(vec![(0, Arc::clone(&t.partitions()[0]))], vec![]);
        // Same shard (identical high bits), distinct hashes.
        for i in 0..4u64 {
            cache.insert(1, i, canon(i as u8), 0, count(i), fp());
        }
        let stats = cache.stats();
        assert!(stats.evicted > 0, "budget must force evictions: {stats:?}");
        assert!(stats.bytes <= (ResultCache::SHARDS * 256) as u64);
        // The most recently inserted entry survived.
        assert!(cache.lookup(1, 3, &canon(3), 0, &t, &[]).is_some());
    }

    #[test]
    fn oversized_value_does_not_blow_the_budget() {
        let cache = ResultCache::new(ResultCache::SHARDS * 64);
        let big = CachedValue::Rows(Batch::new(vec![ColumnData::Int(vec![0; 4096])]));
        cache.insert(1, 1, canon(1), 0, big, Footprint::new(vec![], vec![]));
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "{stats:?}");
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.evicted, 1);
    }

    #[test]
    fn registry_backed_counters_are_shared() {
        let reg = MetricsRegistry::new();
        let cache = ResultCache::with_registry(1 << 20, &reg);
        let t = table(1);
        assert!(cache.lookup(1, 1, &canon(1), 0, &t, &[]).is_none());
        cache.insert(1, 1, canon(1), 0, count(7), Footprint::new(vec![], vec![]));
        assert!(cache.lookup(1, 1, &canon(1), 0, &t, &[]).is_some());
        // Same numbers through both views: the registry and stats().
        assert_eq!(reg.counter("cache.hits").get(), 1);
        assert_eq!(reg.counter("cache.misses").get(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn stats_track_entries_and_bytes() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(1, 1, canon(1), 0, count(1), Footprint::new(vec![], vec![]));
        cache.insert(1, 2, canon(2), 0, count(2), Footprint::new(vec![], vec![]));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes, 0);
    }
}
