//! Reservoir sampling for online constraint discovery.
//!
//! Full-scan discovery ([`crate::discovery::discover_values`]) is what
//! index creation runs; the advisor cannot afford it per candidate column
//! per step. Instead every unindexed (Int) column keeps a fixed-size
//! reservoir fed by the update stream: each value ever offered has the
//! same `cap / seen` probability of being in the sample (Vitter's
//! algorithm R), so running discovery **on the sample** estimates the
//! column's match fraction without touching the table.
//!
//! Every constraint in this system is **partition-local** (per-partition
//! patch sets, per-partition sorted runs and constants), so the sample
//! tags each value with its partition and [`Reservoir::match_fraction`]
//! scores each partition's subsample separately, weighting by size —
//! concatenating partitions would report cross-partition duplicates as
//! NUC violations and interleaved key ranges as NSC violations that the
//! real per-partition discovery would never produce. Within a partition
//! the retained values replay in arrival order, keeping order-sensitive
//! constraints (NSC) meaningful: a uniformly drawn subsequence of a
//! nearly sorted stream is itself nearly sorted with the same expected
//! match fraction.

use crate::constraint::Constraint;
use crate::discovery::constraint_match_fraction;

/// A fixed-capacity uniform sample over a `(partition, value)` stream.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    /// `(arrival seq, partition, value)` of the retained values,
    /// unordered.
    slots: Vec<(u64, u32, i64)>,
    state: u64,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` values.
    pub fn new(cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "empty reservoir");
        Reservoir {
            cap,
            seen: 0,
            slots: Vec::with_capacity(cap),
            state: seed | 1,
        }
    }

    /// xorshift64* — deterministic, dependency-free; sampling quality
    /// needs no more.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers one value of partition `pid` from the stream.
    pub fn offer(&mut self, pid: usize, v: i64) {
        let seq = self.seen;
        self.seen += 1;
        if self.slots.len() < self.cap {
            self.slots.push((seq, pid as u32, v));
            return;
        }
        // Keep with probability cap/seen: replace a uniform slot.
        let j = (self.next_u64() % self.seen) as usize;
        if j < self.cap {
            self.slots[j] = (seq, pid as u32, v);
        }
    }

    /// Values offered so far (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Retained values in arrival order (all partitions pooled).
    pub fn values(&self) -> Vec<i64> {
        let mut s = self.slots.clone();
        s.sort_unstable_by_key(|&(seq, _, _)| seq);
        s.into_iter().map(|(_, _, v)| v).collect()
    }

    /// Estimated match fraction of `constraint` over the sampled stream:
    /// the size-weighted mean of each partition's subsample score,
    /// mirroring how discovery itself runs partition-locally.
    pub fn match_fraction(&self, constraint: Constraint) -> f64 {
        if self.slots.is_empty() {
            return 1.0;
        }
        let mut s = self.slots.clone();
        // Partition-major, arrival order within each partition.
        s.sort_unstable_by_key(|&(seq, pid, _)| (pid, seq));
        let mut weighted = 0.0;
        let mut start = 0;
        while start < s.len() {
            let pid = s[start].1;
            let end = start + s[start..].iter().take_while(|&&(_, p, _)| p == pid).count();
            let vals: Vec<i64> = s[start..end].iter().map(|&(_, _, v)| v).collect();
            weighted += constraint_match_fraction(&vals, constraint) * vals.len() as f64;
            start = end;
        }
        weighted / s.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Constraint, SortDir};

    #[test]
    fn fills_then_stays_at_capacity() {
        let mut r = Reservoir::new(8, 42);
        for v in 0..100 {
            r.offer(0, v);
        }
        assert_eq!(r.seen(), 100);
        assert_eq!(r.values().len(), 8);
    }

    #[test]
    fn short_streams_are_kept_verbatim_in_order() {
        let mut r = Reservoir::new(16, 1);
        for v in [5, 3, 9, 1] {
            r.offer(0, v);
        }
        assert_eq!(r.values(), vec![5, 3, 9, 1]);
    }

    #[test]
    fn sorted_stream_samples_sorted() {
        // A subsequence of a sorted stream is sorted regardless of which
        // slots survive — the order-preserving replay is what matters.
        let mut r = Reservoir::new(32, 7);
        for v in 0..10_000 {
            r.offer(0, v);
        }
        let vals = r.values();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        assert!((r.match_fraction(Constraint::NearlySorted(SortDir::Asc)) - 1.0).abs() < 1e-12);
    }

    /// Partition-local scoring: each partition perfectly sorted but key
    /// ranges interleaved (RoundRobin-style) — per-partition discovery
    /// finds zero patches, and so must the sample estimate. The same
    /// stream pooled across partitions would score ~0.5.
    #[test]
    fn interleaved_partitions_score_partition_locally() {
        let mut r = Reservoir::new(256, 11);
        for i in 0..5_000i64 {
            r.offer((i % 2) as usize, i); // p0: 0,2,4..., p1: 1,3,5...
        }
        let est = r.match_fraction(Constraint::NearlySorted(SortDir::Asc));
        assert!(
            (est - 1.0).abs() < 1e-12,
            "per-partition sorted must score 1.0, got {est}"
        );
        // NUC across partitions: a value living in both partitions is
        // *not* a partition-local duplicate.
        let mut r = Reservoir::new(256, 13);
        for i in 0..2_000i64 {
            r.offer(0, i);
            r.offer(1, i); // same values, other partition
        }
        let est = r.match_fraction(Constraint::NearlyUnique);
        assert!(
            (est - 1.0).abs() < 1e-12,
            "cross-partition repeats are unique, got {est}"
        );
    }

    #[test]
    fn match_fraction_estimates_the_planted_rate() {
        // Nearly unique stream: 20% of values drawn from a tiny duplicate
        // pool, planted in adjacent pairs (like the micro generator).
        let mut r = Reservoir::new(512, 9);
        let mut unique = 1_000_000i64;
        let mut state = 0xDEAD_BEEFu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5_000 {
            if rand() % 10 == 0 {
                let v = (rand() % 8) as i64;
                r.offer(0, v);
                r.offer(0, v);
            } else {
                unique += 1;
                r.offer(0, unique);
                unique += 1;
                r.offer(0, unique);
            }
        }
        let est = r.match_fraction(Constraint::NearlyUnique);
        // Expected ≈ 0.8; the sample of the pool survives as duplicates
        // because pool values repeat massively across the stream.
        assert!(est > 0.6 && est < 0.95, "estimate {est}");
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let run = |seed| {
            let mut r = Reservoir::new(16, seed);
            (0..1000).for_each(|v| r.offer(0, v));
            r.values()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn empty_reservoir_scores_a_perfect_match() {
        let r = Reservoir::new(4, 1);
        assert_eq!(r.match_fraction(Constraint::NearlyConstant), 1.0);
    }
}
