//! A table bundled with its PatchIndexes.
//!
//! [`IndexedTable`] routes every update through the index maintenance of
//! Section 5, so the indexes never reach an inconsistent state ("we avoid
//! getting inconsistent states by handling updates immediately after they
//! occur"). Multiple PatchIndexes per table are supported — unlike a
//! SortKey, PatchIndexes do not change the physical data order (paper,
//! Section 2).

use pi_storage::{RowAddr, Table, Value};

use crate::constraint::{Constraint, Design};
use crate::index::PatchIndex;

/// Maintenance tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MaintenancePolicy {
    /// Recompute an index once its exception rate exceeds this.
    pub max_exception_rate: f64,
    /// Condense bitmaps whose utilization fell below this.
    pub condense_threshold: f64,
    /// Whether the policy runs automatically after each update batch.
    pub auto: bool,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy { max_exception_rate: 0.5, condense_threshold: 0.5, auto: false }
    }
}

/// A table whose PatchIndexes are maintained through every update.
pub struct IndexedTable {
    table: Table,
    indexes: Vec<PatchIndex>,
    policy: MaintenancePolicy,
}

impl IndexedTable {
    /// Wraps a table (no indexes yet).
    pub fn new(table: Table) -> Self {
        IndexedTable { table, indexes: Vec::new(), policy: MaintenancePolicy::default() }
    }

    /// Sets the maintenance policy.
    pub fn with_policy(mut self, policy: MaintenancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Creates a PatchIndex on `col` and returns its slot.
    pub fn add_index(&mut self, col: usize, constraint: Constraint, design: Design) -> usize {
        self.indexes.push(PatchIndex::create(&self.table, col, constraint, design));
        self.indexes.len() - 1
    }

    /// Read access to the table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The indexes.
    pub fn indexes(&self) -> &[PatchIndex] {
        &self.indexes
    }

    /// Index by slot.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, slot: usize) -> &PatchIndex {
        &self.indexes[slot]
    }

    /// Inserts rows, maintaining every index (paper, Section 5.1).
    pub fn insert(&mut self, rows: &[Vec<Value>]) -> Vec<RowAddr> {
        let addrs = self.table.insert_rows(rows);
        for idx in &mut self.indexes {
            idx.handle_insert(&mut self.table, &addrs);
        }
        self.run_policy();
        addrs
    }

    /// Deletes visible rows of one partition, maintaining every index
    /// (paper, Section 5.3).
    pub fn delete(&mut self, pid: usize, rids: &[usize]) {
        // Index stores interpret the same pre-delete rowIDs the table does.
        for idx in &mut self.indexes {
            idx.handle_delete(pid, rids);
        }
        self.table.delete(pid, rids);
        self.run_policy();
    }

    /// Patches `col` of the given rows, maintaining the indexes on that
    /// column (paper, Section 5.2). Indexes on other columns are
    /// unaffected.
    pub fn modify(&mut self, pid: usize, rids: &[usize], col: usize, values: &[Value]) {
        self.table.modify(pid, rids, col, values);
        for idx in &mut self.indexes {
            if idx.column() == col {
                idx.handle_modify(&mut self.table, pid, rids);
            }
        }
        self.run_policy();
    }

    /// Merges pending deltas into base storage (visible rowIDs do not
    /// change, so indexes stay valid).
    pub fn propagate(&mut self) {
        self.table.propagate_all();
    }

    /// Applies the maintenance policy once (recompute / condense).
    pub fn run_policy_now(&mut self) -> (usize, usize) {
        let mut recomputed = 0;
        let mut condensed = 0;
        for idx in &mut self.indexes {
            if idx.maybe_recompute(&self.table, self.policy.max_exception_rate) {
                recomputed += 1;
            }
            condensed += idx.maybe_condense(self.policy.condense_threshold);
        }
        (recomputed, condensed)
    }

    fn run_policy(&mut self) {
        if self.policy.auto {
            self.run_policy_now();
        }
    }

    /// Verifies every index against the table (test helper).
    pub fn check_consistency(&self) {
        for idx in &self.indexes {
            idx.check_consistency(&self.table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::SortDir;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn fresh() -> IndexedTable {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![0, 1, 2]), ColumnData::Int(vec![10, 20, 30])]);
        t.load_partition(1, &[ColumnData::Int(vec![3, 4]), ColumnData::Int(vec![40, 50])]);
        t.propagate_all();
        IndexedTable::new(t)
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn lifecycle_with_two_indexes() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Identifier);
        it.insert(&[row(100, 20), row(101, 60)]);
        it.check_consistency();
        // Both indexes grew with the table.
        assert_eq!(it.index(0).nrows(), 7);
        assert_eq!(it.index(1).nrows(), 7);
        // NUC found the duplicate 20.
        assert_eq!(it.index(0).exception_count(), 2);
    }

    #[test]
    fn delete_keeps_indexes_aligned() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.delete(0, &[1]);
        it.check_consistency();
        assert_eq!(it.index(0).nrows(), 4);
    }

    #[test]
    fn modify_only_touches_matching_indexes() {
        let mut it = fresh();
        let on_v = it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let on_k = it.add_index(0, Constraint::NearlyUnique, Design::Bitmap);
        it.modify(0, &[0], 1, &[Value::Int(15)]);
        it.check_consistency();
        assert_eq!(it.index(on_v).exception_count(), 1);
        assert_eq!(it.index(on_k).exception_count(), 0);
    }

    #[test]
    fn auto_policy_recomputes() {
        let mut it = fresh().with_policy(MaintenancePolicy {
            max_exception_rate: 0.3,
            condense_threshold: 0.5,
            auto: true,
        });
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        // Modifying most rows pushes e over the threshold; the auto policy
        // recomputes and the fresh discovery shrinks the patch set again.
        it.modify(0, &[0, 1], 1, &[Value::Int(11), Value::Int(21)]);
        it.check_consistency();
        assert!(it.index(0).exception_rate() <= 0.3);
    }

    #[test]
    fn propagate_preserves_consistency() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Identifier);
        it.insert(&[row(7, 10), row(8, 99)]);
        it.delete(1, &[0]);
        it.propagate();
        it.check_consistency();
    }
}
