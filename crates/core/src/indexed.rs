//! A table bundled with its PatchIndexes.
//!
//! [`IndexedTable`] routes every update through the index maintenance of
//! Section 5. In the default **eager** mode every statement is maintained
//! immediately ("we avoid getting inconsistent states by handling updates
//! immediately after they occur"). **Deferred** mode
//! ([`MaintenanceMode::Deferred`]) instead stages inserts/modifies into a
//! per-index dirty set and amortizes maintenance over one merged collision
//! join / LIS extension per flush — see [`crate::deferred`] for semantics
//! and the query-correctness contract. Multiple PatchIndexes per table are
//! supported — unlike a SortKey, PatchIndexes do not change the physical
//! data order (paper, Section 2).

use std::collections::HashMap;
use std::sync::Arc;

use pi_storage::{DataType, RowAddr, Table, Value};

use crate::catalog::IndexCatalog;
use crate::constraint::{Constraint, Design, SortDir};
use crate::index::PatchIndex;
use crate::maintenance::ProbeStrategy;
use crate::sampling::Reservoir;

/// When index maintenance runs relative to the update statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Maintain every index synchronously with each statement (the
    /// paper's behavior; indexes are always fully consistent).
    #[default]
    Eager,
    /// Stage inserts/modifies per index and flush once the number of
    /// staged row-events reaches `flush_rows` (or on
    /// [`IndexedTable::flush_maintenance`], or before any delete /
    /// policy run). Staged rows are routed through the exception flow;
    /// see [`crate::deferred`] for which plans that keeps exact and when
    /// to flush first.
    Deferred {
        /// Auto-flush threshold in staged row-events per index.
        flush_rows: usize,
    },
}

/// Maintenance tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MaintenancePolicy {
    /// Recompute an index once its exception rate exceeds this.
    pub max_exception_rate: f64,
    /// Condense bitmaps whose utilization fell below this.
    pub condense_threshold: f64,
    /// Whether the policy runs automatically after each update batch.
    pub auto: bool,
    /// Eager (per-statement) or deferred (batch-amortized) maintenance.
    pub mode: MaintenanceMode,
    /// How eager NUC collision joins execute (the deferred flush always
    /// uses the shared parallel pipeline).
    pub probe: ProbeStrategy,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            max_exception_rate: 0.5,
            condense_threshold: 0.5,
            auto: false,
            mode: MaintenanceMode::Eager,
            probe: ProbeStrategy::default(),
        }
    }
}

/// The shape of a query as far as index advising cares: which rewrite
/// family could have served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// Duplicate elimination over the column (NUC/NCC territory).
    Distinct,
    /// ORDER BY over the column (NSC territory).
    Sort(SortDir),
}

/// Per-(column, shape) counters of the queries the engine planned — the
/// workload evidence behind the advisor's create rule. The `QueryEngine`
/// facade records one entry per planned query that scans a single column
/// through a distinct/sort root.
#[derive(Debug, Clone, Default)]
pub struct QueryLog {
    counts: HashMap<(usize, QueryShape), u64>,
}

impl QueryLog {
    /// Records one query over `col` with the given shape.
    pub fn record(&mut self, col: usize, shape: QueryShape) {
        *self.counts.entry((col, shape)).or_insert(0) += 1;
    }

    /// Queries of this exact (column, shape) seen so far.
    pub fn count(&self, col: usize, shape: QueryShape) -> u64 {
        self.counts.get(&(col, shape)).copied().unwrap_or(0)
    }

    /// All recorded (column, shape, count) entries, unordered.
    pub fn entries(&self) -> impl Iterator<Item = (usize, QueryShape, u64)> + '_ {
        self.counts
            .iter()
            .map(|(&(col, shape), &n)| (col, shape, n))
    }

    /// Total queries recorded.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// A table whose PatchIndexes are maintained through every update.
///
/// Indexes live behind [`Arc`]: the snapshot layer
/// ([`crate::snapshot::TableSnapshot`]) shares them with concurrent
/// readers, and maintenance copies an index on first write only while a
/// snapshot still references it (copy-on-write, same discipline as the
/// table's partitions).
pub struct IndexedTable {
    table: Table,
    indexes: Vec<Arc<PatchIndex>>,
    policy: MaintenancePolicy,
    query_log: QueryLog,
    /// One reservoir per Int column while discovery sampling is enabled
    /// (indexed columns keep sampling too — cheap, and the index may be
    /// dropped later).
    samplers: Vec<Option<Reservoir>>,
    /// Cached full catalog snapshot (with the NUC distinct-patch pass);
    /// invalidated by every mutation instead of re-hashed per query.
    catalog_cache: Option<IndexCatalog>,
    catalog_rebuilds: u64,
    statements: u64,
}

impl IndexedTable {
    /// Wraps a table (no indexes yet).
    pub fn new(table: Table) -> Self {
        IndexedTable {
            table,
            indexes: Vec::new(),
            policy: MaintenancePolicy::default(),
            query_log: QueryLog::default(),
            samplers: Vec::new(),
            catalog_cache: None,
            catalog_rebuilds: 0,
            statements: 0,
        }
    }

    /// Sets the maintenance policy.
    pub fn with_policy(mut self, policy: MaintenancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Rebuilds an indexed table from recovered state: a restored table,
    /// checkpoint-loaded indexes in slot order, and the persisted
    /// statement counter (the advisor's piggyback cadence must resume
    /// where the crashed process stopped, not restart from zero).
    /// Discovery sampling restarts disabled; re-enable it after recovery
    /// if the workload uses it.
    pub fn with_restored_indexes(
        table: Table,
        indexes: Vec<Arc<PatchIndex>>,
        statements: u64,
    ) -> Self {
        for idx in &indexes {
            assert!(
                idx.column() < table.schema().len(),
                "restored index column out of range"
            );
        }
        IndexedTable {
            table,
            indexes,
            policy: MaintenancePolicy::default(),
            query_log: QueryLog::default(),
            samplers: Vec::new(),
            catalog_cache: None,
            catalog_rebuilds: 0,
            statements,
        }
    }

    /// Replaces the maintenance policy in place (the snapshot writer's
    /// counterpart of [`IndexedTable::with_policy`]).
    pub fn set_policy(&mut self, policy: MaintenancePolicy) {
        self.policy = policy;
    }

    /// Creates a PatchIndex on `col` and returns its slot.
    pub fn add_index(&mut self, col: usize, constraint: Constraint, design: Design) -> usize {
        self.invalidate_catalog();
        self.indexes.push(Arc::new(PatchIndex::create(
            &self.table,
            col,
            constraint,
            design,
        )));
        self.indexes.len() - 1
    }

    /// Drops the index in `slot` and returns it (a shared handle — live
    /// snapshots may still be reading it). Later indexes shift down one
    /// slot — slots are only stable between catalog snapshots, which is
    /// all the planner assumes (every query re-snapshots).
    pub fn drop_index(&mut self, slot: usize) -> Arc<PatchIndex> {
        self.invalidate_catalog();
        self.indexes.remove(slot)
    }

    /// Rebuilds the index in `slot` from the current table. Deferred work
    /// staged on that index is discarded — the fresh discovery over the
    /// (always up-to-date) table supersedes it.
    pub fn recompute_index(&mut self, slot: usize) {
        self.invalidate_catalog();
        Arc::make_mut(&mut self.indexes[slot]).recompute(&self.table);
    }

    /// Read access to the table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The indexes (shared handles; deref to [`PatchIndex`]).
    pub fn indexes(&self) -> &[Arc<PatchIndex>] {
        &self.indexes
    }

    /// Clones the index handles (what a snapshot captures — `Arc` bumps,
    /// no index data copied).
    pub(crate) fn share_indexes(&self) -> Vec<Arc<PatchIndex>> {
        self.indexes.clone()
    }

    /// Index by slot.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, slot: usize) -> &PatchIndex {
        &self.indexes[slot]
    }

    /// The active maintenance policy.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Snapshot of every index plus the per-partition table shape — what
    /// the planner optimizes against (see `pi-planner`'s `QueryEngine`).
    /// Always freshly computed; queries should prefer
    /// [`IndexedTable::cached_catalog`], which re-hashes the NUC
    /// distinct-patch values only after a mutation.
    pub fn catalog(&self) -> IndexCatalog {
        IndexCatalog::of(&self.table, &self.indexes)
    }

    /// The full catalog snapshot, cached between mutations: the first
    /// call after an update pays the snapshot (including the capped NUC
    /// distinct-patch pass); every further call is a borrow.
    pub fn cached_catalog(&mut self) -> &IndexCatalog {
        if self.catalog_cache.is_none() {
            self.catalog_cache = Some(IndexCatalog::of(&self.table, &self.indexes));
            self.catalog_rebuilds += 1;
        }
        self.catalog_cache.as_ref().expect("just filled")
    }

    /// How often the cached catalog was recomputed (one rebuild per
    /// mutation epoch, however many queries ran in between).
    pub fn catalog_rebuilds(&self) -> u64 {
        self.catalog_rebuilds
    }

    /// The snapshot a query should plan against. Plans consulting
    /// distinct statistics get the cached full catalog (building it on
    /// first use after a mutation) as a **borrow** — repeated queries
    /// between updates pay neither the snapshot nor a clone of it;
    /// other plans reuse the warm cache the same way and otherwise take
    /// an owned counts-only snapshot — pure counter reads, never the
    /// distinct-patch hash pass.
    pub fn query_catalog(
        &mut self,
        with_distinct_stats: bool,
    ) -> std::borrow::Cow<'_, IndexCatalog> {
        if with_distinct_stats || self.catalog_cache.is_some() {
            std::borrow::Cow::Borrowed(self.cached_catalog())
        } else {
            std::borrow::Cow::Owned(IndexCatalog::counts_only(&self.table, &self.indexes))
        }
    }

    fn invalidate_catalog(&mut self) {
        self.catalog_cache = None;
    }

    /// Update statements applied so far (insert/modify/delete calls) —
    /// the advisor's piggyback cadence counts these.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// The per-(column, shape) query counters the engine recorded.
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// Records one planned query over table column `col` (the
    /// `QueryEngine` facade calls this while planning).
    pub fn record_query(&mut self, col: usize, shape: QueryShape) {
        self.query_log.record(col, shape);
    }

    /// Records optimizer feedback for the index in `slot`: it was bound
    /// by a chosen plan estimated to save `est_cost_saved` planner cost
    /// units over the unrewritten plan. The cached catalog is patched in
    /// place — feedback does not change any planning-relevant statistic.
    pub fn record_query_feedback(&mut self, slot: usize, est_cost_saved: f64) {
        Arc::make_mut(&mut self.indexes[slot]).record_query_feedback(est_cost_saved);
        if let Some(cache) = &mut self.catalog_cache {
            cache.indexes[slot].feedback = self.indexes[slot].query_feedback();
        }
    }

    /// Records the measured execution of one query for the index in
    /// `slot` (wall-clock micros + the chosen plan's estimated cost; see
    /// [`PatchIndex::record_query_timing`]). Patches the cached catalog
    /// in place like [`IndexedTable::record_query_feedback`].
    pub fn record_query_timing(&mut self, slot: usize, actual_micros: f64, est_cost: f64) {
        Arc::make_mut(&mut self.indexes[slot]).record_query_timing(actual_micros, est_cost);
        if let Some(cache) = &mut self.catalog_cache {
            cache.indexes[slot].feedback = self.indexes[slot].query_feedback();
        }
    }

    /// Starts reservoir-sampling every Int column at `cap` values per
    /// column, seeding each reservoir with a strided pass over the
    /// current data (O(cap) per column, not a scan). From here on every
    /// insert/modify feeds the affected columns' reservoirs, giving the
    /// advisor a standing estimate of each column's constraint match
    /// fractions via [`IndexedTable::sampled_match`].
    pub fn enable_discovery_sampling(&mut self, cap: usize) {
        let ncols = self.table.schema().len();
        let int_cols: Vec<usize> = (0..ncols)
            .filter(|&c| self.table.schema().fields()[c].dtype == DataType::Int)
            .collect();
        self.samplers = (0..ncols).map(|_| None).collect();
        for col in int_cols {
            let mut r = Reservoir::new(cap, 0x5EED ^ ((col as u64) << 8));
            // Strided seeding: up to `cap` values spread evenly over the
            // visible rows, in row order per partition (the reservoir
            // scores partition-locally; NSC needs the order).
            let total = self.table.visible_len();
            if total > 0 {
                let stride = (total / cap).max(1);
                for pid in 0..self.table.partition_count() {
                    let p = self.table.partition(pid);
                    let rids: Vec<usize> = (0..p.visible_len()).step_by(stride).collect();
                    if rids.is_empty() {
                        continue;
                    }
                    for v in crate::maintenance::gather_values(p, col, &rids) {
                        r.offer(pid, v);
                    }
                }
            }
            self.samplers[col] = Some(r);
        }
    }

    /// Whether discovery sampling is on.
    pub fn sampling_enabled(&self) -> bool {
        !self.samplers.is_empty()
    }

    /// Sampled constraint-match fraction of `col`, or `None` when the
    /// column is unsampled (sampling disabled, or not an Int column).
    pub fn sampled_match(&self, col: usize, constraint: Constraint) -> Option<f64> {
        self.samplers
            .get(col)?
            .as_ref()
            .map(|r| r.match_fraction(constraint))
    }

    /// Values the sampler of `col` has seen, if sampled.
    pub fn sampled_seen(&self, col: usize) -> Option<u64> {
        self.samplers.get(col)?.as_ref().map(Reservoir::seen)
    }

    /// Feeds inserted rows to the column reservoirs, tagged with the
    /// partition each row landed in (runs right after `insert_rows`).
    fn sample_rows(&mut self, rows: &[Vec<Value>], addrs: &[RowAddr]) {
        if self.samplers.is_empty() {
            return;
        }
        for (row, addr) in rows.iter().zip(addrs) {
            for (col, v) in row.iter().enumerate() {
                if let (Some(Some(r)), Value::Int(v)) = (self.samplers.get_mut(col), v) {
                    r.offer(addr.partition, *v);
                }
            }
        }
    }

    fn sample_column(&mut self, pid: usize, col: usize, values: &[Value]) {
        let Some(Some(r)) = self.samplers.get_mut(col) else {
            return;
        };
        for v in values {
            if let Value::Int(v) = v {
                r.offer(pid, *v);
            }
        }
    }

    /// Inserts rows, maintaining every index (paper, Section 5.1) — or
    /// staging the work when the policy defers maintenance.
    pub fn insert(&mut self, rows: &[Vec<Value>]) -> Vec<RowAddr> {
        self.invalidate_catalog();
        self.statements += 1;
        let addrs = self.table.insert_rows(rows);
        self.sample_rows(rows, &addrs);
        // An empty insert maintains nothing — in particular it must not
        // `make_mut` shared index versions, or a zero-change statement
        // would defeat the writer's no-op publish detection.
        if !addrs.is_empty() {
            match self.policy.mode {
                MaintenanceMode::Eager => {
                    for idx in &mut self.indexes {
                        Arc::make_mut(idx).handle_insert_with(
                            &mut self.table,
                            &addrs,
                            self.policy.probe,
                        );
                    }
                }
                MaintenanceMode::Deferred { .. } => {
                    for idx in &mut self.indexes {
                        Arc::make_mut(idx).stage_insert(&self.table, &addrs);
                    }
                    self.maybe_auto_flush();
                }
            }
        }
        self.run_policy();
        addrs
    }

    /// Deletes visible rows of one partition, maintaining every index
    /// (paper, Section 5.3). Deletes shift rowIDs, so any deferred work is
    /// flushed first.
    pub fn delete(&mut self, pid: usize, rids: &[usize]) {
        self.invalidate_catalog();
        self.statements += 1;
        self.flush_maintenance();
        // Index stores interpret the same pre-delete rowIDs the table does.
        for idx in &mut self.indexes {
            Arc::make_mut(idx).handle_delete(pid, rids);
        }
        self.table.delete(pid, rids);
        self.run_policy();
    }

    /// Patches `col` of the given rows, maintaining the indexes on that
    /// column (paper, Section 5.2) — or staging the work when the policy
    /// defers maintenance. Indexes on other columns are unaffected.
    pub fn modify(&mut self, pid: usize, rids: &[usize], col: usize, values: &[Value]) {
        self.invalidate_catalog();
        self.statements += 1;
        self.sample_column(pid, col, values);
        match self.policy.mode {
            MaintenanceMode::Eager => {
                self.table.modify(pid, rids, col, values);
                for idx in &mut self.indexes {
                    if idx.column() == col {
                        Arc::make_mut(idx).handle_modify_with(
                            &mut self.table,
                            pid,
                            rids,
                            self.policy.probe,
                        );
                    }
                }
            }
            MaintenanceMode::Deferred { .. } => {
                // Old values must be snapshotted before the table changes.
                for idx in &mut self.indexes {
                    if idx.column() == col {
                        Arc::make_mut(idx).stage_modify_pre(&self.table, pid, rids);
                    }
                }
                self.table.modify(pid, rids, col, values);
                for idx in &mut self.indexes {
                    if idx.column() == col {
                        Arc::make_mut(idx).stage_modify(&self.table, pid, rids);
                    }
                }
                self.maybe_auto_flush();
            }
        }
        self.run_policy();
    }

    /// Runs all deferred maintenance now: one merged collision join (NUC)
    /// / one LIS extension (NSC) per index with staged work. No-op in
    /// eager mode or when nothing is pending.
    pub fn flush_maintenance(&mut self) {
        if self.indexes.iter().any(|idx| idx.has_pending()) {
            self.invalidate_catalog();
        }
        for idx in &mut self.indexes {
            if idx.has_pending() {
                Arc::make_mut(idx).flush(&mut self.table);
            }
        }
    }

    /// Flushes deferred maintenance of one index only (the query facade
    /// uses this to restore exactness for exactly the indexes a chosen
    /// plan depends on, leaving other dirty sets batched).
    pub fn flush_index(&mut self, slot: usize) {
        if self.indexes[slot].has_pending() {
            self.invalidate_catalog();
            Arc::make_mut(&mut self.indexes[slot]).flush(&mut self.table);
        }
    }

    /// Total staged row-events across all indexes.
    pub fn pending_rows(&self) -> usize {
        self.indexes.iter().map(|idx| idx.pending_rows()).sum()
    }

    fn maybe_auto_flush(&mut self) {
        if let MaintenanceMode::Deferred { flush_rows } = self.policy.mode {
            for idx in &mut self.indexes {
                if idx.pending_rows() >= flush_rows {
                    Arc::make_mut(idx).flush(&mut self.table);
                }
            }
        }
    }

    /// Merges pending deltas into base storage (visible rowIDs do not
    /// change, so indexes — and any staged maintenance — stay valid).
    pub fn propagate(&mut self) {
        self.table.propagate_all();
    }

    /// Applies the maintenance policy once (recompute / condense).
    /// Deferred work is flushed first so exception rates are exact.
    pub fn run_policy_now(&mut self) -> (usize, usize) {
        self.invalidate_catalog();
        self.flush_maintenance();
        let mut recomputed = 0;
        let mut condensed = 0;
        for idx in &mut self.indexes {
            // `&self` predicate first: copying a snapshot-shared index
            // just to discover there is nothing to do would defeat the
            // copy-on-write economics.
            if !idx.policy_action_due(
                self.policy.max_exception_rate,
                self.policy.condense_threshold,
            ) {
                continue;
            }
            let idx = Arc::make_mut(idx);
            if idx.maybe_recompute(&self.table, self.policy.max_exception_rate) {
                recomputed += 1;
            }
            condensed += idx.maybe_condense(self.policy.condense_threshold);
        }
        (recomputed, condensed)
    }

    /// The automatic policy pass after each statement. Indexes with
    /// staged deferred work are skipped — their exception rates are
    /// conservative estimates, and force-flushing here would degenerate
    /// deferred mode into per-statement maintenance; they get evaluated
    /// right after their next flush instead (the auto-flush threshold,
    /// a delete, or an explicit flush all funnel back through here).
    fn run_policy(&mut self) {
        if !self.policy.auto {
            return;
        }
        let policy = self.policy;
        for idx in &mut self.indexes {
            if idx.has_pending()
                || !idx.policy_action_due(policy.max_exception_rate, policy.condense_threshold)
            {
                continue;
            }
            let idx = Arc::make_mut(idx);
            idx.maybe_recompute(&self.table, policy.max_exception_rate);
            idx.maybe_condense(policy.condense_threshold);
        }
    }

    /// Verifies every index against the table (test helper). May
    /// legitimately panic while deferred maintenance is pending — flush
    /// first; see [`crate::deferred`].
    pub fn check_consistency(&self) {
        for idx in &self.indexes {
            idx.check_consistency(&self.table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::SortDir;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn fresh() -> IndexedTable {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(
            0,
            &[
                ColumnData::Int(vec![0, 1, 2]),
                ColumnData::Int(vec![10, 20, 30]),
            ],
        );
        t.load_partition(
            1,
            &[ColumnData::Int(vec![3, 4]), ColumnData::Int(vec![40, 50])],
        );
        t.propagate_all();
        IndexedTable::new(t)
    }

    fn deferred(flush_rows: usize) -> MaintenancePolicy {
        MaintenancePolicy {
            mode: MaintenanceMode::Deferred { flush_rows },
            ..MaintenancePolicy::default()
        }
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn lifecycle_with_two_indexes() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(
            1,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
        );
        it.insert(&[row(100, 20), row(101, 60)]);
        it.check_consistency();
        // Both indexes grew with the table.
        assert_eq!(it.index(0).nrows(), 7);
        assert_eq!(it.index(1).nrows(), 7);
        // NUC found the duplicate 20.
        assert_eq!(it.index(0).exception_count(), 2);
    }

    #[test]
    fn delete_keeps_indexes_aligned() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.delete(0, &[1]);
        it.check_consistency();
        assert_eq!(it.index(0).nrows(), 4);
    }

    #[test]
    fn modify_only_touches_matching_indexes() {
        let mut it = fresh();
        let on_v = it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let on_k = it.add_index(0, Constraint::NearlyUnique, Design::Bitmap);
        it.modify(0, &[0], 1, &[Value::Int(15)]);
        it.check_consistency();
        assert_eq!(it.index(on_v).exception_count(), 1);
        assert_eq!(it.index(on_k).exception_count(), 0);
    }

    #[test]
    fn auto_policy_recomputes() {
        let mut it = fresh().with_policy(MaintenancePolicy {
            max_exception_rate: 0.3,
            condense_threshold: 0.5,
            auto: true,
            ..MaintenancePolicy::default()
        });
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        // Modifying most rows pushes e over the threshold; the auto policy
        // recomputes and the fresh discovery shrinks the patch set again.
        it.modify(0, &[0, 1], 1, &[Value::Int(11), Value::Int(21)]);
        it.check_consistency();
        assert!(it.index(0).exception_rate() <= 0.3);
    }

    #[test]
    fn propagate_preserves_consistency() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Identifier);
        it.insert(&[row(7, 10), row(8, 99)]);
        it.delete(1, &[0]);
        it.propagate();
        it.check_consistency();
    }

    #[test]
    fn deferred_insert_stages_then_flushes_to_eager_result() {
        let mut it = fresh().with_policy(deferred(usize::MAX));
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 20), row(101, 60)]);
        // Pending: both inserted rows staged (conservatively patched);
        // the duplicate's partner (value 20, partition 0 rid 1) not yet.
        assert_eq!(it.pending_rows(), 2);
        assert!(it.index(0).has_pending());
        assert_eq!(it.index(0).nrows(), 7);
        it.flush_maintenance();
        assert_eq!(it.pending_rows(), 0);
        it.check_consistency();
        // Identical to the eager result: rows with value 20 patched.
        assert_eq!(it.index(0).exception_count(), 2);
    }

    #[test]
    fn deferred_auto_flush_threshold() {
        let mut it = fresh().with_policy(deferred(3));
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 77)]);
        it.insert(&[row(101, 78)]);
        assert_eq!(it.pending_rows(), 2);
        // Third staged row reaches the threshold: flush runs.
        it.insert(&[row(102, 79)]);
        assert_eq!(it.pending_rows(), 0);
        assert_eq!(it.index(0).exception_count(), 0);
        it.check_consistency();
    }

    #[test]
    fn deferred_delete_forces_flush_first() {
        let mut it = fresh().with_policy(deferred(usize::MAX));
        it.add_index(1, Constraint::NearlyUnique, Design::Identifier);
        it.insert(&[row(100, 20)]); // duplicate of rid 1 in partition 0
        assert!(it.index(0).has_pending());
        // Deleting the old duplicate: the flush must run first so the
        // collision is found against pre-delete rowIDs.
        it.delete(0, &[1]);
        assert_eq!(it.pending_rows(), 0);
        it.check_consistency();
        // The inserted 20 stays a (now stale) patch, like in eager mode.
        assert_eq!(it.index(0).exception_count(), 1);
    }

    #[test]
    fn deferred_modify_snapshots_old_values() {
        let mut it = fresh().with_policy(deferred(usize::MAX));
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        // 30 -> 40 collides with partition 1's 40 (its rid 0); then
        // 40 -> 99 moves away again. Eager would patch both rows at the
        // first modify and keep them patched; the flush must reproduce
        // that from the value history.
        it.modify(0, &[2], 1, &[Value::Int(40)]);
        it.modify(0, &[2], 1, &[Value::Int(99)]);
        it.flush_maintenance();
        it.check_consistency();
        assert_eq!(it.index(0).partition(0).store.patch_rids(), vec![2]);
        assert_eq!(it.index(0).partition(1).store.patch_rids(), vec![0]);
    }

    #[test]
    fn auto_policy_does_not_flush_staged_indexes() {
        let mut it = fresh().with_policy(MaintenancePolicy {
            auto: true,
            ..deferred(5)
        });
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 77)]);
        it.insert(&[row(101, 78)]);
        // The per-statement auto pass must leave staged work alone — only
        // the flush_rows threshold (5) decides when to flush.
        assert_eq!(it.pending_rows(), 2);
        it.insert(&[row(102, 79), row(103, 80), row(104, 81)]);
        assert_eq!(it.pending_rows(), 0);
        it.check_consistency();
    }

    #[test]
    fn drift_counters_track_maintained_rows_and_added_patches() {
        let mut it = fresh();
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(it.index(slot).baseline().match_fraction, 1.0);
        assert_eq!(it.index(slot).drift_rate(), 0.0);
        // Insert a duplicate (2 new patches) and a fresh value.
        it.insert(&[row(100, 20), row(101, 60)]);
        let idx = it.index(slot);
        assert_eq!(idx.maintained_since_recompute(), 2);
        assert_eq!(idx.drift_patches(), 2);
        assert!((idx.drift_rate() - 1.0).abs() < 1e-12);
        assert!(idx.match_fraction() < 1.0);
        // Recompute re-anchors the baseline; cumulative stats survive.
        it.recompute_index(slot);
        let idx = it.index(slot);
        assert_eq!(idx.maintained_since_recompute(), 0);
        assert_eq!(idx.drift_patches(), 0);
        assert_eq!(idx.maintenance_stats().maintained_rows, 2);
        assert_eq!(idx.baseline().match_fraction, idx.match_fraction());
    }

    #[test]
    fn drop_index_removes_the_slot() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(0, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let dropped = it.drop_index(0);
        assert_eq!(dropped.constraint(), Constraint::NearlyUnique);
        assert_eq!(it.indexes().len(), 1);
        assert_eq!(
            it.index(0).constraint(),
            Constraint::NearlySorted(SortDir::Asc)
        );
        it.check_consistency();
    }

    #[test]
    fn catalog_cache_rebuilds_once_per_mutation_epoch() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(it.catalog_rebuilds(), 0);
        it.cached_catalog();
        it.cached_catalog();
        it.cached_catalog();
        assert_eq!(it.catalog_rebuilds(), 1);
        it.insert(&[row(100, 77)]);
        assert_eq!(it.cached_catalog().indexes[0].rows(), 6);
        it.cached_catalog();
        assert_eq!(it.catalog_rebuilds(), 2);
        // The cached snapshot always equals a fresh one.
        let fresh_cat = it.catalog();
        let cached = it.cached_catalog();
        assert_eq!(cached.part_rows, fresh_cat.part_rows);
        assert_eq!(cached.indexes[0].parts, fresh_cat.indexes[0].parts);
    }

    #[test]
    fn query_feedback_patches_the_cache_without_invalidating() {
        let mut it = fresh();
        let slot = it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.cached_catalog();
        it.record_query_feedback(slot, 123.0);
        assert_eq!(it.catalog_rebuilds(), 1);
        let cached = it.cached_catalog();
        assert_eq!(cached.indexes[slot].feedback.times_bound, 1);
        assert!((cached.indexes[slot].feedback.est_cost_saved - 123.0).abs() < 1e-9);
        assert_eq!(
            it.catalog_rebuilds(),
            1,
            "feedback must not force a re-snapshot"
        );
    }

    #[test]
    fn query_log_counts_per_column_and_shape() {
        let mut it = fresh();
        it.record_query(1, QueryShape::Distinct);
        it.record_query(1, QueryShape::Distinct);
        it.record_query(0, QueryShape::Sort(SortDir::Asc));
        assert_eq!(it.query_log().count(1, QueryShape::Distinct), 2);
        assert_eq!(it.query_log().count(0, QueryShape::Sort(SortDir::Asc)), 1);
        assert_eq!(it.query_log().count(0, QueryShape::Distinct), 0);
        assert_eq!(it.query_log().total(), 3);
    }

    #[test]
    fn discovery_sampling_estimates_column_match_fractions() {
        let mut it = fresh();
        it.enable_discovery_sampling(64);
        assert!(it.sampling_enabled());
        // Column 0 (k) is unique and sorted; column 1 (v) unique too.
        assert_eq!(it.sampled_match(0, Constraint::NearlyUnique), Some(1.0));
        assert_eq!(
            it.sampled_match(0, Constraint::NearlySorted(SortDir::Asc)),
            Some(1.0)
        );
        // Feed duplicates through inserts: the estimate reacts.
        let rows: Vec<Vec<Value>> = (0..30).map(|i| row(200 + i, 7777)).collect();
        it.insert(&rows);
        let est = it.sampled_match(1, Constraint::NearlyUnique).unwrap();
        assert!(
            est < 1.0,
            "duplicates must lower the NUC estimate, got {est}"
        );
        assert!(it.sampled_seen(1).unwrap() >= 30);
    }

    /// Regression: RoundRobin routing interleaves a globally sorted
    /// insert stream across partitions; since every constraint is
    /// partition-local, the sampled NSC estimate must still be 1.0 (a
    /// pooled sample would report ~0.5 and starve the advisor).
    #[test]
    fn sampling_scores_partition_locally_under_round_robin() {
        let mut t = Table::new(
            "rr",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("ts", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![]), ColumnData::Int(vec![])]);
        t.load_partition(1, &[ColumnData::Int(vec![]), ColumnData::Int(vec![])]);
        t.propagate_all();
        let mut it = IndexedTable::new(t);
        it.enable_discovery_sampling(128);
        let rows: Vec<Vec<Value>> = (0..500).map(|i| row(i, 2 * i)).collect();
        it.insert(&rows); // round-robin: p0 and p1 each sorted, interleaved
        assert!(it.table().partition(0).visible_len() > 0);
        assert!(it.table().partition(1).visible_len() > 0);
        let est = it
            .sampled_match(1, Constraint::NearlySorted(SortDir::Asc))
            .unwrap();
        assert!(
            (est - 1.0).abs() < 1e-12,
            "per-partition sorted must score 1.0, got {est}"
        );
    }

    #[test]
    fn deferred_run_policy_flushes_first() {
        let mut it = fresh().with_policy(MaintenancePolicy {
            max_exception_rate: 0.99,
            ..deferred(usize::MAX)
        });
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 555)]);
        assert!(it.index(0).has_pending());
        it.run_policy_now();
        assert!(!it.index(0).has_pending());
        // The unique insert was released from its conservative patch bit.
        assert_eq!(it.index(0).exception_count(), 0);
        it.check_consistency();
    }
}
