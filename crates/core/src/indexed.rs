//! A table bundled with its PatchIndexes.
//!
//! [`IndexedTable`] routes every update through the index maintenance of
//! Section 5. In the default **eager** mode every statement is maintained
//! immediately ("we avoid getting inconsistent states by handling updates
//! immediately after they occur"). **Deferred** mode
//! ([`MaintenanceMode::Deferred`]) instead stages inserts/modifies into a
//! per-index dirty set and amortizes maintenance over one merged collision
//! join / LIS extension per flush — see [`crate::deferred`] for semantics
//! and the query-correctness contract. Multiple PatchIndexes per table are
//! supported — unlike a SortKey, PatchIndexes do not change the physical
//! data order (paper, Section 2).

use pi_storage::{RowAddr, Table, Value};

use crate::catalog::IndexCatalog;
use crate::constraint::{Constraint, Design};
use crate::index::PatchIndex;
use crate::maintenance::ProbeStrategy;

/// When index maintenance runs relative to the update statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Maintain every index synchronously with each statement (the
    /// paper's behavior; indexes are always fully consistent).
    #[default]
    Eager,
    /// Stage inserts/modifies per index and flush once the number of
    /// staged row-events reaches `flush_rows` (or on
    /// [`IndexedTable::flush_maintenance`], or before any delete /
    /// policy run). Staged rows are routed through the exception flow;
    /// see [`crate::deferred`] for which plans that keeps exact and when
    /// to flush first.
    Deferred {
        /// Auto-flush threshold in staged row-events per index.
        flush_rows: usize,
    },
}

/// Maintenance tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MaintenancePolicy {
    /// Recompute an index once its exception rate exceeds this.
    pub max_exception_rate: f64,
    /// Condense bitmaps whose utilization fell below this.
    pub condense_threshold: f64,
    /// Whether the policy runs automatically after each update batch.
    pub auto: bool,
    /// Eager (per-statement) or deferred (batch-amortized) maintenance.
    pub mode: MaintenanceMode,
    /// How eager NUC collision joins execute (the deferred flush always
    /// uses the shared parallel pipeline).
    pub probe: ProbeStrategy,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            max_exception_rate: 0.5,
            condense_threshold: 0.5,
            auto: false,
            mode: MaintenanceMode::Eager,
            probe: ProbeStrategy::default(),
        }
    }
}

/// A table whose PatchIndexes are maintained through every update.
pub struct IndexedTable {
    table: Table,
    indexes: Vec<PatchIndex>,
    policy: MaintenancePolicy,
}

impl IndexedTable {
    /// Wraps a table (no indexes yet).
    pub fn new(table: Table) -> Self {
        IndexedTable { table, indexes: Vec::new(), policy: MaintenancePolicy::default() }
    }

    /// Sets the maintenance policy.
    pub fn with_policy(mut self, policy: MaintenancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Creates a PatchIndex on `col` and returns its slot.
    pub fn add_index(&mut self, col: usize, constraint: Constraint, design: Design) -> usize {
        self.indexes.push(PatchIndex::create(&self.table, col, constraint, design));
        self.indexes.len() - 1
    }

    /// Read access to the table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The indexes.
    pub fn indexes(&self) -> &[PatchIndex] {
        &self.indexes
    }

    /// Index by slot.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, slot: usize) -> &PatchIndex {
        &self.indexes[slot]
    }

    /// The active maintenance policy.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Snapshot of every index plus the per-partition table shape — what
    /// the planner optimizes against (see `pi-planner`'s `QueryEngine`).
    pub fn catalog(&self) -> IndexCatalog {
        IndexCatalog::of(&self.table, &self.indexes)
    }

    /// Inserts rows, maintaining every index (paper, Section 5.1) — or
    /// staging the work when the policy defers maintenance.
    pub fn insert(&mut self, rows: &[Vec<Value>]) -> Vec<RowAddr> {
        let addrs = self.table.insert_rows(rows);
        match self.policy.mode {
            MaintenanceMode::Eager => {
                for idx in &mut self.indexes {
                    idx.handle_insert_with(&mut self.table, &addrs, self.policy.probe);
                }
            }
            MaintenanceMode::Deferred { .. } => {
                for idx in &mut self.indexes {
                    idx.stage_insert(&self.table, &addrs);
                }
                self.maybe_auto_flush();
            }
        }
        self.run_policy();
        addrs
    }

    /// Deletes visible rows of one partition, maintaining every index
    /// (paper, Section 5.3). Deletes shift rowIDs, so any deferred work is
    /// flushed first.
    pub fn delete(&mut self, pid: usize, rids: &[usize]) {
        self.flush_maintenance();
        // Index stores interpret the same pre-delete rowIDs the table does.
        for idx in &mut self.indexes {
            idx.handle_delete(pid, rids);
        }
        self.table.delete(pid, rids);
        self.run_policy();
    }

    /// Patches `col` of the given rows, maintaining the indexes on that
    /// column (paper, Section 5.2) — or staging the work when the policy
    /// defers maintenance. Indexes on other columns are unaffected.
    pub fn modify(&mut self, pid: usize, rids: &[usize], col: usize, values: &[Value]) {
        match self.policy.mode {
            MaintenanceMode::Eager => {
                self.table.modify(pid, rids, col, values);
                for idx in &mut self.indexes {
                    if idx.column() == col {
                        idx.handle_modify_with(&mut self.table, pid, rids, self.policy.probe);
                    }
                }
            }
            MaintenanceMode::Deferred { .. } => {
                // Old values must be snapshotted before the table changes.
                for idx in &mut self.indexes {
                    if idx.column() == col {
                        idx.stage_modify_pre(&self.table, pid, rids);
                    }
                }
                self.table.modify(pid, rids, col, values);
                for idx in &mut self.indexes {
                    if idx.column() == col {
                        idx.stage_modify(&self.table, pid, rids);
                    }
                }
                self.maybe_auto_flush();
            }
        }
        self.run_policy();
    }

    /// Runs all deferred maintenance now: one merged collision join (NUC)
    /// / one LIS extension (NSC) per index with staged work. No-op in
    /// eager mode or when nothing is pending.
    pub fn flush_maintenance(&mut self) {
        for idx in &mut self.indexes {
            idx.flush(&mut self.table);
        }
    }

    /// Flushes deferred maintenance of one index only (the query facade
    /// uses this to restore exactness for exactly the indexes a chosen
    /// plan depends on, leaving other dirty sets batched).
    pub fn flush_index(&mut self, slot: usize) {
        self.indexes[slot].flush(&mut self.table);
    }

    /// Total staged row-events across all indexes.
    pub fn pending_rows(&self) -> usize {
        self.indexes.iter().map(|idx| idx.pending_rows()).sum()
    }

    fn maybe_auto_flush(&mut self) {
        if let MaintenanceMode::Deferred { flush_rows } = self.policy.mode {
            for idx in &mut self.indexes {
                if idx.pending_rows() >= flush_rows {
                    idx.flush(&mut self.table);
                }
            }
        }
    }

    /// Merges pending deltas into base storage (visible rowIDs do not
    /// change, so indexes — and any staged maintenance — stay valid).
    pub fn propagate(&mut self) {
        self.table.propagate_all();
    }

    /// Applies the maintenance policy once (recompute / condense).
    /// Deferred work is flushed first so exception rates are exact.
    pub fn run_policy_now(&mut self) -> (usize, usize) {
        self.flush_maintenance();
        let mut recomputed = 0;
        let mut condensed = 0;
        for idx in &mut self.indexes {
            if idx.maybe_recompute(&self.table, self.policy.max_exception_rate) {
                recomputed += 1;
            }
            condensed += idx.maybe_condense(self.policy.condense_threshold);
        }
        (recomputed, condensed)
    }

    /// The automatic policy pass after each statement. Indexes with
    /// staged deferred work are skipped — their exception rates are
    /// conservative estimates, and force-flushing here would degenerate
    /// deferred mode into per-statement maintenance; they get evaluated
    /// right after their next flush instead (the auto-flush threshold,
    /// a delete, or an explicit flush all funnel back through here).
    fn run_policy(&mut self) {
        if !self.policy.auto {
            return;
        }
        let policy = self.policy;
        for idx in &mut self.indexes {
            if idx.has_pending() {
                continue;
            }
            idx.maybe_recompute(&self.table, policy.max_exception_rate);
            idx.maybe_condense(policy.condense_threshold);
        }
    }

    /// Verifies every index against the table (test helper). May
    /// legitimately panic while deferred maintenance is pending — flush
    /// first; see [`crate::deferred`].
    pub fn check_consistency(&self) {
        for idx in &self.indexes {
            idx.check_consistency(&self.table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::SortDir;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn fresh() -> IndexedTable {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![0, 1, 2]), ColumnData::Int(vec![10, 20, 30])]);
        t.load_partition(1, &[ColumnData::Int(vec![3, 4]), ColumnData::Int(vec![40, 50])]);
        t.propagate_all();
        IndexedTable::new(t)
    }

    fn deferred(flush_rows: usize) -> MaintenancePolicy {
        MaintenancePolicy {
            mode: MaintenanceMode::Deferred { flush_rows },
            ..MaintenancePolicy::default()
        }
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn lifecycle_with_two_indexes() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Identifier);
        it.insert(&[row(100, 20), row(101, 60)]);
        it.check_consistency();
        // Both indexes grew with the table.
        assert_eq!(it.index(0).nrows(), 7);
        assert_eq!(it.index(1).nrows(), 7);
        // NUC found the duplicate 20.
        assert_eq!(it.index(0).exception_count(), 2);
    }

    #[test]
    fn delete_keeps_indexes_aligned() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.delete(0, &[1]);
        it.check_consistency();
        assert_eq!(it.index(0).nrows(), 4);
    }

    #[test]
    fn modify_only_touches_matching_indexes() {
        let mut it = fresh();
        let on_v = it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        let on_k = it.add_index(0, Constraint::NearlyUnique, Design::Bitmap);
        it.modify(0, &[0], 1, &[Value::Int(15)]);
        it.check_consistency();
        assert_eq!(it.index(on_v).exception_count(), 1);
        assert_eq!(it.index(on_k).exception_count(), 0);
    }

    #[test]
    fn auto_policy_recomputes() {
        let mut it = fresh().with_policy(MaintenancePolicy {
            max_exception_rate: 0.3,
            condense_threshold: 0.5,
            auto: true,
            ..MaintenancePolicy::default()
        });
        it.add_index(1, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        // Modifying most rows pushes e over the threshold; the auto policy
        // recomputes and the fresh discovery shrinks the patch set again.
        it.modify(0, &[0, 1], 1, &[Value::Int(11), Value::Int(21)]);
        it.check_consistency();
        assert!(it.index(0).exception_rate() <= 0.3);
    }

    #[test]
    fn propagate_preserves_consistency() {
        let mut it = fresh();
        it.add_index(1, Constraint::NearlyUnique, Design::Identifier);
        it.insert(&[row(7, 10), row(8, 99)]);
        it.delete(1, &[0]);
        it.propagate();
        it.check_consistency();
    }

    #[test]
    fn deferred_insert_stages_then_flushes_to_eager_result() {
        let mut it = fresh().with_policy(deferred(usize::MAX));
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 20), row(101, 60)]);
        // Pending: both inserted rows staged (conservatively patched);
        // the duplicate's partner (value 20, partition 0 rid 1) not yet.
        assert_eq!(it.pending_rows(), 2);
        assert!(it.index(0).has_pending());
        assert_eq!(it.index(0).nrows(), 7);
        it.flush_maintenance();
        assert_eq!(it.pending_rows(), 0);
        it.check_consistency();
        // Identical to the eager result: rows with value 20 patched.
        assert_eq!(it.index(0).exception_count(), 2);
    }

    #[test]
    fn deferred_auto_flush_threshold() {
        let mut it = fresh().with_policy(deferred(3));
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 77)]);
        it.insert(&[row(101, 78)]);
        assert_eq!(it.pending_rows(), 2);
        // Third staged row reaches the threshold: flush runs.
        it.insert(&[row(102, 79)]);
        assert_eq!(it.pending_rows(), 0);
        assert_eq!(it.index(0).exception_count(), 0);
        it.check_consistency();
    }

    #[test]
    fn deferred_delete_forces_flush_first() {
        let mut it = fresh().with_policy(deferred(usize::MAX));
        it.add_index(1, Constraint::NearlyUnique, Design::Identifier);
        it.insert(&[row(100, 20)]); // duplicate of rid 1 in partition 0
        assert!(it.index(0).has_pending());
        // Deleting the old duplicate: the flush must run first so the
        // collision is found against pre-delete rowIDs.
        it.delete(0, &[1]);
        assert_eq!(it.pending_rows(), 0);
        it.check_consistency();
        // The inserted 20 stays a (now stale) patch, like in eager mode.
        assert_eq!(it.index(0).exception_count(), 1);
    }

    #[test]
    fn deferred_modify_snapshots_old_values() {
        let mut it = fresh().with_policy(deferred(usize::MAX));
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        // 30 -> 40 collides with partition 1's 40 (its rid 0); then
        // 40 -> 99 moves away again. Eager would patch both rows at the
        // first modify and keep them patched; the flush must reproduce
        // that from the value history.
        it.modify(0, &[2], 1, &[Value::Int(40)]);
        it.modify(0, &[2], 1, &[Value::Int(99)]);
        it.flush_maintenance();
        it.check_consistency();
        assert_eq!(it.index(0).partition(0).store.patch_rids(), vec![2]);
        assert_eq!(it.index(0).partition(1).store.patch_rids(), vec![0]);
    }

    #[test]
    fn auto_policy_does_not_flush_staged_indexes() {
        let mut it = fresh().with_policy(MaintenancePolicy {
            auto: true,
            ..deferred(5)
        });
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 77)]);
        it.insert(&[row(101, 78)]);
        // The per-statement auto pass must leave staged work alone — only
        // the flush_rows threshold (5) decides when to flush.
        assert_eq!(it.pending_rows(), 2);
        it.insert(&[row(102, 79), row(103, 80), row(104, 81)]);
        assert_eq!(it.pending_rows(), 0);
        it.check_consistency();
    }

    #[test]
    fn deferred_run_policy_flushes_first() {
        let mut it = fresh().with_policy(MaintenancePolicy {
            max_exception_rate: 0.99,
            ..deferred(usize::MAX)
        });
        it.add_index(1, Constraint::NearlyUnique, Design::Bitmap);
        it.insert(&[row(100, 555)]);
        assert!(it.index(0).has_pending());
        it.run_policy_now();
        assert!(!it.index(0).has_pending());
        // The unique insert was released from its conservative patch bit.
        assert_eq!(it.index(0).exception_count(), 0);
        it.check_consistency();
    }
}
