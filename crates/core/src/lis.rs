//! Longest non-decreasing subsequence (Fredman \[12\] — patience sorting with
//! binary search, `O(n log n)`).
//!
//! Used by NSC discovery (the minimal patch set is the complement of a
//! longest sorted subsequence) and by the insert-handling mechanism, which
//! extends the existing sorted run with a longest sorted subsequence of the
//! inserted values (paper, Section 5.1).

/// Index set (ascending) of one longest non-decreasing subsequence of
/// `values`.
pub fn longest_nondecreasing_indices(values: &[i64]) -> Vec<usize> {
    if values.is_empty() {
        return Vec::new();
    }
    // tails[k] = index of the smallest possible tail of a subsequence of
    // length k+1; parent[i] = predecessor of i in the best subsequence
    // ending at i.
    let mut tails: Vec<usize> = Vec::new();
    let mut parent: Vec<usize> = vec![usize::MAX; values.len()];
    for (i, &v) in values.iter().enumerate() {
        // Non-decreasing: find the first tail strictly greater than v.
        let pos = tails.partition_point(|&t| values[t] <= v);
        if pos > 0 {
            parent[i] = tails[pos - 1];
        }
        if pos == tails.len() {
            tails.push(i);
        } else {
            tails[pos] = i;
        }
    }
    // Reconstruct.
    let mut out = Vec::with_capacity(tails.len());
    let mut cur = *tails.last().unwrap();
    loop {
        out.push(cur);
        if parent[cur] == usize::MAX {
            break;
        }
        cur = parent[cur];
    }
    out.reverse();
    out
}

/// Length of a longest non-decreasing subsequence.
pub fn longest_nondecreasing_len(values: &[i64]) -> usize {
    let mut tails: Vec<i64> = Vec::new();
    for &v in values {
        let pos = tails.partition_point(|&t| t <= v);
        if pos == tails.len() {
            tails.push(v);
        } else {
            tails[pos] = v;
        }
    }
    tails.len()
}

/// Index complement of [`longest_nondecreasing_indices`]: the minimal patch
/// set for an ascending NSC.
pub fn nsc_patches(values: &[i64]) -> Vec<usize> {
    let lis = longest_nondecreasing_indices(values);
    let mut patches = Vec::with_capacity(values.len() - lis.len());
    let mut li = 0;
    for i in 0..values.len() {
        if li < lis.len() && lis[li] == i {
            li += 1;
        } else {
            patches.push(i);
        }
    }
    patches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_lis(values: &[i64], idx: &[usize]) {
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "indices not ascending");
        assert!(
            idx.windows(2).all(|w| values[w[0]] <= values[w[1]]),
            "subsequence not sorted"
        );
    }

    #[test]
    fn sorted_input_keeps_everything() {
        let v: Vec<i64> = (0..100).collect();
        assert_eq!(longest_nondecreasing_indices(&v).len(), 100);
        assert!(nsc_patches(&v).is_empty());
    }

    #[test]
    fn reverse_sorted_keeps_one() {
        let v: Vec<i64> = (0..50).rev().collect();
        assert_eq!(longest_nondecreasing_len(&v), 1);
        assert_eq!(nsc_patches(&v).len(), 49);
    }

    #[test]
    fn duplicates_allowed_in_nondecreasing_run() {
        let v = vec![1i64, 3, 3, 3, 2, 4];
        let lis = longest_nondecreasing_indices(&v);
        assert_valid_lis(&v, &lis);
        assert_eq!(lis.len(), 5); // 1,3,3,3,4
        assert_eq!(nsc_patches(&v), vec![4]);
    }

    #[test]
    fn classic_example() {
        let v = vec![2i64, 8, 9, 5, 6, 7, 1];
        let lis = longest_nondecreasing_indices(&v);
        assert_valid_lis(&v, &lis);
        assert_eq!(lis.len(), 4); // 2,5,6,7
        assert_eq!(lis, vec![0, 3, 4, 5]);
    }

    #[test]
    fn paper_insert_example() {
        // Table (1, 2, 10) + inserts (3, 4): combining per-part optima may
        // miss the global optimum — the global LIS here is length 4.
        let v = vec![1i64, 2, 10, 3, 4];
        assert_eq!(longest_nondecreasing_len(&v), 4);
    }

    #[test]
    fn len_matches_indices_on_random_input() {
        // Deterministic pseudo-random input.
        let v: Vec<i64> = (0..500u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as i64)
            .collect();
        let lis = longest_nondecreasing_indices(&v);
        assert_valid_lis(&v, &lis);
        assert_eq!(lis.len(), longest_nondecreasing_len(&v));
        // Complement accounting.
        assert_eq!(nsc_patches(&v).len() + lis.len(), v.len());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(longest_nondecreasing_indices(&[]).is_empty());
        assert_eq!(longest_nondecreasing_indices(&[7]), vec![0]);
        assert_eq!(longest_nondecreasing_len(&[]), 0);
    }
}
