//! PatchIndex scan construction (paper, Section 3.3).
//!
//! A PatchIndex scan is a partition scan with rowIDs plus a
//! [`PatchSelectOp`] merging the patch information on the fly. Query plans
//! clone a subtree into an `exclude_patches` flow (where the constraint
//! holds and cheaper operators can be used) and a `use_patches` flow over
//! the exceptions, then recombine them with Union or Merge.

use pi_exec::ops::patch_select::{PatchMode, PatchSelectOp};
use pi_exec::ops::scan::ScanOp;
use pi_exec::OpRef;
use pi_storage::Partition;

use crate::index::PatchIndex;

/// Builds a PatchIndex scan over one partition: scans `cols` plus the
/// rowID column (at index `cols.len()`), filtered by patch membership.
pub fn patch_scan<'a>(
    partition: &'a Partition,
    index: &'a PatchIndex,
    cols: Vec<usize>,
    mode: PatchMode,
) -> OpRef<'a> {
    let rid_col = cols.len();
    let scan = ScanOp::new(partition, cols, true);
    Box::new(PatchSelectOp::new(
        Box::new(scan),
        index.lookup(partition.id),
        rid_col,
        mode,
    ))
}

/// Both flows of the PatchIndex scan split for one partition:
/// `(exclude_patches, use_patches)`.
pub fn patch_scan_split<'a>(
    partition: &'a Partition,
    index: &'a PatchIndex,
    cols: Vec<usize>,
) -> (OpRef<'a>, OpRef<'a>) {
    (
        patch_scan(partition, index, cols.clone(), PatchMode::ExcludePatches),
        patch_scan(partition, index, cols, PatchMode::UsePatches),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Constraint, Design, SortDir};
    use pi_exec::collect;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table};

    fn table(vals: Vec<i64>) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            1,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vals)]);
        t.propagate_all();
        t
    }

    #[test]
    fn split_flows_partition_the_rows() {
        let t = table(vec![1, 2, 99, 3, 4]);
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        let (mut ex, mut us) = patch_scan_split(t.partition(0), &idx, vec![0]);
        let kept = collect(ex.as_mut());
        let patches = collect(us.as_mut());
        assert_eq!(kept.column(0).as_int(), &[1, 2, 3, 4]);
        assert_eq!(patches.column(0).as_int(), &[99]);
        // RowID column travels at index 1.
        assert_eq!(patches.column(1).as_int(), &[2]);
    }

    #[test]
    fn exclude_flow_is_unique_for_nuc() {
        let t = table(vec![7, 1, 7, 2, 1]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Identifier);
        let (mut ex, _) = patch_scan_split(t.partition(0), &idx, vec![0]);
        let kept = collect(ex.as_mut());
        assert_eq!(kept.column(0).as_int(), &[2]);
    }
}
