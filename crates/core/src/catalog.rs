//! Optimizer-facing catalog snapshots.
//!
//! The planner reasons over *all* PatchIndexes of a table at once (the
//! paper's Sections 3.3/3.5 assume the system picks the best materialized
//! constraint per query) and plans partition-locally, so the snapshot
//! carries per-partition row and patch counts rather than only global
//! totals. A snapshot is immutable and cheap: counts come straight from
//! the patch stores; the only scan is the distinct-patch-value count of
//! NUC indexes (one hash pass over the patch rows), which feeds the
//! index-informed distinct-cardinality estimate and is capped at
//! `PATCH_DISTINCT_EXACT_CAP` patches — beyond that the conventional
//! 50% estimate stands in, keeping every snapshot O(small).

use pi_storage::Table;

use crate::constraint::Constraint;
use crate::index::{PatchIndex, QueryFeedback};
use crate::maintenance::gather_values;

/// Row and patch counts of one index on one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Tuples the index covers in this partition.
    pub rows: u64,
    /// Patches (exceptions) in this partition — includes rows staged by
    /// deferred maintenance, which are conservatively patched.
    pub patches: u64,
}

/// Snapshot of one PatchIndex for the optimizer.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// Slot of the index in its catalog (the plan's `PatchScan` binding).
    pub slot: usize,
    /// Indexed column.
    pub column: usize,
    /// Materialized constraint.
    pub constraint: Constraint,
    /// Per-partition row/patch counts.
    pub parts: Vec<PartitionStats>,
    /// Distinct values among the patch rows (NUC only; 0 otherwise).
    /// NUC patches every occurrence of a duplicated value, so
    /// `distinct(table) ≈ kept rows + distinct(patches)`.
    pub patch_distinct: u64,
    /// Whether deferred maintenance is staged on this index. While
    /// pending, the NUC kept/patch value disjointness is suspended (see
    /// [`crate::deferred`]); plans that exploit it must flush first.
    pub pending: bool,
    /// Match fraction `e = 1 − patches/rows` at snapshot time.
    pub e: f64,
    /// Match fraction at create/recompute time (drift reference).
    pub baseline_e: f64,
    /// Patches accumulated beyond the create/recompute-time patch set.
    pub drift_patches: u64,
    /// Row-events maintained since the last create/recompute.
    pub maintained_rows: u64,
    /// Heap bytes of the patch stores (the advisor's budget currency).
    pub memory_bytes: usize,
    /// Whether the patch set is known globally deduplicated (see
    /// [`PatchIndex::global_unique`]). When false, the NUC distinct
    /// rewrite must wrap its union in a global distinct — the kept flows
    /// of different partitions may repeat values.
    pub global_unique: bool,
    /// Optimizer feedback (times bound, estimated cost saved).
    pub feedback: QueryFeedback,
}

/// Largest patch set whose distinct-value count the snapshot computes
/// exactly. Snapshots run on every planned query, so the pass must stay
/// cheap; beyond the cap the conventional 50% estimate is used instead —
/// at such exception rates the rewrite is rejected by the cost gate
/// anyway, exactly as it was with the uninformed estimate.
const PATCH_DISTINCT_EXACT_CAP: u64 = 1 << 16;

impl IndexStats {
    /// Snapshot of a live index in `slot`, including the distinct-value
    /// count over its patch rows (read from `table`; estimated as half
    /// the patches once the patch set exceeds the exact-count cap).
    pub fn of(index: &PatchIndex, slot: usize, table: &Table) -> Self {
        Self::build(index, slot, table, true)
    }

    fn build(index: &PatchIndex, slot: usize, table: &Table, distinct_stats: bool) -> Self {
        let parts: Vec<PartitionStats> = (0..index.partition_count())
            .map(|pid| PartitionStats {
                rows: index.partition(pid).store.nrows(),
                patches: index.partition_patch_count(pid),
            })
            .collect();
        let patches: u64 = parts.iter().map(|p| p.patches).sum();
        let patch_distinct = match index.constraint() {
            Constraint::NearlyUnique if distinct_stats && patches <= PATCH_DISTINCT_EXACT_CAP => {
                index.patch_distinct_count(table)
            }
            Constraint::NearlyUnique => patches / 2,
            _ => 0,
        };
        IndexStats {
            slot,
            column: index.column(),
            constraint: index.constraint(),
            parts,
            patch_distinct,
            pending: index.has_pending(),
            e: index.match_fraction(),
            baseline_e: index.baseline().match_fraction,
            drift_patches: index.drift_patches(),
            maintained_rows: index.maintained_since_recompute(),
            memory_bytes: index.memory_bytes(),
            global_unique: index.global_unique(),
            feedback: index.query_feedback(),
        }
    }

    /// Total covered rows.
    pub fn rows(&self) -> u64 {
        self.parts.iter().map(|p| p.rows).sum()
    }

    /// Total patches.
    pub fn patches(&self) -> u64 {
        self.parts.iter().map(|p| p.patches).sum()
    }

    /// Patches added per maintained row since the last create/recompute.
    pub fn drift_rate(&self) -> f64 {
        if self.maintained_rows == 0 {
            return 0.0;
        }
        self.drift_patches as f64 / self.maintained_rows as f64
    }
}

/// Every index on a table plus the per-partition table shape: the unit
/// the optimizer plans against.
#[derive(Debug, Clone)]
pub struct IndexCatalog {
    /// Visible rows per partition.
    pub part_rows: Vec<u64>,
    /// One snapshot per index, in slot order.
    pub indexes: Vec<IndexStats>,
}

impl IndexCatalog {
    /// Snapshots `indexes` (in slot order) over `table`. Generic over
    /// owned indexes and shared (`Arc`) handles alike.
    pub fn of<I: std::borrow::Borrow<PatchIndex>>(table: &Table, indexes: &[I]) -> Self {
        Self::build(table, indexes, true)
    }

    /// Like [`IndexCatalog::of`], but skips the distinct-patch-value pass
    /// (NUC `patch_distinct` falls back to the 50% estimate). For plans
    /// that contain no distinct node the estimate is never read, so the
    /// query facade uses this to keep its per-query snapshot to pure
    /// counter reads.
    pub fn counts_only<I: std::borrow::Borrow<PatchIndex>>(table: &Table, indexes: &[I]) -> Self {
        Self::build(table, indexes, false)
    }

    fn build<I: std::borrow::Borrow<PatchIndex>>(
        table: &Table,
        indexes: &[I],
        distinct_stats: bool,
    ) -> Self {
        IndexCatalog {
            part_rows: table
                .partitions()
                .iter()
                .map(|p| p.visible_len() as u64)
                .collect(),
            indexes: indexes
                .iter()
                .enumerate()
                .map(|(slot, idx)| IndexStats::build(idx.borrow(), slot, table, distinct_stats))
                .collect(),
        }
    }

    /// Total visible rows.
    pub fn rows(&self) -> u64 {
        self.part_rows.iter().sum()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.part_rows.len()
    }

    /// The first NUC index on `column`, if any.
    pub fn nuc_on(&self, column: usize) -> Option<&IndexStats> {
        self.indexes
            .iter()
            .find(|e| e.column == column && e.constraint == Constraint::NearlyUnique)
    }

    /// The entry whose `slot` field matches — *not* a positional lookup.
    /// A catalog may be filtered (the reader-side pending-NUC masking
    /// re-optimizes against a subset of entries) while `PatchScan` slot
    /// bindings keep referring to the live index array, so entries must
    /// be resolved by their recorded slot.
    pub fn by_slot(&self, slot: usize) -> Option<&IndexStats> {
        match self.indexes.get(slot) {
            Some(e) if e.slot == slot => Some(e),
            _ => self.indexes.iter().find(|e| e.slot == slot),
        }
    }
}

impl PatchIndex {
    /// Patches in one partition (per-partition zero-branch pruning and
    /// the catalog snapshot read this).
    pub fn partition_patch_count(&self, pid: usize) -> u64 {
        self.partition(pid).store.patch_count()
    }

    /// Rows covered in one partition.
    pub fn partition_rows(&self, pid: usize) -> u64 {
        self.partition(pid).store.nrows()
    }

    /// Distinct values among the patch rows (one hash pass over the
    /// patches, reading their column values from `table`).
    pub fn patch_distinct_count(&self, table: &Table) -> u64 {
        let col = self.column();
        let mut seen = pi_exec::hash::int_set();
        for pid in 0..self.partition_count() {
            let rids: Vec<usize> = self
                .partition(pid)
                .store
                .patch_rids()
                .iter()
                .map(|&r| r as usize)
                .collect();
            for v in gather_values(table.partition(pid), col, &rids) {
                seen.insert(v);
            }
        }
        seen.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Design, SortDir};
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table(values_per_part: Vec<Vec<i64>>) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            values_per_part.len(),
            Partitioning::RoundRobin,
        );
        for (pid, vals) in values_per_part.into_iter().enumerate() {
            t.load_partition(pid, &[ColumnData::Int(vals)]);
        }
        t.propagate_all();
        t
    }

    #[test]
    fn per_partition_counts_are_partition_local() {
        let t = table(vec![vec![1, 2, 2, 3], vec![5, 6, 7, 8]]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let stats = IndexStats::of(&idx, 0, &t);
        assert_eq!(
            stats.parts[0],
            PartitionStats {
                rows: 4,
                patches: 2
            }
        );
        assert_eq!(
            stats.parts[1],
            PartitionStats {
                rows: 4,
                patches: 0
            }
        );
        assert_eq!(stats.patches(), 2);
        assert_eq!(idx.partition_patch_count(0), 2);
        assert_eq!(idx.partition_patch_count(1), 0);
    }

    #[test]
    fn patch_distinct_counts_duplicate_values_once() {
        // 2 appears twice, 5 three times: 5 patches, 2 distinct values.
        let t = table(vec![vec![1, 2, 2, 3], vec![5, 5, 5, 6]]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Identifier);
        assert_eq!(idx.exception_count(), 5);
        assert_eq!(idx.patch_distinct_count(&t), 2);
        let cat = IndexCatalog::of(&t, std::slice::from_ref(&idx));
        assert_eq!(cat.indexes[0].patch_distinct, 2);
        assert_eq!(cat.rows(), 8);
        assert_eq!(cat.part_rows, vec![4, 4]);
    }

    #[test]
    fn by_slot_resolves_entries_of_a_filtered_catalog() {
        let t = table(vec![vec![1, 2, 99, 3], vec![4, 5, 6, 7]]);
        let nuc = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let nsc = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        let mut cat = IndexCatalog::of(&t, &[nuc, nsc]);
        assert_eq!(cat.by_slot(0).unwrap().constraint, Constraint::NearlyUnique);
        // Mask out slot 0: slot 1 is now positionally first but must
        // still resolve by its recorded slot.
        cat.indexes.remove(0);
        assert!(cat.by_slot(0).is_none());
        assert_eq!(
            cat.by_slot(1).unwrap().constraint,
            Constraint::NearlySorted(SortDir::Asc)
        );
    }

    #[test]
    fn catalog_snapshots_all_indexes_in_slot_order() {
        let t = table(vec![vec![1, 2, 99, 3], vec![4, 5, 6, 7]]);
        let nuc = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let nsc = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        let indexes = vec![nuc, nsc];
        let cat = IndexCatalog::of(&t, &indexes);
        assert_eq!(cat.indexes.len(), 2);
        assert_eq!(cat.indexes[0].slot, 0);
        assert_eq!(cat.indexes[1].slot, 1);
        assert_eq!(cat.indexes[0].constraint, Constraint::NearlyUnique);
        assert_eq!(
            cat.indexes[1].constraint,
            Constraint::NearlySorted(SortDir::Asc)
        );
        assert!(cat.nuc_on(0).is_some());
        assert!(cat.nuc_on(1).is_none());
    }
}
