//! Physical patch-set storage: the bitmap-based and identifier-based design
//! approaches (paper, Section 3.2).

use pi_bitmap::{BulkDeleteMode, ConcurrentShardedBitmap, ShardedBitmap};
use pi_exec::ops::patch_select::PatchLookup;

use crate::constraint::Design;

/// Patch storage for one partition.
#[derive(Debug, Clone)]
pub enum PatchStore {
    /// Dense: one bit per tuple of the indexed column.
    Bitmap(ShardedBitmap),
    /// Sparse: sorted 64-bit rowIDs of the patches.
    Identifier {
        /// Sorted patch rowIDs.
        ids: Vec<u64>,
        /// Tuples covered (tracked explicitly; the bitmap encodes this in
        /// its length).
        nrows: u64,
    },
}

impl PatchStore {
    /// Creates a store over `nrows` tuples with the given (sorted or
    /// unsorted) patch rowIDs.
    pub fn new(design: Design, nrows: u64, patches: &[u64]) -> Self {
        match design {
            Design::Bitmap => PatchStore::Bitmap(ShardedBitmap::from_positions(nrows, patches)),
            Design::Identifier => {
                let mut ids = patches.to_vec();
                ids.sort_unstable();
                ids.dedup();
                PatchStore::Identifier { ids, nrows }
            }
        }
    }

    /// The design this store implements.
    pub fn design(&self) -> Design {
        match self {
            PatchStore::Bitmap(_) => Design::Bitmap,
            PatchStore::Identifier { .. } => Design::Identifier,
        }
    }

    /// Tuples covered by the index.
    pub fn nrows(&self) -> u64 {
        match self {
            PatchStore::Bitmap(bm) => bm.len(),
            PatchStore::Identifier { nrows, .. } => *nrows,
        }
    }

    /// Number of patches.
    pub fn patch_count(&self) -> u64 {
        match self {
            PatchStore::Bitmap(bm) => bm.count_ones(),
            PatchStore::Identifier { ids, .. } => ids.len() as u64,
        }
    }

    /// Whether `rid` is a patch.
    pub fn contains(&self, rid: u64) -> bool {
        match self {
            PatchStore::Bitmap(bm) => bm.get(rid),
            PatchStore::Identifier { ids, .. } => ids.binary_search(&rid).is_ok(),
        }
    }

    /// Lookup handle for the PatchIndex selection operator.
    pub fn as_lookup(&self) -> &dyn PatchLookup {
        match self {
            PatchStore::Bitmap(bm) => bm,
            PatchStore::Identifier { ids, .. } => ids as &dyn PatchLookup,
        }
    }

    /// All patch rowIDs, ascending.
    pub fn patch_rids(&self) -> Vec<u64> {
        match self {
            PatchStore::Bitmap(bm) => bm.iter_ones().collect(),
            PatchStore::Identifier { ids, .. } => ids.clone(),
        }
    }

    /// Extends coverage by `n` freshly appended tuples (bitmap resize /
    /// plain counter bump) — insert handling step one.
    pub fn extend_rows(&mut self, n: u64) {
        match self {
            PatchStore::Bitmap(bm) => bm.append_zeros(n),
            PatchStore::Identifier { nrows, .. } => *nrows += n,
        }
    }

    /// Marks additional rowIDs as patches (merging into the existing set).
    pub fn add_patches(&mut self, rids: &[u64]) {
        match self {
            PatchStore::Bitmap(bm) => {
                for &r in rids {
                    bm.set(r);
                }
            }
            PatchStore::Identifier { ids, .. } => {
                ids.extend_from_slice(rids);
                ids.sort_unstable();
                ids.dedup();
            }
        }
    }

    /// Clears rowIDs from the patch set. Callers must guarantee the rows
    /// genuinely satisfy the constraint — the deferred flush uses this to
    /// release conservatively staged rows that turned out collision-free.
    pub fn remove_patches(&mut self, rids: &[u64]) {
        match self {
            PatchStore::Bitmap(bm) => {
                for &r in rids {
                    bm.unset(r);
                }
            }
            PatchStore::Identifier { ids, .. } => {
                let mut remove = rids.to_vec();
                remove.sort_unstable();
                ids.retain(|id| remove.binary_search(id).is_err());
            }
        }
    }

    /// Moves a bitmap-design patch set into its concurrent form so
    /// parallel maintenance probes can apply patches directly; `None` for
    /// identifier stores. Pair with [`PatchStore::end_concurrent`].
    pub(crate) fn begin_concurrent(&mut self) -> Option<ConcurrentShardedBitmap> {
        match self {
            PatchStore::Bitmap(bm) => Some(ConcurrentShardedBitmap::from_sharded(
                std::mem::replace(bm, ShardedBitmap::new(0)),
            )),
            PatchStore::Identifier { .. } => None,
        }
    }

    /// Swaps the bitmap back in after concurrent maintenance finished.
    pub(crate) fn end_concurrent(&mut self, concurrent: ConcurrentShardedBitmap) {
        if let PatchStore::Bitmap(bm) = self {
            *bm = concurrent.into_sharded();
        }
    }

    /// Applies a table delete: `deleted` (any order, pre-delete rowIDs)
    /// disappear and all subsequent rowIDs shift down. The bitmap uses the
    /// parallel vectorized bulk delete; the identifier list drops deleted
    /// ids and decrements each remaining id by the number of smaller
    /// deleted rowIDs (paper, Section 5.3).
    pub fn on_delete(&mut self, deleted: &[u64]) {
        if deleted.is_empty() {
            return;
        }
        match self {
            PatchStore::Bitmap(bm) => {
                // Small batches don't amortize worker threads (the paper's
                // Figure 6: preprocessing and thread start dominate small
                // work items); run those sequentially.
                let mode = if deleted.len() < 256 {
                    BulkDeleteMode::Sequential
                } else {
                    BulkDeleteMode::ParallelVectorized
                };
                bm.bulk_delete(deleted, mode)
            }
            PatchStore::Identifier { ids, nrows } => {
                let mut sorted = deleted.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                let mut out = Vec::with_capacity(ids.len());
                for &id in ids.iter() {
                    // Number of deleted rowIDs <= id.
                    let k = sorted.partition_point(|&d| d <= id);
                    if k > 0 && sorted[k - 1] == id {
                        continue; // the patch itself was deleted
                    }
                    out.push(id - k as u64);
                }
                *ids = out;
                *nrows -= sorted.len() as u64;
            }
        }
    }

    /// Heap bytes used by the store.
    pub fn memory_bytes(&self) -> usize {
        match self {
            PatchStore::Bitmap(bm) => bm.memory_bytes(),
            PatchStore::Identifier { ids, .. } => ids.capacity() * 8,
        }
    }

    /// Whether [`PatchStore::maybe_condense`] would condense at this
    /// threshold — a `&self` predicate so callers holding shared (`Arc`)
    /// stores can skip the copy-on-write when no condense is due.
    pub fn would_condense(&self, threshold: f64) -> bool {
        match self {
            PatchStore::Bitmap(bm) => bm.utilization() < threshold,
            PatchStore::Identifier { .. } => false,
        }
    }

    /// Condenses the underlying bitmap when utilization dropped below
    /// `threshold`; no-op for identifier stores. Returns whether a condense
    /// ran.
    pub fn maybe_condense(&mut self, threshold: f64) -> bool {
        match self {
            PatchStore::Bitmap(bm) => bm.maybe_condense(threshold),
            PatchStore::Identifier { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(nrows: u64, patches: &[u64]) -> [PatchStore; 2] {
        [
            PatchStore::new(Design::Bitmap, nrows, patches),
            PatchStore::new(Design::Identifier, nrows, patches),
        ]
    }

    #[test]
    fn creation_and_lookup() {
        for store in both(100, &[3, 50, 99]) {
            assert_eq!(store.nrows(), 100);
            assert_eq!(store.patch_count(), 3);
            assert!(store.contains(50));
            assert!(!store.contains(51));
            assert_eq!(store.patch_rids(), vec![3, 50, 99]);
            assert_eq!(store.as_lookup().patch_count(), 3);
        }
    }

    #[test]
    fn extend_and_add() {
        for mut store in both(10, &[2]) {
            store.extend_rows(5);
            assert_eq!(store.nrows(), 15);
            store.add_patches(&[12, 14, 2]);
            assert_eq!(store.patch_rids(), vec![2, 12, 14]);
        }
    }

    #[test]
    fn remove_patches_both_designs() {
        for mut store in both(30, &[2, 7, 9, 20]) {
            store.remove_patches(&[7, 20, 25]); // 25 was never a patch
            assert_eq!(store.patch_rids(), vec![2, 9]);
            assert_eq!(store.nrows(), 30);
        }
    }

    #[test]
    fn concurrent_roundtrip_preserves_patches() {
        let mut store = PatchStore::new(Design::Bitmap, 200, &[1, 64, 199]);
        let conc = store.begin_concurrent().unwrap();
        conc.set(100);
        store.end_concurrent(conc);
        assert_eq!(store.patch_rids(), vec![1, 64, 100, 199]);
        assert_eq!(store.nrows(), 200);
        let mut ident = PatchStore::new(Design::Identifier, 10, &[3]);
        assert!(ident.begin_concurrent().is_none());
    }

    #[test]
    fn delete_shifts_both_designs_identically() {
        for mut store in both(20, &[0, 5, 10, 19]) {
            // Delete rows 3 (unpatched), 5 (a patch) and 12 (unpatched).
            store.on_delete(&[3, 5, 12]);
            assert_eq!(store.nrows(), 17);
            // 0 stays; 10 -> 8 (two deletes below); 19 -> 16 (three below).
            assert_eq!(store.patch_rids(), vec![0, 8, 16]);
        }
    }

    #[test]
    fn delete_unsorted_input() {
        for mut store in both(10, &[4, 9]) {
            store.on_delete(&[8, 1]);
            assert_eq!(store.patch_rids(), vec![3, 7]);
        }
    }

    #[test]
    fn designs_report_correctly() {
        let [b, i] = both(10, &[]);
        assert_eq!(b.design(), Design::Bitmap);
        assert_eq!(i.design(), Design::Identifier);
    }

    #[test]
    fn memory_crossover_matches_paper() {
        // Paper, Section 3.2: the bitmap wins for e >= 1/64.
        let n = 1_000_000u64;
        let low_e: Vec<u64> = (0..n / 1000).collect(); // e = 0.1%
        let high_e: Vec<u64> = (0..n / 10).collect(); // e = 10%
        let [b_low, i_low] = both(n, &low_e);
        let [b_high, i_high] = both(n, &high_e);
        assert!(i_low.memory_bytes() < b_low.memory_bytes());
        assert!(b_high.memory_bytes() < i_high.memory_bytes());
    }

    #[test]
    fn maybe_condense_only_affects_bitmap() {
        let [mut b, mut i] = both(1 << 15, &[1, 2, 3]);
        b.on_delete(&[100]);
        i.on_delete(&[100]);
        assert!(b.maybe_condense(1.1)); // force
        assert!(!i.maybe_condense(1.1));
        assert_eq!(b.patch_rids(), i.patch_rids());
    }
}
