//! Approximate query processing on PatchIndexes (paper, future work: "the
//! PatchIndex contains information that hold for the major part of the
//! data and therefore allows to generate approximate results on the whole
//! dataset").
//!
//! Because the index knows exactly how many tuples violate the constraint,
//! several aggregates can be answered *without touching the data at all*,
//! or by scanning only the patches — each with a hard error bound derived
//! from the patch count.

use pi_storage::Table;

use crate::constraint::{Constraint, SortDir};
use crate::discovery::partition_column_values;
use crate::index::PatchIndex;

/// An approximate scalar answer with a guaranteed absolute error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxAnswer {
    /// The estimate.
    pub estimate: f64,
    /// `|true value − estimate| <= error_bound`, guaranteed.
    pub error_bound: f64,
}

impl ApproxAnswer {
    fn exact(v: f64) -> Self {
        ApproxAnswer {
            estimate: v,
            error_bound: 0.0,
        }
    }
}

/// Approximate `COUNT(DISTINCT col)` from a NUC index, **without any data
/// access**: every non-patch value is unique (one distinct value each);
/// the patches contribute between 1 and `patch_count` further values.
///
/// # Panics
/// Panics if the index is not a NUC.
pub fn approx_count_distinct(index: &PatchIndex) -> ApproxAnswer {
    assert!(
        matches!(index.constraint(), Constraint::NearlyUnique),
        "approx_count_distinct needs a NUC index"
    );
    let clean = (index.nrows() - index.exception_count()) as f64;
    let patches = index.exception_count() as f64;
    if patches == 0.0 {
        return ApproxAnswer::exact(clean);
    }
    // Patches contribute in [1, patches] distinct values (at least one,
    // because a patch exists; at most one value each). Estimate with the
    // midpoint; the bound is half the interval.
    ApproxAnswer {
        estimate: clean + (1.0 + patches) / 2.0,
        error_bound: (patches - 1.0) / 2.0,
    }
}

/// Approximate sortedness fraction from an NSC index (no data access):
/// the share of tuples already in order.
pub fn sortedness(index: &PatchIndex) -> f64 {
    assert!(
        matches!(index.constraint(), Constraint::NearlySorted(_)),
        "sortedness needs an NSC index"
    );
    1.0 - index.exception_rate()
}

/// Approximate `MAX(col)` (for an ascending NSC) touching **only the
/// patches**: the sorted run's maximum is the tracked anchor value; only
/// the exceptions can exceed it.
///
/// Returns an exact answer (error bound 0) — the point is the access cost:
/// `O(patches)` instead of `O(n)`.
pub fn max_via_nsc(table: &Table, index: &PatchIndex) -> Option<i64> {
    assert!(
        matches!(index.constraint(), Constraint::NearlySorted(SortDir::Asc)),
        "max_via_nsc needs an ascending NSC index"
    );
    let mut best: Option<i64> = None;
    for pid in 0..index.partition_count() {
        let part = index.partition(pid);
        let mut local = part.last_sorted;
        if part.store.patch_count() > 0 {
            let rids: Vec<usize> = part
                .store
                .patch_rids()
                .iter()
                .map(|&r| r as usize)
                .collect();
            let vals = table.partition(pid).gather(&[index.column()], &rids);
            for i in 0..vals[0].len() {
                let v = vals[0].as_int()[i];
                local = Some(local.map_or(v, |m| m.max(v)));
            }
        }
        if let Some(v) = local {
            best = Some(best.map_or(v, |b| b.max(v)));
        }
    }
    best
}

/// Approximate median of an ascending NSC **without sorting**: the sorted
/// run's middle element, correct within `patch_count` rank positions.
pub fn approx_median(table: &Table, index: &PatchIndex) -> Option<ApproxAnswer> {
    assert!(
        matches!(index.constraint(), Constraint::NearlySorted(SortDir::Asc)),
        "approx_median needs an ascending NSC index"
    );
    // Single-partition medians are meaningful; across partitions the run
    // values interleave, so restrict to the dominant case of one
    // partition or concatenatable runs (documented limitation).
    if index.partition_count() != 1 {
        return None;
    }
    let part = index.partition(0);
    let n = part.store.nrows();
    if n == 0 {
        return None;
    }
    let values = partition_column_values(table.partition(0), index.column());
    let lookup = part.store.as_lookup();
    let run: Vec<i64> = values
        .iter()
        .enumerate()
        .filter(|(i, _)| !lookup.is_patch(*i as u64))
        .map(|(_, v)| *v)
        .collect();
    if run.is_empty() {
        return None;
    }
    // The true median's rank differs from the run median's rank by at
    // most the number of excluded patches.
    let estimate = run[run.len() / 2] as f64;
    // Translate the rank bound into a value bound using the run itself.
    let k = (part.store.patch_count() as usize).min(run.len() / 2);
    let lo = run[run.len() / 2 - k];
    let hi = run[(run.len() / 2 + k).min(run.len() - 1)];
    Some(ApproxAnswer {
        estimate,
        error_bound: (estimate - lo as f64)
            .abs()
            .max((hi as f64 - estimate).abs()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Design;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table(vals: Vec<i64>) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            1,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vals)]);
        t.propagate_all();
        t
    }

    #[test]
    fn count_distinct_exact_on_perfect_nuc() {
        let t = table((0..100).collect());
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let a = approx_count_distinct(&idx);
        assert_eq!(a.estimate, 100.0);
        assert_eq!(a.error_bound, 0.0);
    }

    #[test]
    fn count_distinct_bound_contains_truth() {
        // 90 unique + 10 occurrences spread over 3 duplicate values.
        let mut vals: Vec<i64> = (100..190).collect();
        vals.extend([1, 1, 1, 2, 2, 2, 2, 3, 3, 3]);
        let t = table(vals);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let truth = 93.0;
        let a = approx_count_distinct(&idx);
        assert!(
            (truth - a.estimate).abs() <= a.error_bound + 1e-9,
            "estimate {} ± {} misses {truth}",
            a.estimate,
            a.error_bound
        );
    }

    #[test]
    fn sortedness_fraction() {
        let t = table(vec![1, 2, 99, 3, 4]);
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        assert!((sortedness(&idx) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn max_via_patches_only() {
        let t = table(vec![1, 2, 500, 3, 4]);
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        assert_eq!(max_via_nsc(&t, &idx), Some(500));
        // Perfect data: the anchor answers without any scan.
        let t2 = table((0..50).collect());
        let idx2 = PatchIndex::create(
            &t2,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        assert_eq!(max_via_nsc(&t2, &idx2), Some(49));
    }

    #[test]
    fn median_bound_contains_truth() {
        let mut vals: Vec<i64> = (0..1000).map(|i| i * 2).collect();
        vals[100] = 100_000; // one exception
        vals[900] = -5; // another
        let t = table(vals.clone());
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        let a = approx_median(&t, &idx).expect("single partition");
        let mut sorted = vals;
        sorted.sort_unstable();
        let truth = sorted[sorted.len() / 2] as f64;
        assert!(
            (truth - a.estimate).abs() <= a.error_bound + 1e-9,
            "estimate {} ± {} misses {truth}",
            a.estimate,
            a.error_bound
        );
    }

    #[test]
    #[should_panic(expected = "needs a NUC index")]
    fn wrong_constraint_panics() {
        let t = table(vec![1, 2, 3]);
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        approx_count_distinct(&idx);
    }
}
