//! Recovery (paper, Section 3.4).
//!
//! PatchIndexes are main-memory structures; to keep the database log slim
//! the actual patch information is not logged. Two recovery strategies:
//!
//! * [`PatchIndex::recover`] — recreate from the table after a restart
//!   (the paper's default);
//! * [`PatchIndex::checkpoint`] / [`PatchIndex::load_checkpoint`] — persist
//!   the index state to disk as a checkpoint (hand-rolled little-endian
//!   codec; the dependency policy in DESIGN.md rules out serde formats).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use pi_storage::Table;

use crate::constraint::{Constraint, Design, SortDir};
use crate::index::{DriftBaseline, PartitionIndex, PatchIndex, QueryFeedback};
use crate::maintenance::MaintenanceStats;
use crate::store::PatchStore;

const MAGIC: &[u8; 4] = b"PIDX";
/// Version 2 appended the maintenance/drift/feedback counters, so a
/// recovered index resumes advisor monitoring where it left off.
/// Version 3 extends the feedback block with the measured-timing fields
/// (measured queries, actual micros, estimated cost executed); v2 files
/// still load, with those fields zeroed.
/// Version 4 records the global-uniqueness flag after the design word.
/// v2/v3 NUC files were written by partition-local discovery, so they
/// load with the flag cleared — the planner's global-distinct guard stays
/// active until the index is recomputed.
const VERSION: u32 = 4;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_i64(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    write_u64(w, v.to_bits())
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

fn constraint_tag(c: Constraint) -> u32 {
    match c {
        Constraint::NearlyUnique => 0,
        Constraint::NearlySorted(SortDir::Asc) => 1,
        Constraint::NearlySorted(SortDir::Desc) => 2,
        Constraint::NearlyConstant => 3,
    }
}

fn constraint_from_tag(tag: u32) -> io::Result<Constraint> {
    match tag {
        0 => Ok(Constraint::NearlyUnique),
        1 => Ok(Constraint::NearlySorted(SortDir::Asc)),
        2 => Ok(Constraint::NearlySorted(SortDir::Desc)),
        3 => Ok(Constraint::NearlyConstant),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown constraint tag {other}"),
        )),
    }
}

impl PatchIndex {
    /// Recreates the index from the table — recovery after a shutdown or
    /// failure without a checkpoint.
    pub fn recover(table: &Table, col: usize, constraint: Constraint, design: Design) -> Self {
        PatchIndex::create(table, col, constraint, design)
    }

    /// Persists the index state to `path`.
    ///
    /// # Panics
    /// Panics if deferred maintenance is pending: the value histories are
    /// not serialized, so a checkpoint taken mid-epoch could never be
    /// flushed into a consistent state after recovery. Flush first.
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> io::Result<()> {
        assert!(
            !self.has_pending(),
            "flush deferred maintenance before checkpointing the index"
        );
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        write_u32(&mut w, VERSION)?;
        write_u32(&mut w, self.column() as u32)?;
        write_u32(&mut w, constraint_tag(self.constraint()))?;
        write_u32(&mut w, matches!(self.design(), Design::Identifier) as u32)?;
        write_u32(&mut w, self.global_unique() as u32)?;
        // Monitoring counters (v2): maintenance stats, drift baseline,
        // query feedback — the advisor's observe state survives recovery.
        let stats = self.maintenance_stats();
        write_u64(&mut w, stats.collision_rounds)?;
        write_u64(&mut w, stats.build_invocations)?;
        write_u64(&mut w, stats.probed_partitions)?;
        write_u64(&mut w, stats.maintained_rows)?;
        let baseline = self.baseline();
        write_f64(&mut w, baseline.match_fraction)?;
        write_u64(&mut w, baseline.patches)?;
        write_u64(&mut w, baseline.maintained_rows)?;
        let feedback = self.query_feedback();
        write_u64(&mut w, feedback.times_bound)?;
        write_f64(&mut w, feedback.est_cost_saved)?;
        write_u64(&mut w, feedback.measured_queries)?;
        write_f64(&mut w, feedback.actual_micros)?;
        write_f64(&mut w, feedback.est_cost_executed)?;
        write_u32(&mut w, self.partition_count() as u32)?;
        for pid in 0..self.partition_count() {
            let part = self.partition(pid);
            write_u64(&mut w, part.store.nrows())?;
            match part.last_sorted {
                Some(v) => {
                    write_u32(&mut w, 1)?;
                    write_i64(&mut w, v)?;
                }
                None => write_u32(&mut w, 0)?,
            }
            let rids = part.store.patch_rids();
            write_u64(&mut w, rids.len() as u64)?;
            for r in rids {
                write_u64(&mut w, r)?;
            }
        }
        w.flush()
    }

    /// Loads a checkpoint written by [`PatchIndex::checkpoint`].
    pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a PatchIndex checkpoint",
            ));
        }
        let version = read_u32(&mut r)?;
        if !(2..=VERSION).contains(&version) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        let column = read_u32(&mut r)? as usize;
        let constraint = constraint_from_tag(read_u32(&mut r)?)?;
        let design = if read_u32(&mut r)? == 1 {
            Design::Identifier
        } else {
            Design::Bitmap
        };
        let global_unique = if version >= 4 {
            read_u32(&mut r)? == 1
        } else {
            // Legacy NUC patch sets came from partition-local discovery:
            // cross-partition duplicates may be unpatched. NSC/NCC
            // invariants are genuinely per-partition, so nothing is lost.
            constraint != Constraint::NearlyUnique
        };
        let stats = MaintenanceStats {
            collision_rounds: read_u64(&mut r)?,
            build_invocations: read_u64(&mut r)?,
            probed_partitions: read_u64(&mut r)?,
            maintained_rows: read_u64(&mut r)?,
        };
        let baseline = DriftBaseline {
            match_fraction: read_f64(&mut r)?,
            patches: read_u64(&mut r)?,
            maintained_rows: read_u64(&mut r)?,
        };
        let mut feedback = QueryFeedback {
            times_bound: read_u64(&mut r)?,
            est_cost_saved: read_f64(&mut r)?,
            ..QueryFeedback::default()
        };
        if version >= 3 {
            feedback.measured_queries = read_u64(&mut r)?;
            feedback.actual_micros = read_f64(&mut r)?;
            feedback.est_cost_executed = read_f64(&mut r)?;
        }
        let nparts = read_u32(&mut r)? as usize;
        let mut parts = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let nrows = read_u64(&mut r)?;
            let last_sorted = if read_u32(&mut r)? == 1 {
                Some(read_i64(&mut r)?)
            } else {
                None
            };
            let count = read_u64(&mut r)? as usize;
            let mut rids = Vec::with_capacity(count);
            for _ in 0..count {
                rids.push(read_u64(&mut r)?);
            }
            parts.push(PartitionIndex {
                store: PatchStore::new(design, nrows, &rids),
                last_sorted,
            });
        }
        let mut idx = PatchIndex::from_parts(column, constraint, design, parts, global_unique);
        idx.restore_meta(stats, baseline, feedback);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![1, 5, 5, 9])]);
        t.load_partition(1, &[ColumnData::Int(vec![3, 3, 4])]);
        t.propagate_all();
        t
    }

    #[test]
    fn checkpoint_roundtrip() {
        let t = table();
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let path = std::env::temp_dir().join("pi_checkpoint_roundtrip.pidx");
        idx.checkpoint(&path).unwrap();
        let loaded = PatchIndex::load_checkpoint(&path).unwrap();
        assert_eq!(loaded.column(), 0);
        assert_eq!(loaded.constraint(), Constraint::NearlyUnique);
        assert_eq!(loaded.exception_count(), idx.exception_count());
        for pid in 0..2 {
            assert_eq!(
                loaded.partition(pid).store.patch_rids(),
                idx.partition(pid).store.patch_rids()
            );
        }
        loaded.check_consistency(&t);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_preserves_nsc_anchor() {
        let t = table();
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
        );
        let path = std::env::temp_dir().join("pi_checkpoint_nsc.pidx");
        idx.checkpoint(&path).unwrap();
        let loaded = PatchIndex::load_checkpoint(&path).unwrap();
        assert_eq!(
            loaded.partition(0).last_sorted,
            idx.partition(0).last_sorted
        );
        assert_eq!(loaded.design(), Design::Identifier);
        std::fs::remove_file(path).ok();
    }

    /// Hand-writes a checkpoint in the legacy v3 layout (no
    /// global-uniqueness word) — what a pre-v4 build would have produced.
    fn write_v3(
        path: &std::path::Path,
        column: u32,
        constraint: Constraint,
        design: Design,
        parts: &[(u64, Option<i64>, Vec<u64>)],
    ) {
        let mut w = BufWriter::new(File::create(path).unwrap());
        w.write_all(MAGIC).unwrap();
        write_u32(&mut w, 3).unwrap();
        write_u32(&mut w, column).unwrap();
        write_u32(&mut w, constraint_tag(constraint)).unwrap();
        write_u32(&mut w, matches!(design, Design::Identifier) as u32).unwrap();
        for _ in 0..4 {
            write_u64(&mut w, 0).unwrap(); // maintenance stats
        }
        write_f64(&mut w, 1.0).unwrap(); // baseline match fraction
        write_u64(&mut w, 0).unwrap();
        write_u64(&mut w, 0).unwrap();
        write_u64(&mut w, 0).unwrap(); // feedback
        write_f64(&mut w, 0.0).unwrap();
        write_u64(&mut w, 0).unwrap();
        write_f64(&mut w, 0.0).unwrap();
        write_f64(&mut w, 0.0).unwrap();
        write_u32(&mut w, parts.len() as u32).unwrap();
        for (nrows, last_sorted, rids) in parts {
            write_u64(&mut w, *nrows).unwrap();
            match last_sorted {
                Some(v) => {
                    write_u32(&mut w, 1).unwrap();
                    write_i64(&mut w, *v).unwrap();
                }
                None => write_u32(&mut w, 0).unwrap(),
            }
            write_u64(&mut w, rids.len() as u64).unwrap();
            for r in rids {
                write_u64(&mut w, *r).unwrap();
            }
        }
        w.flush().unwrap();
    }

    #[test]
    fn legacy_v3_nuc_loads_with_the_global_guard_active() {
        // A v3 NUC checkpoint may hide cross-partition duplicates its
        // partition-local discovery never patched; the load must clear
        // the global-uniqueness claim. A recompute re-establishes it.
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![7, 1, 2])]);
        t.load_partition(1, &[ColumnData::Int(vec![7, 3, 4])]);
        t.propagate_all();
        let path = std::env::temp_dir().join("pi_checkpoint_legacy_v3.pidx");
        write_v3(
            &path,
            0,
            Constraint::NearlyUnique,
            Design::Bitmap,
            &[(3, None, vec![]), (3, None, vec![])],
        );
        let mut idx = PatchIndex::load_checkpoint(&path).unwrap();
        assert!(!idx.global_unique());
        idx.check_consistency(&t); // global pass is skipped while unclaimed
        idx.recompute(&t);
        assert!(idx.global_unique());
        assert_eq!(idx.partition(0).store.patch_rids(), vec![0]);
        assert_eq!(idx.partition(1).store.patch_rids(), vec![0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_v3_nsc_keeps_its_partition_local_claim() {
        let path = std::env::temp_dir().join("pi_checkpoint_legacy_nsc.pidx");
        write_v3(
            &path,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
            &[(4, Some(9), vec![2])],
        );
        let idx = PatchIndex::load_checkpoint(&path).unwrap();
        assert!(idx.global_unique());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn design_migrated_index_roundtrips() {
        // v3 file written as Bitmap over clean (globally unique) data;
        // after loading, the recompute migrates to Identifier (exception
        // rate 0 is below the crossover) and a fresh checkpoint
        // round-trips the migrated design with byte accounting intact.
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![1, 2, 3, 4])]);
        t.load_partition(1, &[ColumnData::Int(vec![5, 6, 7])]);
        t.propagate_all();
        let v3_path = std::env::temp_dir().join("pi_checkpoint_migrate_v3.pidx");
        write_v3(
            &v3_path,
            0,
            Constraint::NearlyUnique,
            Design::Bitmap,
            &[(4, None, vec![]), (3, None, vec![])],
        );
        let mut idx = PatchIndex::load_checkpoint(&v3_path).unwrap();
        assert_eq!(idx.design(), Design::Bitmap);
        assert!(!idx.global_unique());
        idx.recompute(&t);
        assert_eq!(idx.design(), Design::Identifier);
        assert!(idx.global_unique());
        let v4_path = std::env::temp_dir().join("pi_checkpoint_migrate_v4.pidx");
        idx.checkpoint(&v4_path).unwrap();
        let loaded = PatchIndex::load_checkpoint(&v4_path).unwrap();
        assert_eq!(loaded.design(), Design::Identifier);
        assert!(loaded.global_unique());
        assert_eq!(loaded.memory_bytes(), idx.memory_bytes());
        for pid in 0..2 {
            assert_eq!(loaded.partition(pid).store.design(), Design::Identifier);
            assert_eq!(
                loaded.partition(pid).store.patch_rids(),
                idx.partition(pid).store.patch_rids()
            );
        }
        loaded.check_consistency(&t);
        std::fs::remove_file(v3_path).ok();
        std::fs::remove_file(v4_path).ok();
    }

    #[test]
    fn recover_equals_create() {
        let t = table();
        let a = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let b = PatchIndex::recover(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(a.exception_count(), b.exception_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let path = std::env::temp_dir().join("pi_checkpoint_bad.pidx");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(PatchIndex::load_checkpoint(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
