//! Recovery (paper, Section 3.4).
//!
//! PatchIndexes are main-memory structures; to keep the database log slim
//! the actual patch information is not logged. Two recovery strategies:
//!
//! * [`PatchIndex::recover`] — recreate from the table after a restart
//!   (the paper's default);
//! * [`PatchIndex::checkpoint`] / [`PatchIndex::load_checkpoint`] — persist
//!   the index state to disk as a checkpoint (hand-rolled little-endian
//!   codec; the dependency policy in DESIGN.md rules out serde formats).
//!
//! Checkpoints are written atomically (tmp + fsync + rename + parent-dir
//! fsync through [`DurableFs`]) and carry a CRC-32 trailer, so a crash
//! mid-write can neither corrupt the previous good copy nor leave a torn
//! file that loads silently. The byte-level codec
//! ([`PatchIndex::checkpoint_bytes`] / [`PatchIndex::load_checkpoint_bytes`])
//! is what the `pi-durability` crate embeds in its epoch checkpoints.

use std::io::{self, Read};
use std::path::Path;

use pi_storage::crc::crc32;
use pi_storage::dfs::{write_atomic, DurableFs, RealFs};
use pi_storage::Table;

use crate::constraint::{Constraint, Design, SortDir};
use crate::index::{DriftBaseline, PartitionIndex, PatchIndex, QueryFeedback};
use crate::maintenance::MaintenanceStats;
use crate::store::PatchStore;

const MAGIC: &[u8; 4] = b"PIDX";
/// Version 2 appended the maintenance/drift/feedback counters, so a
/// recovered index resumes advisor monitoring where it left off.
/// Version 3 extends the feedback block with the measured-timing fields
/// (measured queries, actual micros, estimated cost executed); v2 files
/// still load, with those fields zeroed.
/// Version 4 records the global-uniqueness flag after the design word.
/// v2/v3 NUC files were written by partition-local discovery, so they
/// load with the flag cleared — the planner's global-distinct guard stays
/// active until the index is recomputed.
/// Version 5 appends a CRC-32 trailer over the whole payload; torn or
/// bit-flipped files are rejected at load instead of parsed. v2–v4 files
/// (no trailer) still load, but every version now rejects trailing
/// garbage.
const VERSION: u32 = 5;

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(b: &mut Vec<u8>, v: i64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(b: &mut Vec<u8>, v: f64) {
    put_u64(b, v.to_bits());
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

fn constraint_tag(c: Constraint) -> u32 {
    match c {
        Constraint::NearlyUnique => 0,
        Constraint::NearlySorted(SortDir::Asc) => 1,
        Constraint::NearlySorted(SortDir::Desc) => 2,
        Constraint::NearlyConstant => 3,
    }
}

fn constraint_from_tag(tag: u32) -> io::Result<Constraint> {
    match tag {
        0 => Ok(Constraint::NearlyUnique),
        1 => Ok(Constraint::NearlySorted(SortDir::Asc)),
        2 => Ok(Constraint::NearlySorted(SortDir::Desc)),
        3 => Ok(Constraint::NearlyConstant),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown constraint tag {other}"),
        )),
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl PatchIndex {
    /// Recreates the index from the table — recovery after a shutdown or
    /// failure without a checkpoint.
    pub fn recover(table: &Table, col: usize, constraint: Constraint, design: Design) -> Self {
        PatchIndex::create(table, col, constraint, design)
    }

    /// Serializes the index to the current checkpoint format (v5,
    /// CRC-32 trailer included).
    ///
    /// # Panics
    /// Panics if deferred maintenance is pending: the value histories are
    /// not serialized, so a checkpoint taken mid-epoch could never be
    /// flushed into a consistent state after recovery. Flush first.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        assert!(
            !self.has_pending(),
            "flush deferred maintenance before checkpointing the index"
        );
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        put_u32(&mut b, VERSION);
        put_u32(&mut b, self.column() as u32);
        put_u32(&mut b, constraint_tag(self.constraint()));
        put_u32(&mut b, matches!(self.design(), Design::Identifier) as u32);
        put_u32(&mut b, self.global_unique() as u32);
        // Monitoring counters (v2): maintenance stats, drift baseline,
        // query feedback — the advisor's observe state survives recovery.
        let stats = self.maintenance_stats();
        put_u64(&mut b, stats.collision_rounds);
        put_u64(&mut b, stats.build_invocations);
        put_u64(&mut b, stats.probed_partitions);
        put_u64(&mut b, stats.maintained_rows);
        let baseline = self.baseline();
        put_f64(&mut b, baseline.match_fraction);
        put_u64(&mut b, baseline.patches);
        put_u64(&mut b, baseline.maintained_rows);
        let feedback = self.query_feedback();
        put_u64(&mut b, feedback.times_bound);
        put_f64(&mut b, feedback.est_cost_saved);
        put_u64(&mut b, feedback.measured_queries);
        put_f64(&mut b, feedback.actual_micros);
        put_f64(&mut b, feedback.est_cost_executed);
        put_u32(&mut b, self.partition_count() as u32);
        for pid in 0..self.partition_count() {
            let part = self.partition(pid);
            put_u64(&mut b, part.store.nrows());
            match part.last_sorted {
                Some(v) => {
                    put_u32(&mut b, 1);
                    put_i64(&mut b, v);
                }
                None => put_u32(&mut b, 0),
            }
            let rids = part.store.patch_rids();
            put_u64(&mut b, rids.len() as u64);
            for r in rids {
                put_u64(&mut b, r);
            }
        }
        let crc = crc32(&b);
        put_u32(&mut b, crc);
        b
    }

    /// Persists the index state to `path` atomically: the bytes land in a
    /// tmp file that is fsynced, renamed over `path`, and committed with
    /// a parent-directory fsync. A crash at any point leaves either the
    /// old checkpoint or the new one — never a torn mix.
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.checkpoint_via(&RealFs, path.as_ref())
    }

    /// [`PatchIndex::checkpoint`] through an explicit filesystem (the
    /// durability layer and the failpoint tests inject theirs here).
    pub fn checkpoint_via(&self, fs: &dyn DurableFs, path: &Path) -> io::Result<()> {
        write_atomic(fs, path, &self.checkpoint_bytes())
    }

    /// Loads a checkpoint written by [`PatchIndex::checkpoint`].
    pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::load_checkpoint_via(&RealFs, path.as_ref())
    }

    /// [`PatchIndex::load_checkpoint`] through an explicit filesystem.
    pub fn load_checkpoint_via(fs: &dyn DurableFs, path: &Path) -> io::Result<Self> {
        Self::load_checkpoint_bytes(&fs.read(path)?)
    }

    /// Parses a checkpoint image. Rejects unknown versions, checksum
    /// mismatches (v5+) and trailing garbage (all versions) with a clear
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn load_checkpoint_bytes(bytes: &[u8]) -> io::Result<Self> {
        let mut header: &[u8] = bytes;
        let mut magic = [0u8; 4];
        header
            .read_exact(&mut magic)
            .map_err(|_| bad_data("not a PatchIndex checkpoint (too short)"))?;
        if &magic != MAGIC {
            return Err(bad_data("not a PatchIndex checkpoint"));
        }
        let version = read_u32(&mut header)?;
        if !(2..=VERSION).contains(&version) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        // v5 files end in a CRC-32 of everything before it; verify before
        // trusting a single payload byte.
        let body_end = if version >= 5 {
            if bytes.len() < 12 {
                return Err(bad_data("checkpoint truncated before checksum"));
            }
            let trailer_at = bytes.len() - 4;
            let stored = u32::from_le_bytes(bytes[trailer_at..].try_into().unwrap());
            if crc32(&bytes[..trailer_at]) != stored {
                return Err(bad_data(
                    "checkpoint checksum mismatch (corrupt or torn file)",
                ));
            }
            trailer_at
        } else {
            bytes.len()
        };
        let mut r: &[u8] = &bytes[8..body_end];
        let column = read_u32(&mut r)? as usize;
        let constraint = constraint_from_tag(read_u32(&mut r)?)?;
        let design = if read_u32(&mut r)? == 1 {
            Design::Identifier
        } else {
            Design::Bitmap
        };
        let global_unique = if version >= 4 {
            read_u32(&mut r)? == 1
        } else {
            // Legacy NUC patch sets came from partition-local discovery:
            // cross-partition duplicates may be unpatched. NSC/NCC
            // invariants are genuinely per-partition, so nothing is lost.
            constraint != Constraint::NearlyUnique
        };
        let stats = MaintenanceStats {
            collision_rounds: read_u64(&mut r)?,
            build_invocations: read_u64(&mut r)?,
            probed_partitions: read_u64(&mut r)?,
            maintained_rows: read_u64(&mut r)?,
        };
        let baseline = DriftBaseline {
            match_fraction: read_f64(&mut r)?,
            patches: read_u64(&mut r)?,
            maintained_rows: read_u64(&mut r)?,
        };
        let mut feedback = QueryFeedback {
            times_bound: read_u64(&mut r)?,
            est_cost_saved: read_f64(&mut r)?,
            ..QueryFeedback::default()
        };
        if version >= 3 {
            feedback.measured_queries = read_u64(&mut r)?;
            feedback.actual_micros = read_f64(&mut r)?;
            feedback.est_cost_executed = read_f64(&mut r)?;
        }
        let nparts = read_u32(&mut r)? as usize;
        let mut parts = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let nrows = read_u64(&mut r)?;
            let last_sorted = if read_u32(&mut r)? == 1 {
                Some(read_i64(&mut r)?)
            } else {
                None
            };
            let count = read_u64(&mut r)? as usize;
            let mut rids = Vec::with_capacity(count);
            for _ in 0..count {
                rids.push(read_u64(&mut r)?);
            }
            parts.push(PartitionIndex {
                store: PatchStore::new(design, nrows, &rids),
                last_sorted,
            });
        }
        if !r.is_empty() {
            return Err(bad_data("trailing garbage after checkpoint payload"));
        }
        let mut idx = PatchIndex::from_parts(column, constraint, design, parts, global_unique);
        idx.restore_meta(stats, baseline, feedback);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_storage::dfs::SimFs;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};
    use std::fs::File;
    use std::io::{BufWriter, Write};
    use std::path::PathBuf;

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![1, 5, 5, 9])]);
        t.load_partition(1, &[ColumnData::Int(vec![3, 3, 4])]);
        t.propagate_all();
        t
    }

    #[test]
    fn checkpoint_roundtrip() {
        let t = table();
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let path = std::env::temp_dir().join("pi_checkpoint_roundtrip.pidx");
        idx.checkpoint(&path).unwrap();
        let loaded = PatchIndex::load_checkpoint(&path).unwrap();
        assert_eq!(loaded.column(), 0);
        assert_eq!(loaded.constraint(), Constraint::NearlyUnique);
        assert_eq!(loaded.exception_count(), idx.exception_count());
        for pid in 0..2 {
            assert_eq!(
                loaded.partition(pid).store.patch_rids(),
                idx.partition(pid).store.patch_rids()
            );
        }
        loaded.check_consistency(&t);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_preserves_nsc_anchor() {
        let t = table();
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
        );
        let path = std::env::temp_dir().join("pi_checkpoint_nsc.pidx");
        idx.checkpoint(&path).unwrap();
        let loaded = PatchIndex::load_checkpoint(&path).unwrap();
        assert_eq!(
            loaded.partition(0).last_sorted,
            idx.partition(0).last_sorted
        );
        assert_eq!(loaded.design(), Design::Identifier);
        std::fs::remove_file(path).ok();
    }

    /// Hand-writes a checkpoint in the legacy v3 layout (no
    /// global-uniqueness word, no checksum trailer) — what a pre-v4 build
    /// would have produced.
    fn write_v3(
        path: &std::path::Path,
        column: u32,
        constraint: Constraint,
        design: Design,
        parts: &[(u64, Option<i64>, Vec<u64>)],
    ) {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        put_u32(&mut b, 3);
        put_u32(&mut b, column);
        put_u32(&mut b, constraint_tag(constraint));
        put_u32(&mut b, matches!(design, Design::Identifier) as u32);
        for _ in 0..4 {
            put_u64(&mut b, 0); // maintenance stats
        }
        put_f64(&mut b, 1.0); // baseline match fraction
        put_u64(&mut b, 0);
        put_u64(&mut b, 0);
        put_u64(&mut b, 0); // feedback
        put_f64(&mut b, 0.0);
        put_u64(&mut b, 0);
        put_f64(&mut b, 0.0);
        put_f64(&mut b, 0.0);
        put_u32(&mut b, parts.len() as u32);
        for (nrows, last_sorted, rids) in parts {
            put_u64(&mut b, *nrows);
            match last_sorted {
                Some(v) => {
                    put_u32(&mut b, 1);
                    put_i64(&mut b, *v);
                }
                None => put_u32(&mut b, 0),
            }
            put_u64(&mut b, rids.len() as u64);
            for r in rids {
                put_u64(&mut b, *r);
            }
        }
        let mut w = BufWriter::new(File::create(path).unwrap());
        w.write_all(&b).unwrap();
        w.flush().unwrap();
    }

    #[test]
    fn legacy_v3_nuc_loads_with_the_global_guard_active() {
        // A v3 NUC checkpoint may hide cross-partition duplicates its
        // partition-local discovery never patched; the load must clear
        // the global-uniqueness claim. A recompute re-establishes it.
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![7, 1, 2])]);
        t.load_partition(1, &[ColumnData::Int(vec![7, 3, 4])]);
        t.propagate_all();
        let path = std::env::temp_dir().join("pi_checkpoint_legacy_v3.pidx");
        write_v3(
            &path,
            0,
            Constraint::NearlyUnique,
            Design::Bitmap,
            &[(3, None, vec![]), (3, None, vec![])],
        );
        let mut idx = PatchIndex::load_checkpoint(&path).unwrap();
        assert!(!idx.global_unique());
        idx.check_consistency(&t); // global pass is skipped while unclaimed
        idx.recompute(&t);
        assert!(idx.global_unique());
        assert_eq!(idx.partition(0).store.patch_rids(), vec![0]);
        assert_eq!(idx.partition(1).store.patch_rids(), vec![0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_v3_nsc_keeps_its_partition_local_claim() {
        let path = std::env::temp_dir().join("pi_checkpoint_legacy_nsc.pidx");
        write_v3(
            &path,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
            &[(4, Some(9), vec![2])],
        );
        let idx = PatchIndex::load_checkpoint(&path).unwrap();
        assert!(idx.global_unique());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn design_migrated_index_roundtrips() {
        // v3 file written as Bitmap over clean (globally unique) data;
        // after loading, the recompute migrates to Identifier (exception
        // rate 0 is below the crossover) and a fresh checkpoint
        // round-trips the migrated design with byte accounting intact.
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            2,
            Partitioning::RoundRobin,
        );
        t.load_partition(0, &[ColumnData::Int(vec![1, 2, 3, 4])]);
        t.load_partition(1, &[ColumnData::Int(vec![5, 6, 7])]);
        t.propagate_all();
        let v3_path = std::env::temp_dir().join("pi_checkpoint_migrate_v3.pidx");
        write_v3(
            &v3_path,
            0,
            Constraint::NearlyUnique,
            Design::Bitmap,
            &[(4, None, vec![]), (3, None, vec![])],
        );
        let mut idx = PatchIndex::load_checkpoint(&v3_path).unwrap();
        assert_eq!(idx.design(), Design::Bitmap);
        assert!(!idx.global_unique());
        idx.recompute(&t);
        assert_eq!(idx.design(), Design::Identifier);
        assert!(idx.global_unique());
        let v5_path = std::env::temp_dir().join("pi_checkpoint_migrate_v5.pidx");
        idx.checkpoint(&v5_path).unwrap();
        let loaded = PatchIndex::load_checkpoint(&v5_path).unwrap();
        assert_eq!(loaded.design(), Design::Identifier);
        assert!(loaded.global_unique());
        assert_eq!(loaded.memory_bytes(), idx.memory_bytes());
        for pid in 0..2 {
            assert_eq!(loaded.partition(pid).store.design(), Design::Identifier);
            assert_eq!(
                loaded.partition(pid).store.patch_rids(),
                idx.partition(pid).store.patch_rids()
            );
        }
        loaded.check_consistency(&t);
        std::fs::remove_file(v3_path).ok();
        std::fs::remove_file(v5_path).ok();
    }

    #[test]
    fn recover_equals_create() {
        let t = table();
        let a = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let b = PatchIndex::recover(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(a.exception_count(), b.exception_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let path = std::env::temp_dir().join("pi_checkpoint_bad.pidx");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(PatchIndex::load_checkpoint(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bit_flip_anywhere_is_rejected() {
        let t = table();
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let clean = idx.checkpoint_bytes();
        PatchIndex::load_checkpoint_bytes(&clean).unwrap();
        // Flipping any single bit past the version word must fail the
        // checksum (flips inside magic/version hit those checks first).
        for pos in [8, 13, 27, clean.len() / 2, clean.len() - 5, clean.len() - 1] {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x04;
            let err = PatchIndex::load_checkpoint_bytes(&corrupt).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "pos {pos}");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let t = table();
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let clean = idx.checkpoint_bytes();
        for cut in [clean.len() - 1, clean.len() - 4, clean.len() / 2, 9] {
            assert!(
                PatchIndex::load_checkpoint_bytes(&clean[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected_even_on_legacy_versions() {
        let path = std::env::temp_dir().join("pi_checkpoint_trailing_v3.pidx");
        write_v3(
            &path,
            0,
            Constraint::NearlyConstant,
            Design::Bitmap,
            &[(3, None, vec![1])],
        );
        // Sanity: the clean legacy file loads.
        PatchIndex::load_checkpoint(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        let err = PatchIndex::load_checkpoint_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing garbage"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_mid_checkpoint_never_corrupts_the_previous_copy() {
        // The satellite-1 regression: overwrite an existing checkpoint
        // with the failpoint fs tripping at every io boundary; after
        // every crash the file must still load as one complete version —
        // the old one or the new one, never a torn mix.
        let t = table();
        let old = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        let new = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
        );
        let path = PathBuf::from("/ckpt/idx.pidx");
        let mut saw_failure = false;
        for fuse in 1..12 {
            for seed in 0..6 {
                let fs = SimFs::new();
                old.checkpoint_via(&fs, &path).unwrap();
                fs.set_fuse(Some(fuse));
                let wrote = new.checkpoint_via(&fs, &path);
                saw_failure |= wrote.is_err();
                fs.crash(fuse * 1000 + seed);
                let loaded = PatchIndex::load_checkpoint_via(&fs, &path)
                    .expect("checkpoint must survive every crash point");
                let complete = [old.constraint(), new.constraint()];
                assert!(complete.contains(&loaded.constraint()));
                if wrote.is_ok() {
                    // The atomic protocol completed: only the new
                    // version may be visible.
                    assert_eq!(loaded.constraint(), new.constraint());
                }
            }
        }
        assert!(saw_failure, "fuse range must cover actual crash points");
    }
}
