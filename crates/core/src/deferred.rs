//! Deferred (batch-amortized) index maintenance.
//!
//! Eager maintenance runs one collision join per update statement. Under
//! heavy update traffic that costs `O(statements)` probe rounds even
//! though the joins could share work. Deferred mode instead *stages*
//! pending inserts and modifies into a per-index dirty set and runs **one
//! merged collision join (NUC) / one LIS extension (NSC)** when the index
//! is flushed (explicitly, or automatically once the pending-row threshold
//! of [`crate::MaintenanceMode::Deferred`] is reached).
//!
//! ## Query correctness while pending
//!
//! Every staged row is conservatively marked as a patch the moment it is
//! staged. PatchIndex scans therefore route all pending rows through the
//! `use_patches` (exception) flow, where no constraint is assumed. That
//! keeps every plan correct whose rewrite only relies on the *kept* flow
//! satisfying the constraint (NSC merge plans, NCC constant folding,
//! exception-scan plans). One NUC invariant is suspended while pending:
//! a staged duplicate's *partner* row is only discovered (and patched) by
//! the flush, so until then a patch value may still appear among kept
//! rows. Plans exploiting that disjointness (e.g. the distinct-count
//! rewrite) can over-count — **flush before such queries**
//! ([`crate::IndexedTable::flush_maintenance`]); `check_consistency`
//! fails in exactly the states where this matters.
//!
//! ## Eager equivalence
//!
//! For NUC and NCC the flush produces **byte-identical patch sets** to
//! running eager maintenance statement by statement. The subtle part is
//! NUC: eager joins run against intermediate table states, so the flush
//! must reconstruct which values each pending row held at which statement.
//! The dirty set stores a small value history per pending row; the flush
//! then
//!
//! 1. joins all distinct historical values of pending rows against the
//!    final table (build side hashed **once**, partition probes in
//!    parallel), counting only hits on *non-pending* rows — those rows
//!    held their value the whole time, so any value match was observable
//!    eagerly; and
//! 2. resolves pending-vs-pending collisions with a sweep over the value
//!    intervals: two pending rows collide exactly if one of them
//!    *acquired* a value (a real statement) while the other *held* the
//!    same value — precisely when an eager join would have seen them.
//!
//! Staged rows that end up collision-free get their conservative patch
//! bit removed again (unless the bit predated staging — eager mode never
//! un-patches either, the "lost optimality, not correctness" rule).
//!
//! NSC flushes run a *single* LIS extension over all pending inserted
//! values per partition — at least as long as the per-statement greedy
//! extensions combined, so deferred NSC may keep strictly *more* rows
//! than eager (never fewer, never an inconsistent state).

use std::collections::{HashMap, HashSet};

use pi_storage::{RowAddr, Table};

use crate::constraint::{Constraint, SortDir};
use crate::index::PatchIndex;
use crate::maintenance::{build_changed_batch_from, extend_sorted_run, gather_values};

/// Value history of one staged (pending) row.
#[derive(Debug, Clone)]
struct RowHistory {
    /// Value the row held before its first in-epoch modify (`None` for
    /// rows inserted in this epoch). Needed because an eager join could
    /// have matched the row's *old* value before the modify ran.
    original: Option<i64>,
    /// Whether the row's patch bit was set before staging (stale patches
    /// must survive the flush, as they do under eager maintenance).
    was_patch: bool,
    /// `(statement seq, value)` — the value the row held from that
    /// statement on; ascending in seq.
    entries: Vec<(u64, i64)>,
}

/// One staged update statement, in arrival order.
#[derive(Debug, Clone)]
enum PendingStmt {
    /// `(pid, rid, value)` of rows appended by one insert statement.
    Insert { rows: Vec<(usize, u64, i64)> },
    /// `(rid, value)` snapshots taken right after one modify statement.
    Modify { pid: usize, rows: Vec<(u64, i64)> },
}

/// The per-index dirty set of deferred maintenance.
#[derive(Debug, Clone)]
pub(crate) struct PendingMaintenance {
    /// Per-partition staged rows with their value histories.
    rows: Vec<HashMap<u64, RowHistory>>,
    /// Pre-modify snapshots recorded by `stage_modify_pre`, consumed by
    /// `stage_modify` for rows touched the first time.
    pre: HashMap<(usize, u64), (i64, bool)>,
    /// Statement log (drives NSC/NCC replay and NUC statement ordering).
    stmts: Vec<PendingStmt>,
    /// Total staged row-events (the auto-flush trigger counts these).
    staged_rows: usize,
}

impl PendingMaintenance {
    fn new(partitions: usize) -> Self {
        PendingMaintenance {
            rows: (0..partitions).map(|_| HashMap::new()).collect(),
            pre: HashMap::new(),
            stmts: Vec::new(),
            staged_rows: 0,
        }
    }
}

impl PatchIndex {
    fn pending_mut(&mut self) -> &mut PendingMaintenance {
        let partitions = self.partition_count();
        self.pending
            .get_or_insert_with(|| PendingMaintenance::new(partitions))
    }

    /// Whether deferred maintenance work is staged.
    pub fn has_pending(&self) -> bool {
        self.pending.as_ref().is_some_and(|p| !p.stmts.is_empty())
    }

    /// Number of staged row-events awaiting a flush.
    pub fn pending_rows(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| p.staged_rows)
    }

    /// Stages an insert statement instead of maintaining eagerly: the
    /// stores grow to cover the appended rows immediately (so rowID spaces
    /// stay aligned) and the new rows are conservatively marked as patches;
    /// the collision join / LIS extension is deferred to
    /// [`PatchIndex::flush`]. Must run directly after `table.insert_rows`.
    pub fn stage_insert(&mut self, table: &Table, inserted: &[RowAddr]) {
        if inserted.is_empty() {
            return;
        }
        let col = self.column();
        let mut per_part: Vec<Vec<usize>> = vec![Vec::new(); table.partition_count()];
        for addr in inserted {
            per_part[addr.partition].push(addr.rid);
        }
        self.cover_inserted(table, &per_part);
        let pending = self.pending_mut();
        let seq = pending.stmts.len() as u64;
        let mut stmt_rows: Vec<(usize, u64, i64)> = Vec::with_capacity(inserted.len());
        for (pid, rids) in per_part.iter().enumerate() {
            if rids.is_empty() {
                continue;
            }
            let values = gather_values(table.partition(pid), col, rids);
            for (&rid, &v) in rids.iter().zip(&values) {
                let rid = rid as u64;
                stmt_rows.push((pid, rid, v));
                pending.rows[pid].insert(
                    rid,
                    RowHistory {
                        original: None,
                        was_patch: false,
                        entries: vec![(seq, v)],
                    },
                );
            }
        }
        pending.stmts.push(PendingStmt::Insert { rows: stmt_rows });
        pending.staged_rows += inserted.len();
        // Staged row-events count as maintained at stage time; the flush
        // only merges the already-counted work.
        self.note_maintained(inserted.len() as u64);
        // Conservative routing: pending rows flow as exceptions until the
        // flush decides their fate.
        for (pid, rids) in per_part.iter().enumerate() {
            if !rids.is_empty() {
                let staged: Vec<u64> = rids.iter().map(|&r| r as u64).collect();
                self.partition_mut(pid).store.add_patches(&staged);
            }
        }
    }

    /// First half of staging a modify: must run **before** `table.modify`,
    /// to snapshot the old value (and patch-bit state) of rows touched for
    /// the first time in this epoch.
    pub fn stage_modify_pre(&mut self, table: &Table, pid: usize, rids: &[usize]) {
        let col = self.column();
        let fresh: Vec<usize> = {
            let pending = self.pending_mut();
            rids.iter()
                .copied()
                .filter(|&r| {
                    !pending.rows[pid].contains_key(&(r as u64))
                        && !pending.pre.contains_key(&(pid, r as u64))
                })
                .collect()
        };
        if fresh.is_empty() {
            return;
        }
        let old_values = gather_values(table.partition(pid), col, &fresh);
        let was_patch: Vec<bool> = fresh
            .iter()
            .map(|&r| self.partition(pid).store.contains(r as u64))
            .collect();
        let pending = self.pending_mut();
        for ((&rid, &old), &was) in fresh.iter().zip(&old_values).zip(&was_patch) {
            pending.pre.insert((pid, rid as u64), (old, was));
        }
    }

    /// Second half of staging a modify: must run **after** `table.modify`
    /// (and after [`PatchIndex::stage_modify_pre`]); snapshots the new
    /// values and conservatively marks the rows as patches.
    pub fn stage_modify(&mut self, table: &Table, pid: usize, rids: &[usize]) {
        if rids.is_empty() {
            return;
        }
        let col = self.column();
        let values = gather_values(table.partition(pid), col, rids);
        let pending = self.pending_mut();
        let seq = pending.stmts.len() as u64;
        let mut stmt_rows: Vec<(u64, i64)> = Vec::with_capacity(rids.len());
        for (&rid, &v) in rids.iter().zip(&values) {
            let rid = rid as u64;
            let pre = &mut pending.pre;
            let hist = pending.rows[pid].entry(rid).or_insert_with(|| {
                let (original, was_patch) = pre
                    .remove(&(pid, rid))
                    .expect("stage_modify_pre must run (before table.modify) for new rows");
                RowHistory {
                    original: Some(original),
                    was_patch,
                    entries: Vec::new(),
                }
            });
            // A rowID repeated within one statement (last-wins, and the
            // values were gathered post-statement) must not create a
            // second same-seq history entry — it would invert intervals.
            if hist.entries.last().is_some_and(|&(s, _)| s == seq) {
                continue;
            }
            stmt_rows.push((rid, v));
            hist.entries.push((seq, v));
        }
        pending.stmts.push(PendingStmt::Modify {
            pid,
            rows: stmt_rows,
        });
        pending.staged_rows += rids.len();
        self.note_maintained(rids.len() as u64);
        let staged: Vec<u64> = rids.iter().map(|&r| r as u64).collect();
        self.partition_mut(pid).store.add_patches(&staged);
    }

    /// Runs all staged maintenance in one merged round and clears the
    /// dirty set. No-op when nothing is pending.
    pub fn flush(&mut self, table: &mut Table) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        if pending.stmts.is_empty() {
            return;
        }
        match self.constraint() {
            Constraint::NearlyUnique => self.flush_nuc(table, pending),
            Constraint::NearlySorted(dir) => self.flush_nsc(pending, dir),
            Constraint::NearlyConstant => self.flush_ncc(pending),
        }
    }

    /// NUC flush: one merged collision join (build side hashed once,
    /// partition probes in parallel) plus the pending-vs-pending interval
    /// sweep; see the module docs for why this reproduces eager results.
    fn flush_nuc(&mut self, table: &mut Table, pending: PendingMaintenance) {
        // Sorted pending rowIDs per partition — the probe-side filter.
        let dirty: Vec<Vec<u64>> = pending
            .rows
            .iter()
            .map(|m| {
                let mut v: Vec<u64> = m.keys().copied().collect();
                v.sort_unstable();
                v
            })
            .collect();
        // Build side: every distinct historical (pid, rid, value) a
        // pending row exposed to some eager-visible statement.
        let mut entries: Vec<(usize, u64, i64)> = Vec::new();
        for (pid, rows) in pending.rows.iter().enumerate() {
            for (&rid, hist) in rows {
                // Distinct values only; sort+dedup keeps a hot row with a
                // long history O(k log k).
                let mut values: Vec<i64> = hist.entries.iter().map(|&(_, v)| v).collect();
                values.sort_unstable();
                values.dedup();
                entries.extend(values.into_iter().map(|v| (pid, rid, v)));
            }
        }
        let build_batch = build_changed_batch_from(&entries);
        let mut genuine: HashSet<(usize, u64)> = self
            .collision_round(table, build_batch, Some(&dirty))
            .into_iter()
            .collect();
        pending_cross_collisions(&pending.rows, &mut genuine);
        self.release_clean_staged(&pending, |pid, rid| genuine.contains(&(pid, rid)));
    }

    /// NSC flush: modify-staged rows become patches; all pending inserted
    /// values run through **one** LIS extension per partition.
    fn flush_nsc(&mut self, pending: PendingMaintenance, dir: SortDir) {
        let partitions = self.partition_count();
        let mut inserts: Vec<Vec<(u64, i64)>> = vec![Vec::new(); partitions];
        let mut genuine: Vec<HashSet<u64>> = vec![HashSet::new(); partitions];
        for stmt in &pending.stmts {
            match stmt {
                PendingStmt::Insert { rows } => {
                    for &(pid, rid, v) in rows {
                        inserts[pid].push((rid, v));
                    }
                }
                PendingStmt::Modify { pid, rows } => {
                    genuine[*pid].extend(rows.iter().map(|&(rid, _)| rid));
                }
            }
        }
        for (pid, ins) in inserts.iter().enumerate() {
            if ins.is_empty() {
                continue;
            }
            let values: Vec<i64> = ins.iter().map(|&(_, v)| v).collect();
            let part = self.partition_mut(pid);
            let (keep, last) = extend_sorted_run(&values, part.last_sorted, dir);
            if last.is_some() {
                part.last_sorted = last;
            }
            for (i, &(rid, _)) in ins.iter().enumerate() {
                if !keep.contains(&i) {
                    genuine[pid].insert(rid);
                }
            }
        }
        self.release_clean_staged(&pending, |pid, rid| genuine[pid].contains(&rid));
    }

    /// NCC flush: replays the statement log in order (constant adoption on
    /// first insert into an empty partition is order-sensitive); values
    /// are statement-time snapshots, so results match eager exactly.
    fn flush_ncc(&mut self, pending: PendingMaintenance) {
        let mut genuine: Vec<HashSet<u64>> = vec![HashSet::new(); self.partition_count()];
        for stmt in &pending.stmts {
            match stmt {
                PendingStmt::Insert { rows } => {
                    for &(pid, rid, v) in rows {
                        let part = self.partition_mut(pid);
                        let constant = *part.last_sorted.get_or_insert(v);
                        if v != constant {
                            genuine[pid].insert(rid);
                        }
                    }
                }
                PendingStmt::Modify { pid, rows } => {
                    let constant = self.partition(*pid).last_sorted;
                    for &(rid, v) in rows {
                        if constant != Some(v) {
                            genuine[*pid].insert(rid);
                        }
                    }
                }
            }
        }
        self.release_clean_staged(&pending, |pid, rid| genuine[pid].contains(&rid));
    }

    /// Removes the conservative patch bit of every staged row that the
    /// flush did not confirm as a genuine exception — unless the bit
    /// predated staging (eager maintenance never un-patches either).
    fn release_clean_staged<F: Fn(usize, u64) -> bool>(
        &mut self,
        pending: &PendingMaintenance,
        genuine: F,
    ) {
        for (pid, rows) in pending.rows.iter().enumerate() {
            let mut clear: Vec<u64> = rows
                .iter()
                .filter(|(&rid, hist)| !hist.was_patch && !genuine(pid, rid))
                .map(|(&rid, _)| rid)
                .collect();
            if !clear.is_empty() {
                clear.sort_unstable();
                self.partition_mut(pid).store.remove_patches(&clear);
            }
        }
    }
}

/// Pending-vs-pending NUC collisions: a sweep over per-value timelines.
///
/// Each pending row contributes one interval per value it held:
/// `original` values start "before time" (they can only be *collided
/// into*, never trigger — two untouched duplicates were patched at index
/// creation, not by update maintenance), entry values start at their
/// statement. Two rows collide exactly when a real statement start falls
/// inside another row's interval of the same value — then *all* rows
/// holding the value at that moment are patched, matching what the eager
/// per-statement join would have produced.
fn pending_cross_collisions(
    rows: &[HashMap<u64, RowHistory>],
    genuine: &mut HashSet<(usize, u64)>,
) {
    struct Interval {
        pid: usize,
        rid: u64,
        /// `2 * (seq + 1)` for statement starts, `0` for original values.
        start_key: u64,
        /// `2 * end_seq + 1` (sorts before same-seq starts), `u64::MAX`
        /// when the value is still current.
        end_key: u64,
    }
    let mut by_value: HashMap<i64, Vec<Interval>> = HashMap::new();
    for (pid, map) in rows.iter().enumerate() {
        for (&rid, hist) in map {
            debug_assert!(!hist.entries.is_empty(), "staged row without value entries");
            if let (Some(orig), Some(&(first_seq, _))) = (hist.original, hist.entries.first()) {
                by_value.entry(orig).or_default().push(Interval {
                    pid,
                    rid,
                    start_key: 0,
                    end_key: 2 * first_seq + 1,
                });
            }
            for (i, &(seq, v)) in hist.entries.iter().enumerate() {
                let end_key = match hist.entries.get(i + 1) {
                    Some(&(next_seq, _)) => 2 * next_seq + 1,
                    None => u64::MAX,
                };
                by_value.entry(v).or_default().push(Interval {
                    pid,
                    rid,
                    start_key: 2 * (seq + 1),
                    end_key,
                });
            }
        }
    }
    for intervals in by_value.values() {
        if intervals.len() < 2 {
            continue;
        }
        // Events: (key, is_start, interval). Ends sort before starts at
        // the same key (false < true), so a value released and re-acquired
        // within one statement never self-collides.
        let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(intervals.len() * 2);
        for (i, iv) in intervals.iter().enumerate() {
            events.push((iv.start_key, true, i));
            if iv.end_key != u64::MAX {
                events.push((iv.end_key, false, i));
            }
        }
        events.sort_unstable();
        let mut alive = vec![false; intervals.len()];
        let mut total_active = 0usize;
        // Active intervals whose row is not yet patched (lazily pruned).
        let mut unpatched: Vec<usize> = Vec::new();
        for (key, is_start, i) in events {
            let iv = &intervals[i];
            if !is_start {
                alive[i] = false;
                total_active -= 1;
                continue;
            }
            let real_statement = key > 0;
            if real_statement && total_active > 0 {
                genuine.insert((iv.pid, iv.rid));
                for j in unpatched.drain(..) {
                    if alive[j] {
                        genuine.insert((intervals[j].pid, intervals[j].rid));
                    }
                }
            }
            alive[i] = true;
            total_active += 1;
            if !genuine.contains(&(iv.pid, iv.rid)) {
                unpatched.push(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(original: Option<i64>, entries: Vec<(u64, i64)>) -> RowHistory {
        RowHistory {
            original,
            was_patch: false,
            entries,
        }
    }

    fn sweep(rows: Vec<HashMap<u64, RowHistory>>) -> Vec<(usize, u64)> {
        let mut genuine = HashSet::new();
        pending_cross_collisions(&rows, &mut genuine);
        let mut v: Vec<(usize, u64)> = genuine.into_iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn simultaneous_inserts_of_same_value_collide() {
        let mut m = HashMap::new();
        m.insert(0u64, hist(None, vec![(0, 7)]));
        m.insert(1u64, hist(None, vec![(0, 7)]));
        assert_eq!(sweep(vec![m]), vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn later_insert_collides_with_held_value_across_partitions() {
        let mut p0 = HashMap::new();
        p0.insert(0u64, hist(None, vec![(0, 7)]));
        let mut p1 = HashMap::new();
        p1.insert(5u64, hist(None, vec![(2, 7)]));
        assert_eq!(sweep(vec![p0, p1]), vec![(0, 0), (1, 5)]);
    }

    #[test]
    fn value_moved_away_before_second_insert_does_not_collide() {
        // Row 0: inserts 7 at seq 0, modified to 8 at seq 1.
        // Row 1: inserts 7 at seq 2 — row 0 no longer holds 7.
        let mut m = HashMap::new();
        m.insert(0u64, hist(None, vec![(0, 7), (1, 8)]));
        m.insert(1u64, hist(None, vec![(2, 7)]));
        assert!(sweep(vec![m]).is_empty());
    }

    #[test]
    fn original_value_is_collided_into_but_never_triggers() {
        // Row 0 originally held 7 (first touched at seq 5, moving it to 9).
        // Row 1 inserts 7 at seq 1 — while row 0 still held it: collide.
        let mut m = HashMap::new();
        m.insert(0u64, hist(Some(7), vec![(5, 9)]));
        m.insert(1u64, hist(None, vec![(1, 7)]));
        assert_eq!(sweep(vec![m]), vec![(0, 0), (0, 1)]);

        // Two rows merely sharing an original value never collide here —
        // they were patched at index creation, not by maintenance.
        let mut m = HashMap::new();
        m.insert(0u64, hist(Some(7), vec![(3, 1)]));
        m.insert(1u64, hist(Some(7), vec![(4, 2)]));
        assert!(sweep(vec![m]).is_empty());
    }

    #[test]
    fn release_and_reacquire_within_one_statement_does_not_self_collide() {
        // Row 0 holds 7 until seq 2, row 1 acquires 7 at seq 2: the end
        // sorts first, so no overlap — matches the eager join, which sees
        // the post-statement state.
        let mut m = HashMap::new();
        m.insert(0u64, hist(None, vec![(0, 7), (2, 8)]));
        m.insert(1u64, hist(None, vec![(2, 7)]));
        assert!(sweep(vec![m]).is_empty());
    }

    #[test]
    fn transient_overlap_detected() {
        // Row 0 holds 7 over [0, 3); row 1 acquires 7 at seq 1 and leaves
        // at seq 2 — overlap with a real start: both patched, even though
        // neither holds 7 at flush time.
        let mut m = HashMap::new();
        m.insert(0u64, hist(None, vec![(0, 7), (3, 1)]));
        m.insert(1u64, hist(None, vec![(1, 7), (2, 2)]));
        assert_eq!(sweep(vec![m]), vec![(0, 0), (0, 1)]);
    }
}
