//! Approximate constraint kinds.

/// Sort direction of a nearly sorted column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortDir {
    /// Non-decreasing.
    Asc,
    /// Non-increasing.
    Desc,
}

/// An approximate constraint materialized by a PatchIndex (paper,
/// Section 3.1): satisfied by all tuples except the set of patches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// Nearly unique column (NUC). The patch set holds *all* occurrences of
    /// non-unique values, so excluding patches leaves values that are both
    /// unique and disjoint from patch values — the property the distinct
    /// rewrite of Section 3.3 relies on (and the invariant the insert
    /// handling of Section 5.1 maintains).
    NearlyUnique,
    /// Nearly sorted column (NSC): excluding patches leaves a sorted
    /// sequence in the given direction. The patch set is the complement of
    /// a longest sorted subsequence.
    NearlySorted(SortDir),
    /// Nearly constant column (NCC): excluding patches, every value equals
    /// the majority value. One of the additional constraints the paper's
    /// Section 5.5 / future work sketches; implemented here to demonstrate
    /// the generic PatchIndex interface (constraint-specific initial
    /// filling + insert/modify/delete support + an optimizer rule).
    NearlyConstant,
}

impl Constraint {
    /// Short display name used in harness output.
    pub fn name(&self) -> &'static str {
        match self {
            Constraint::NearlyUnique => "NUC",
            Constraint::NearlySorted(_) => "NSC",
            Constraint::NearlyConstant => "NCC",
        }
    }
}

/// Which physical patch-set representation an index uses (paper,
/// Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Design {
    /// One bit per tuple in a sharded bitmap: constant memory, the choice
    /// recommended by the paper's evaluation.
    #[default]
    Bitmap,
    /// Sorted list of 64-bit rowIDs: sparse storage, cheaper below
    /// exception rate 1/64.
    Identifier,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Constraint::NearlyUnique.name(), "NUC");
        assert_eq!(Constraint::NearlySorted(SortDir::Asc).name(), "NSC");
        assert_eq!(Constraint::NearlyConstant.name(), "NCC");
    }

    #[test]
    fn default_design_is_bitmap() {
        assert_eq!(Design::default(), Design::Bitmap);
    }
}
