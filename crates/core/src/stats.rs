//! Memory-consumption model (paper, Table 3).
//!
//! | approach | bytes |
//! |---|---|
//! | PI_bitmap | `t/8 · 1.0039` (one bit per tuple + sharding overhead) |
//! | PI_identifier | `e · t · 8` (64-bit rowIDs) |
//! | materialized view (NUC) | `(d + (1 − e) · t) · 8` with `d` duplicate values |

use pi_bitmap::DEFAULT_SHARD_BITS;

use crate::constraint::Design;

/// Bytes used by a bitmap-based PatchIndex over `t` tuples, including the
/// sharded start-value overhead (0.39% at the default 2^14 shard size).
pub fn pi_bitmap_bytes(t: u64) -> f64 {
    let overhead = 1.0 + 64.0 / DEFAULT_SHARD_BITS as f64;
    t as f64 / 8.0 * overhead
}

/// Bytes used by an identifier-based PatchIndex at exception rate `e`.
pub fn pi_identifier_bytes(e: f64, t: u64) -> f64 {
    e * t as f64 * 8.0
}

/// Bytes used by the NUC materialized view: all distinct values — the
/// `dup_values` duplicate values plus the `(1 − e) · t` unique ones — at 8
/// bytes each (paper's example: 100K duplicate values).
pub fn mat_view_bytes(e: f64, t: u64, dup_values: u64) -> f64 {
    (dup_values as f64 + (1.0 - e) * t as f64) * 8.0
}

/// Exception rate above which the bitmap design uses less memory than the
/// identifier design: 1/(8·8) ≈ 1.56% (paper, Section 3.2).
pub fn design_crossover_rate() -> f64 {
    (1.0 + 64.0 / DEFAULT_SHARD_BITS as f64) / 64.0
}

/// The physical design the Table-3 memory model prefers at an exception
/// rate (patches/rows — *not* the match fraction `e`): identifiers below
/// the crossover, the bitmap above it. Create (via the advisor) and
/// recompute both consult this, so a long-lived index migrates designs
/// when drift carries its exception rate across the crossover.
pub fn preferred_design(exception_rate: f64) -> Design {
    if exception_rate > design_crossover_rate() {
        Design::Bitmap
    } else {
        Design::Identifier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper reports decimal units (80 MB for 8e7 bytes, etc.).
    const GB: f64 = 1e9;
    const MB: f64 = 1e6;

    #[test]
    fn table3_first_row() {
        // Paper: t = 1e9, e = 0.01 -> 125.48 MB vs 80 MB vs 7.9 GB.
        let t = 1_000_000_000u64;
        assert!((pi_bitmap_bytes(t) / MB - 125.48).abs() < 0.5);
        assert!((pi_identifier_bytes(0.01, t) / MB - 80.0).abs() < 0.01);
        assert!((mat_view_bytes(0.01, t, 100_000) / GB - 7.9).abs() < 0.05);
    }

    #[test]
    fn table3_second_row() {
        // t = 1e9, e = 0.2 -> bitmap unchanged, identifier 1.6 GB, view 6.4 GB.
        let t = 1_000_000_000u64;
        assert!((pi_bitmap_bytes(t) / MB - 125.48).abs() < 0.5);
        assert!((pi_identifier_bytes(0.2, t) / GB - 1.6).abs() < 0.01);
        assert!((mat_view_bytes(0.2, t, 100_000) / GB - 6.4).abs() < 0.01);
    }

    #[test]
    fn crossover_near_paper_value() {
        // Paper, Section 3.2 / 6.2.2: e ≈ 1.56% (refined to 1.58% with the
        // sharding overhead).
        let c = design_crossover_rate();
        assert!(c > 0.0156 && c < 0.0159, "crossover {c}");
        let t = 10_000_000u64;
        assert!(pi_identifier_bytes(c * 0.9, t) < pi_bitmap_bytes(t));
        assert!(pi_identifier_bytes(c * 1.1, t) > pi_bitmap_bytes(t));
    }

    #[test]
    fn preferred_design_flips_at_the_crossover() {
        let c = design_crossover_rate();
        assert_eq!(preferred_design(0.0), Design::Identifier);
        assert_eq!(preferred_design(c * 0.9), Design::Identifier);
        assert_eq!(preferred_design(c * 1.1), Design::Bitmap);
        assert_eq!(preferred_design(1.0), Design::Bitmap);
    }

    #[test]
    fn bitmap_memory_independent_of_e() {
        let t = 1_000_000u64;
        assert_eq!(pi_bitmap_bytes(t), pi_bitmap_bytes(t));
        assert!(pi_bitmap_bytes(2 * t) > pi_bitmap_bytes(t));
    }
}
