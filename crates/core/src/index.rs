//! The PatchIndex: a materialized approximate constraint.

use pi_exec::ops::patch_select::PatchLookup;
use pi_exec::parallel::per_partition;
use pi_storage::Table;

use crate::constraint::{Constraint, Design, SortDir};
use crate::deferred::PendingMaintenance;
use crate::discovery::{discover_partition, partition_column_values};
use crate::maintenance::MaintenanceStats;
use crate::store::PatchStore;

/// Per-partition index state. Partitioning is transparent: one patch store
/// per partition, all operations partition-local (paper, Section 3.2).
#[derive(Debug)]
pub struct PartitionIndex {
    /// The patch set.
    pub store: PatchStore,
    /// NSC: last value of the retained sorted subsequence (the anchor new
    /// inserts extend, paper Section 5.1).
    pub last_sorted: Option<i64>,
}

/// A PatchIndex over one column of a partitioned table.
#[derive(Debug)]
pub struct PatchIndex {
    column: usize,
    constraint: Constraint,
    design: Design,
    parts: Vec<PartitionIndex>,
    stats: MaintenanceStats,
    pub(crate) pending: Option<PendingMaintenance>,
}

impl PatchIndex {
    /// Discovers the constraint on `col` of every partition (in parallel)
    /// and materializes the patch sets.
    pub fn create(table: &Table, col: usize, constraint: Constraint, design: Design) -> Self {
        let parts = per_partition(table, |p| {
            let r = discover_partition(p, col, constraint);
            PartitionIndex {
                store: PatchStore::new(design, r.nrows, &r.patches),
                last_sorted: r.last_sorted,
            }
        });
        PatchIndex {
            column: col,
            constraint,
            design,
            parts,
            stats: MaintenanceStats::default(),
            pending: None,
        }
    }

    /// Builds an index from externally computed patch sets (checkpoint
    /// recovery).
    pub(crate) fn from_parts(
        column: usize,
        constraint: Constraint,
        design: Design,
        parts: Vec<PartitionIndex>,
    ) -> Self {
        PatchIndex {
            column,
            constraint,
            design,
            parts,
            stats: MaintenanceStats::default(),
            pending: None,
        }
    }

    /// Cumulative collision-join counters (see [`MaintenanceStats`]).
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.stats
    }

    pub(crate) fn set_maintenance_stats(&mut self, stats: MaintenanceStats) {
        self.stats = stats;
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// The materialized constraint.
    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    /// The physical design.
    pub fn design(&self) -> Design {
        self.design
    }

    /// Number of partition-local indexes.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Partition-local state.
    pub fn partition(&self, pid: usize) -> &PartitionIndex {
        &self.parts[pid]
    }

    /// Mutable partition-local state (maintenance).
    pub(crate) fn partition_mut(&mut self, pid: usize) -> &mut PartitionIndex {
        &mut self.parts[pid]
    }

    /// Patch lookup handle for query execution.
    pub fn lookup(&self, pid: usize) -> &dyn PatchLookup {
        self.parts[pid].store.as_lookup()
    }

    /// Total tuples covered.
    pub fn nrows(&self) -> u64 {
        self.parts.iter().map(|p| p.store.nrows()).sum()
    }

    /// Total patches.
    pub fn exception_count(&self) -> u64 {
        self.parts.iter().map(|p| p.store.patch_count()).sum()
    }

    /// Global exception rate `e` (paper, Section 3.1).
    pub fn exception_rate(&self) -> f64 {
        let n = self.nrows();
        if n == 0 {
            return 0.0;
        }
        self.exception_count() as f64 / n as f64
    }

    /// Heap bytes of all patch stores.
    pub fn memory_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.store.memory_bytes()).sum()
    }

    /// Rebuilds the index from scratch (the global recomputation the
    /// monitoring policy triggers once updates eroded optimality too far).
    /// Any deferred maintenance still pending is discarded — the fresh
    /// discovery supersedes it. Maintenance stats survive.
    pub fn recompute(&mut self, table: &Table) {
        let stats = self.stats;
        *self = PatchIndex::create(table, self.column, self.constraint, self.design);
        self.stats = stats;
    }

    /// Recomputes once the exception rate exceeds `threshold`; returns
    /// whether a recompute ran (paper, Sections 5.1/5.3: "monitoring the
    /// exception rate and triggering a global recomputation").
    pub fn maybe_recompute(&mut self, table: &Table, threshold: f64) -> bool {
        if self.exception_rate() > threshold {
            self.recompute(table);
            true
        } else {
            false
        }
    }

    /// Condenses underlying bitmaps whose utilization fell below
    /// `threshold`; returns how many partitions condensed.
    pub fn maybe_condense(&mut self, threshold: f64) -> usize {
        self.parts.iter_mut().map(|p| p.store.maybe_condense(threshold)).filter(|&c| c).count()
    }

    /// Verifies the core invariant on every partition: excluding the
    /// patches, the remaining values satisfy the constraint (and for NUC
    /// are disjoint from patch values). Test / debugging aid — full scan.
    pub fn check_consistency(&self, table: &Table) {
        for (pid, part) in self.parts.iter().enumerate() {
            let p = table.partition(pid);
            assert_eq!(
                part.store.nrows() as usize,
                p.visible_len(),
                "partition {pid}: index covers {} rows, table has {}",
                part.store.nrows(),
                p.visible_len()
            );
            let values = partition_column_values(p, self.column);
            let lookup = part.store.as_lookup();
            let kept: Vec<i64> = values
                .iter()
                .enumerate()
                .filter(|(i, _)| !lookup.is_patch(*i as u64))
                .map(|(_, v)| *v)
                .collect();
            match self.constraint {
                Constraint::NearlyUnique => {
                    let mut seen = pi_exec::hash::int_set();
                    for v in &kept {
                        assert!(seen.insert(*v), "partition {pid}: duplicate kept value {v}");
                    }
                    let patch_vals: Vec<i64> = values
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| lookup.is_patch(*i as u64))
                        .map(|(_, v)| *v)
                        .collect();
                    for v in patch_vals {
                        assert!(
                            !seen.contains(&v),
                            "partition {pid}: kept value {v} also appears among patches"
                        );
                    }
                }
                Constraint::NearlySorted(SortDir::Asc) => {
                    assert!(
                        kept.windows(2).all(|w| w[0] <= w[1]),
                        "partition {pid}: kept values not ascending"
                    );
                }
                Constraint::NearlySorted(SortDir::Desc) => {
                    assert!(
                        kept.windows(2).all(|w| w[0] >= w[1]),
                        "partition {pid}: kept values not descending"
                    );
                }
                Constraint::NearlyConstant => {
                    if let Some(&first) = kept.first() {
                        assert!(
                            kept.iter().all(|&v| v == first),
                            "partition {pid}: kept values not constant"
                        );
                        if let Some(c) = part.last_sorted {
                            assert_eq!(first, c, "partition {pid}: constant anchor drifted");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table(values_per_part: Vec<Vec<i64>>) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            values_per_part.len(),
            Partitioning::RoundRobin,
        );
        for (pid, vals) in values_per_part.into_iter().enumerate() {
            t.load_partition(pid, &[ColumnData::Int(vals)]);
        }
        t.propagate_all();
        t
    }

    #[test]
    fn create_nuc_index() {
        let t = table(vec![vec![1, 2, 2, 3], vec![5, 5, 5, 6]]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(idx.exception_count(), 5);
        assert!((idx.exception_rate() - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![1, 2]);
        idx.check_consistency(&t);
    }

    #[test]
    fn create_nsc_index_both_designs() {
        let t = table(vec![vec![1, 2, 99, 3, 4]]);
        for design in [Design::Bitmap, Design::Identifier] {
            let idx =
                PatchIndex::create(&t, 0, Constraint::NearlySorted(SortDir::Asc), design);
            assert_eq!(idx.partition(0).store.patch_rids(), vec![2]);
            assert_eq!(idx.partition(0).last_sorted, Some(4));
            idx.check_consistency(&t);
        }
    }

    #[test]
    fn exception_rate_zero_for_clean_data() {
        let t = table(vec![(0..100).collect()]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
        assert_eq!(idx.exception_rate(), 0.0);
        let nuc = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(nuc.exception_rate(), 0.0);
    }

    #[test]
    fn recompute_threshold() {
        let t = table(vec![vec![1, 1, 2, 3]]);
        let mut idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert!(!idx.maybe_recompute(&t, 0.9));
        assert!(idx.maybe_recompute(&t, 0.2));
        idx.check_consistency(&t);
    }

    #[test]
    #[should_panic(expected = "index covers")]
    fn consistency_detects_row_count_drift() {
        let mut t = table(vec![vec![1, 2, 3]]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        t.insert_rows(&[vec![pi_storage::Value::Int(9)]]);
        idx.check_consistency(&t);
    }
}
