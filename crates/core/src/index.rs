//! The PatchIndex: a materialized approximate constraint.

use pi_exec::ops::patch_select::PatchLookup;
use pi_exec::parallel::per_partition;
use pi_storage::Table;

use crate::constraint::{Constraint, Design, SortDir};
use crate::deferred::PendingMaintenance;
use crate::discovery::{
    cross_partition_nuc_residual, discover_values, partition_column_values, DiscoveryResult,
};
use crate::maintenance::MaintenanceStats;
use crate::stats::preferred_design;
use crate::store::PatchStore;

/// Per-partition index state. Partitioning is transparent: one patch store
/// per partition, all operations partition-local (paper, Section 3.2).
#[derive(Debug, Clone)]
pub struct PartitionIndex {
    /// The patch set.
    pub store: PatchStore,
    /// NSC: last value of the retained sorted subsequence (the anchor new
    /// inserts extend, paper Section 5.1).
    pub last_sorted: Option<i64>,
}

/// The index state captured right after a create/recompute — the
/// reference point error drift is measured against (the paper's
/// reorganization monitoring works off exactly this comparison: "updates
/// eroded optimality too far").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBaseline {
    /// Match fraction `e = 1 − patches/rows` at create/recompute time.
    pub match_fraction: f64,
    /// Patch count at create/recompute time.
    pub patches: u64,
    /// Value of [`crate::MaintenanceStats::maintained_rows`] at
    /// create/recompute time (drift rates divide by the rows maintained
    /// since, i.e. the counter's growth past this snapshot).
    pub maintained_rows: u64,
}

impl Default for DriftBaseline {
    fn default() -> Self {
        DriftBaseline {
            match_fraction: 1.0,
            patches: 0,
            maintained_rows: 0,
        }
    }
}

/// Optimizer feedback for one index: how often query planning bound it
/// and how much estimated cost the rewrites saved over the unrewritten
/// plans (planner cost units). Written by the `QueryEngine` facade,
/// read by the advisor's drop/budget rules. Survives recomputes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryFeedback {
    /// Queries whose chosen plan bound this index.
    pub times_bound: u64,
    /// Cumulative estimated cost saved vs the unrewritten plans.
    pub est_cost_saved: f64,
    /// Queries whose execution was wall-clock measured (a subset of
    /// `times_bound`: EXPLAIN-style planning binds without executing).
    pub measured_queries: u64,
    /// Cumulative measured execution time of those queries, in
    /// microseconds.
    pub actual_micros: f64,
    /// Cumulative *estimated* cost of the chosen plans behind
    /// `actual_micros` — the denominator of the estimate-vs-actual
    /// calibration ratio ([`QueryFeedback::micros_per_cost_unit`]).
    pub est_cost_executed: f64,
}

impl QueryFeedback {
    /// Measured microseconds per planner cost unit — how the cost model's
    /// absolute scale maps to wall-clock on this machine, grounded in the
    /// queries that actually ran. `None` until a measured query executed.
    pub fn micros_per_cost_unit(&self) -> Option<f64> {
        (self.est_cost_executed > 0.0).then(|| self.actual_micros / self.est_cost_executed)
    }
}

/// A PatchIndex over one column of a partitioned table.
///
/// `Clone` deep-copies the patch stores (and any staged deferred work) —
/// the snapshot layer shares indexes behind `Arc` and pays this copy only
/// when maintenance mutates an index a live snapshot still references.
#[derive(Debug, Clone)]
pub struct PatchIndex {
    column: usize,
    constraint: Constraint,
    design: Design,
    parts: Vec<PartitionIndex>,
    stats: MaintenanceStats,
    baseline: DriftBaseline,
    feedback: QueryFeedback,
    global_unique: bool,
    pub(crate) pending: Option<PendingMaintenance>,
}

impl PatchIndex {
    /// Discovers the constraint on `col` of every partition (in parallel)
    /// and materializes the patch sets. For NUC the per-partition patch
    /// sets are merged with the cross-partition residual (see
    /// [`cross_partition_nuc_residual`]) so the kept values are *globally*
    /// unique, not just unique within their partition.
    pub fn create(table: &Table, col: usize, constraint: Constraint, design: Design) -> Self {
        Self::build(table, col, constraint, Some(design))
    }

    /// Discovery shared by create and recompute. `design: None` lets the
    /// Table-3 memory model pick the store design from the freshly
    /// discovered exception rate (the design-migrating recompute path).
    fn build(table: &Table, col: usize, constraint: Constraint, design: Option<Design>) -> Self {
        let mut discovered: Vec<(DiscoveryResult, Vec<i64>)> = per_partition(table, |p| {
            let values = partition_column_values(p, col);
            (discover_values(&values, constraint), values)
        });
        if constraint == Constraint::NearlyUnique && discovered.len() > 1 {
            let histories: Vec<&[i64]> = discovered.iter().map(|(_, v)| v.as_slice()).collect();
            let residual = cross_partition_nuc_residual(&histories);
            for ((r, _), extra) in discovered.iter_mut().zip(residual) {
                if !extra.is_empty() {
                    r.patches.extend(extra);
                    r.patches.sort_unstable();
                    r.patches.dedup();
                }
            }
        }
        let design = design.unwrap_or_else(|| {
            let rows: u64 = discovered.iter().map(|(r, _)| r.nrows).sum();
            let patches: u64 = discovered.iter().map(|(r, _)| r.patches.len() as u64).sum();
            let rate = if rows == 0 {
                0.0
            } else {
                patches as f64 / rows as f64
            };
            preferred_design(rate)
        });
        let parts = discovered
            .into_iter()
            .map(|(r, _)| PartitionIndex {
                store: PatchStore::new(design, r.nrows, &r.patches),
                last_sorted: r.last_sorted,
            })
            .collect();
        let mut idx = PatchIndex {
            column: col,
            constraint,
            design,
            parts,
            stats: MaintenanceStats::default(),
            baseline: DriftBaseline::default(),
            feedback: QueryFeedback::default(),
            global_unique: true,
            pending: None,
        };
        idx.reset_baseline();
        idx
    }

    /// Builds an index from externally computed patch sets (checkpoint
    /// recovery). `global_unique` records whether the patch sets are
    /// known to be globally deduplicated — legacy checkpoints written by
    /// partition-local discovery pass `false` for NUC, which keeps the
    /// planner's global-distinct guard active until the next recompute.
    pub(crate) fn from_parts(
        column: usize,
        constraint: Constraint,
        design: Design,
        parts: Vec<PartitionIndex>,
        global_unique: bool,
    ) -> Self {
        let mut idx = PatchIndex {
            column,
            constraint,
            design,
            parts,
            stats: MaintenanceStats::default(),
            baseline: DriftBaseline::default(),
            feedback: QueryFeedback::default(),
            global_unique,
            pending: None,
        };
        idx.reset_baseline();
        idx
    }

    /// Cumulative maintenance counters (see [`MaintenanceStats`]).
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.stats
    }

    pub(crate) fn set_maintenance_stats(&mut self, stats: MaintenanceStats) {
        self.stats = stats;
    }

    /// Counts `rows` row-events as maintained (insert/modify/delete
    /// handling and deferred staging funnel through this).
    pub(crate) fn note_maintained(&mut self, rows: u64) {
        self.stats.maintained_rows += rows;
    }

    /// Re-anchors the drift baseline at the current index state (runs
    /// after create and recompute).
    fn reset_baseline(&mut self) {
        self.baseline = DriftBaseline {
            match_fraction: self.match_fraction(),
            patches: self.exception_count(),
            maintained_rows: self.stats.maintained_rows,
        };
    }

    /// The drift baseline captured at create/recompute time.
    pub fn baseline(&self) -> DriftBaseline {
        self.baseline
    }

    /// Row-events maintained since the last create/recompute.
    pub fn maintained_since_recompute(&self) -> u64 {
        self.stats.maintained_rows - self.baseline.maintained_rows
    }

    /// Patches accumulated beyond the create/recompute-time patch set
    /// (saturating: deletes can shrink the patch set below the baseline).
    pub fn drift_patches(&self) -> u64 {
        self.exception_count().saturating_sub(self.baseline.patches)
    }

    /// Patches added per maintained row since the last create/recompute —
    /// how fast updates erode this materialization.
    pub fn drift_rate(&self) -> f64 {
        let maintained = self.maintained_since_recompute();
        if maintained == 0 {
            return 0.0;
        }
        self.drift_patches() as f64 / maintained as f64
    }

    /// Optimizer feedback accumulated through the `QueryEngine` facade.
    pub fn query_feedback(&self) -> QueryFeedback {
        self.feedback
    }

    /// Records one query that bound this index, with the estimated cost
    /// saved vs the unrewritten plan (the `QueryEngine` facade calls
    /// this; the advisor's drop rule reads it back).
    pub fn record_query_feedback(&mut self, est_cost_saved: f64) {
        self.feedback.times_bound += 1;
        self.feedback.est_cost_saved += est_cost_saved.max(0.0);
    }

    /// Records the measured execution of one query that bound this index:
    /// wall-clock `actual_micros` against the chosen plan's estimated cost
    /// `est_cost` (per-slot shares when a plan bound several indexes).
    /// The advisor's drop rule reads the accumulated calibration back via
    /// [`QueryFeedback::micros_per_cost_unit`].
    pub fn record_query_timing(&mut self, actual_micros: f64, est_cost: f64) {
        self.feedback.measured_queries += 1;
        self.feedback.actual_micros += actual_micros.max(0.0);
        self.feedback.est_cost_executed += est_cost.max(0.0);
    }

    /// Restores persisted counters after checkpoint recovery.
    pub(crate) fn restore_meta(
        &mut self,
        stats: MaintenanceStats,
        baseline: DriftBaseline,
        feedback: QueryFeedback,
    ) {
        self.stats = stats;
        self.baseline = baseline;
        self.feedback = feedback;
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// The materialized constraint.
    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    /// The physical design.
    pub fn design(&self) -> Design {
        self.design
    }

    /// Whether the patch set is known globally deduplicated — for NUC,
    /// every value with a global (cross-partition) occurrence count above
    /// one has all occurrences patched. True for indexes created or
    /// recomputed by this version; false only for NUC states restored
    /// from legacy (pre-v4) checkpoints, whose discovery ran
    /// partition-locally. While false, the planner wraps the NUC distinct
    /// rewrite in a global distinct (belt and suspenders); a recompute
    /// re-establishes the invariant and clears the guard.
    pub fn global_unique(&self) -> bool {
        self.global_unique
    }

    /// Number of partition-local indexes.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Partition-local state.
    pub fn partition(&self, pid: usize) -> &PartitionIndex {
        &self.parts[pid]
    }

    /// Mutable partition-local state (maintenance).
    pub(crate) fn partition_mut(&mut self, pid: usize) -> &mut PartitionIndex {
        &mut self.parts[pid]
    }

    /// Patch lookup handle for query execution.
    pub fn lookup(&self, pid: usize) -> &dyn PatchLookup {
        self.parts[pid].store.as_lookup()
    }

    /// Total tuples covered.
    pub fn nrows(&self) -> u64 {
        self.parts.iter().map(|p| p.store.nrows()).sum()
    }

    /// Total patches.
    pub fn exception_count(&self) -> u64 {
        self.parts.iter().map(|p| p.store.patch_count()).sum()
    }

    /// Global exception rate `e` (paper, Section 3.1).
    pub fn exception_rate(&self) -> f64 {
        let n = self.nrows();
        if n == 0 {
            return 0.0;
        }
        self.exception_count() as f64 / n as f64
    }

    /// Constraint-match fraction `e = 1 − patches/rows` — the per-index
    /// error estimate the advisor tracks (1.0 = the constraint holds
    /// everywhere, 0.0 = every row is an exception).
    pub fn match_fraction(&self) -> f64 {
        1.0 - self.exception_rate()
    }

    /// Heap bytes of all patch stores.
    pub fn memory_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.store.memory_bytes()).sum()
    }

    /// Rebuilds the index from scratch (the global recomputation the
    /// monitoring policy triggers once updates eroded optimality too far).
    /// Any deferred maintenance still pending is discarded — the fresh
    /// discovery supersedes it. Maintenance stats and query feedback
    /// survive; the drift baseline re-anchors at the fresh state.
    ///
    /// Recompute is **design-migrating**: the Table-3 memory model is
    /// re-evaluated at the freshly discovered exception rate, so an index
    /// whose drift carried it across the ~1.58% bitmap/identifier
    /// crossover rebuilds under the now-cheaper design instead of keeping
    /// its create-time representation forever.
    pub fn recompute(&mut self, table: &Table) {
        let stats = self.stats;
        let feedback = self.feedback;
        *self = PatchIndex::build(table, self.column, self.constraint, None);
        self.stats = stats;
        self.feedback = feedback;
        self.reset_baseline();
    }

    /// Recomputes once the exception rate exceeds `threshold`; returns
    /// whether a recompute ran (paper, Sections 5.1/5.3: "monitoring the
    /// exception rate and triggering a global recomputation").
    pub fn maybe_recompute(&mut self, table: &Table, threshold: f64) -> bool {
        if self.exception_rate() > threshold {
            self.recompute(table);
            true
        } else {
            false
        }
    }

    /// Whether the policy pass has anything to do at these thresholds — a
    /// `&self` predicate checked *before* [`std::sync::Arc::make_mut`], so
    /// an index shared with live snapshots is only copied when a
    /// recompute/condense will actually run (the automatic per-statement
    /// pass would otherwise deep-copy every untouched shared index).
    pub fn policy_action_due(&self, max_exception_rate: f64, condense_threshold: f64) -> bool {
        self.exception_rate() > max_exception_rate
            || self
                .parts
                .iter()
                .any(|p| p.store.would_condense(condense_threshold))
    }

    /// Condenses underlying bitmaps whose utilization fell below
    /// `threshold`; returns how many partitions condensed.
    pub fn maybe_condense(&mut self, threshold: f64) -> usize {
        self.parts
            .iter_mut()
            .map(|p| p.store.maybe_condense(threshold))
            .filter(|&c| c)
            .count()
    }

    /// Verifies the core invariant on every partition: excluding the
    /// patches, the remaining values satisfy the constraint (and for NUC
    /// are disjoint from patch values). For NUC the uniqueness/disjointness
    /// pass additionally runs *globally* across partitions (when
    /// [`PatchIndex::global_unique`] claims it) — the property the distinct
    /// rewrite's un-deduplicated union actually relies on. Test / debugging
    /// aid — full scan.
    pub fn check_consistency(&self, table: &Table) {
        for (pid, part) in self.parts.iter().enumerate() {
            let p = table.partition(pid);
            assert_eq!(
                part.store.nrows() as usize,
                p.visible_len(),
                "partition {pid}: index covers {} rows, table has {}",
                part.store.nrows(),
                p.visible_len()
            );
            let values = partition_column_values(p, self.column);
            let lookup = part.store.as_lookup();
            let kept: Vec<i64> = values
                .iter()
                .enumerate()
                .filter(|(i, _)| !lookup.is_patch(*i as u64))
                .map(|(_, v)| *v)
                .collect();
            match self.constraint {
                Constraint::NearlyUnique => {
                    let mut seen = pi_exec::hash::int_set();
                    for v in &kept {
                        assert!(seen.insert(*v), "partition {pid}: duplicate kept value {v}");
                    }
                    let patch_vals: Vec<i64> = values
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| lookup.is_patch(*i as u64))
                        .map(|(_, v)| *v)
                        .collect();
                    for v in patch_vals {
                        assert!(
                            !seen.contains(&v),
                            "partition {pid}: kept value {v} also appears among patches"
                        );
                    }
                }
                Constraint::NearlySorted(SortDir::Asc) => {
                    assert!(
                        kept.windows(2).all(|w| w[0] <= w[1]),
                        "partition {pid}: kept values not ascending"
                    );
                }
                Constraint::NearlySorted(SortDir::Desc) => {
                    assert!(
                        kept.windows(2).all(|w| w[0] >= w[1]),
                        "partition {pid}: kept values not descending"
                    );
                }
                Constraint::NearlyConstant => {
                    if let Some(&first) = kept.first() {
                        assert!(
                            kept.iter().all(|&v| v == first),
                            "partition {pid}: kept values not constant"
                        );
                        if let Some(c) = part.last_sorted {
                            assert_eq!(first, c, "partition {pid}: constant anchor drifted");
                        }
                    }
                }
            }
        }
        // The NUC uniqueness/disjointness invariant additionally holds
        // *globally* across partitions (when the index claims it) — the
        // property the distinct rewrite's un-deduplicated union relies on.
        if self.constraint == Constraint::NearlyUnique && self.global_unique {
            let mut kept_seen = pi_exec::hash::int_set();
            let mut patch_vals: Vec<i64> = Vec::new();
            for (pid, part) in self.parts.iter().enumerate() {
                let values = partition_column_values(table.partition(pid), self.column);
                let lookup = part.store.as_lookup();
                for (i, &v) in values.iter().enumerate() {
                    if lookup.is_patch(i as u64) {
                        patch_vals.push(v);
                    } else {
                        assert!(
                            kept_seen.insert(v),
                            "kept value {v} appears in more than one partition (partition {pid})"
                        );
                    }
                }
            }
            for v in patch_vals {
                assert!(
                    !kept_seen.contains(&v),
                    "value {v} is kept in one partition but patched in another"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema};

    fn table(values_per_part: Vec<Vec<i64>>) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Field::new("v", DataType::Int)]),
            values_per_part.len(),
            Partitioning::RoundRobin,
        );
        for (pid, vals) in values_per_part.into_iter().enumerate() {
            t.load_partition(pid, &[ColumnData::Int(vals)]);
        }
        t.propagate_all();
        t
    }

    #[test]
    fn create_nuc_index() {
        let t = table(vec![vec![1, 2, 2, 3], vec![5, 5, 5, 6]]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(idx.exception_count(), 5);
        assert!((idx.exception_rate() - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![1, 2]);
        idx.check_consistency(&t);
    }

    #[test]
    fn create_nuc_dedupes_across_partitions() {
        // 7 appears exactly once in each partition: partition-local
        // discovery keeps both occurrences, the cross-partition pass
        // patches both.
        let t = table(vec![vec![7, 1, 2], vec![7, 3, 4]]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(idx.partition(0).store.patch_rids(), vec![0]);
        assert_eq!(idx.partition(1).store.patch_rids(), vec![0]);
        assert!(idx.global_unique());
        idx.check_consistency(&t);
    }

    #[test]
    fn recompute_migrates_design_across_the_crossover() {
        // Clean data (exception rate 0, below the crossover): recompute
        // flips a Bitmap index to the cheaper Identifier design.
        let t = table(vec![(0..100).collect()]);
        let mut idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(idx.design(), Design::Bitmap);
        idx.recompute(&t);
        assert_eq!(idx.design(), Design::Identifier);
        assert_eq!(idx.partition(0).store.design(), Design::Identifier);
        idx.check_consistency(&t);
        // A constant column (every row a patch, rate 1.0): flips back.
        let dirty = table(vec![vec![5; 64]]);
        let mut idx = PatchIndex::create(&dirty, 0, Constraint::NearlyUnique, Design::Identifier);
        idx.recompute(&dirty);
        assert_eq!(idx.design(), Design::Bitmap);
        idx.check_consistency(&dirty);
    }

    #[test]
    fn create_nsc_index_both_designs() {
        let t = table(vec![vec![1, 2, 99, 3, 4]]);
        for design in [Design::Bitmap, Design::Identifier] {
            let idx = PatchIndex::create(&t, 0, Constraint::NearlySorted(SortDir::Asc), design);
            assert_eq!(idx.partition(0).store.patch_rids(), vec![2]);
            assert_eq!(idx.partition(0).last_sorted, Some(4));
            idx.check_consistency(&t);
        }
    }

    #[test]
    fn exception_rate_zero_for_clean_data() {
        let t = table(vec![(0..100).collect()]);
        let idx = PatchIndex::create(
            &t,
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        assert_eq!(idx.exception_rate(), 0.0);
        let nuc = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert_eq!(nuc.exception_rate(), 0.0);
    }

    #[test]
    fn recompute_threshold() {
        let t = table(vec![vec![1, 1, 2, 3]]);
        let mut idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        assert!(!idx.maybe_recompute(&t, 0.9));
        assert!(idx.maybe_recompute(&t, 0.2));
        idx.check_consistency(&t);
    }

    #[test]
    #[should_panic(expected = "index covers")]
    fn consistency_detects_row_count_drift() {
        let mut t = table(vec![vec![1, 2, 3]]);
        let idx = PatchIndex::create(&t, 0, Constraint::NearlyUnique, Design::Bitmap);
        t.insert_rows(&[vec![pi_storage::Value::Int(9)]]);
        idx.check_consistency(&t);
    }
}
