//! Constraint discovery: computing the patch set of a column (introduced in
//! the authors' earlier PatchIndex paper \[18\]; reproduced here because index
//! creation needs it).
//!
//! * **NUC** — the patch set holds *all* rowIDs of values occurring more
//!   than once. Excluding patches then leaves values that are unique and
//!   disjoint from the patch values, which makes the distinct rewrite
//!   (`distinct(non-patches) ∪ distinct(patches)`) correct.
//! * **NSC** — the patch set is the complement of a longest sorted
//!   subsequence (Fredman's algorithm), the minimal set whose exclusion
//!   leaves the column sorted.

use pi_storage::{ColumnData, Partition};

use crate::constraint::{Constraint, SortDir};
use crate::lis;

/// Extracts an `i64` view of a column for discovery: ints directly,
/// strings by dictionary code (code equality ⇔ string equality).
fn int_view(col: &ColumnData) -> Vec<i64> {
    match col {
        ColumnData::Int(v) => v.clone(),
        ColumnData::Str { codes, .. } => codes.iter().map(|&c| c as i64).collect(),
        other => panic!("cannot discover constraints over {:?}", other.data_type()),
    }
}

/// Reads the full visible column of a partition.
pub fn partition_column_values(partition: &Partition, col: usize) -> Vec<i64> {
    if partition.delta().is_empty() {
        int_view(partition.base_column(col))
    } else {
        let cols = partition.read_range(&[col], 0, partition.visible_len());
        int_view(&cols[0])
    }
}

/// Result of discovering one partition's patches.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// Patch rowIDs, ascending.
    pub patches: Vec<u64>,
    /// Tuples examined.
    pub nrows: u64,
    /// Constraint-specific anchor value: for NSC the last (largest for
    /// asc) value of the retained sorted subsequence — the anchor the
    /// insert handling extends from; for NCC the majority (constant)
    /// value.
    pub last_sorted: Option<i64>,
}

/// Discovers the patch set of `values` for a constraint.
pub fn discover_values(values: &[i64], constraint: Constraint) -> DiscoveryResult {
    match constraint {
        Constraint::NearlyUnique => {
            // All occurrences of duplicated values are patches.
            let mut map: pi_exec::hash::IntMap<(u32, u32)> = pi_exec::hash::int_map();
            for (i, &v) in values.iter().enumerate() {
                let e = map.entry(v).or_insert((i as u32, 0));
                e.1 += 1;
            }
            let mut patches: Vec<u64> = Vec::new();
            for (i, &v) in values.iter().enumerate() {
                if map[&v].1 > 1 {
                    patches.push(i as u64);
                }
            }
            DiscoveryResult {
                patches,
                nrows: values.len() as u64,
                last_sorted: None,
            }
        }
        Constraint::NearlySorted(dir) => {
            let oriented: Vec<i64>;
            let vals = match dir {
                SortDir::Asc => values,
                SortDir::Desc => {
                    oriented = values.iter().map(|v| -v).collect();
                    &oriented
                }
            };
            let keep = lis::longest_nondecreasing_indices(vals);
            let last_sorted = keep.last().map(|&i| values[i]);
            let mut patches = Vec::with_capacity(values.len() - keep.len());
            let mut ki = 0;
            for i in 0..values.len() {
                if ki < keep.len() && keep[ki] == i {
                    ki += 1;
                } else {
                    patches.push(i as u64);
                }
            }
            DiscoveryResult {
                patches,
                nrows: values.len() as u64,
                last_sorted,
            }
        }
        Constraint::NearlyConstant => {
            // Majority value via one counting pass; everything else is a
            // patch. Ties break towards the first-seen value for
            // determinism.
            let mut counts: pi_exec::hash::IntMap<(u32, u32)> = pi_exec::hash::int_map();
            for (i, &v) in values.iter().enumerate() {
                let e = counts.entry(v).or_insert((i as u32, 0));
                e.1 += 1;
            }
            let constant = counts
                .iter()
                .max_by_key(|(_, (first, n))| (*n, std::cmp::Reverse(*first)))
                .map(|(v, _)| *v);
            let patches: Vec<u64> = match constant {
                Some(c) => values
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != c)
                    .map(|(i, _)| i as u64)
                    .collect(),
                None => Vec::new(),
            };
            DiscoveryResult {
                patches,
                nrows: values.len() as u64,
                last_sorted: constant,
            }
        }
    }
}

/// The extra NUC patch rowIDs the *global* constraint requires beyond
/// partition-local discovery, given every partition's full value history:
/// all occurrences of values present in more than one partition.
///
/// [`discover_values`] patches every occurrence of a value duplicated
/// *within* a partition, but a value kept (unpatched) in two different
/// partitions is still a global duplicate — the NUC distinct rewrite
/// unions per-partition kept flows without re-deduplicating, so such a
/// value would be counted once per partition. Merging this residual into
/// the local patch sets restores the global invariant: every value with
/// a global occurrence count above one has all of its occurrences
/// patched.
pub fn cross_partition_nuc_residual(values: &[&[i64]]) -> Vec<Vec<u64>> {
    // value -> (first partition seen in, spans multiple partitions?)
    let mut seen: pi_exec::hash::IntMap<(u32, bool)> = pi_exec::hash::int_map();
    for (pid, vals) in values.iter().enumerate() {
        for &v in vals.iter() {
            let e = seen.entry(v).or_insert((pid as u32, false));
            if e.0 != pid as u32 {
                e.1 = true;
            }
        }
    }
    values
        .iter()
        .map(|vals| {
            vals.iter()
                .enumerate()
                .filter(|(_, v)| seen[v].1)
                .map(|(i, _)| i as u64)
                .collect()
        })
        .collect()
}

/// Discovers the patch set of one partition's column.
pub fn discover_partition(
    partition: &Partition,
    col: usize,
    constraint: Constraint,
) -> DiscoveryResult {
    let values = partition_column_values(partition, col);
    discover_values(&values, constraint)
}

/// Fraction of tuples matching the constraint (1 − exception rate); the
/// quantity Figure 1 of the paper plots per column.
pub fn constraint_match_fraction(values: &[i64], constraint: Constraint) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let r = discover_values(values, constraint);
    1.0 - r.patches.len() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nuc_marks_all_occurrences() {
        // 5 appears twice, 7 three times; 1 and 2 unique.
        let vals = vec![5i64, 1, 7, 5, 7, 2, 7];
        let r = discover_values(&vals, Constraint::NearlyUnique);
        assert_eq!(r.patches, vec![0, 2, 3, 4, 6]);
        // Excluding patches: remaining values unique AND disjoint from
        // patch values.
        let rest: Vec<i64> = vals
            .iter()
            .enumerate()
            .filter(|(i, _)| !r.patches.contains(&(*i as u64)))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(rest, vec![1, 2]);
    }

    #[test]
    fn nuc_perfectly_unique_has_no_patches() {
        let vals: Vec<i64> = (0..100).collect();
        let r = discover_values(&vals, Constraint::NearlyUnique);
        assert!(r.patches.is_empty());
    }

    #[test]
    fn nsc_ascending() {
        let vals = vec![1i64, 2, 100, 3, 4];
        let r = discover_values(&vals, Constraint::NearlySorted(SortDir::Asc));
        assert_eq!(r.patches, vec![2]);
        assert_eq!(r.last_sorted, Some(4));
    }

    #[test]
    fn nsc_descending() {
        let vals = vec![9i64, 8, 1, 7, 5];
        let r = discover_values(&vals, Constraint::NearlySorted(SortDir::Desc));
        assert_eq!(r.patches, vec![2]);
        assert_eq!(r.last_sorted, Some(5));
    }

    #[test]
    fn match_fraction() {
        let vals = vec![1i64, 2, 3, 0, 4];
        let f = constraint_match_fraction(&vals, Constraint::NearlySorted(SortDir::Asc));
        assert!((f - 0.8).abs() < 1e-12);
        assert_eq!(
            constraint_match_fraction(&[], Constraint::NearlyUnique),
            1.0
        );
    }

    #[test]
    fn ncc_marks_non_majority_values() {
        let vals = vec![7i64, 7, 3, 7, 9, 7];
        let r = discover_values(&vals, Constraint::NearlyConstant);
        assert_eq!(r.patches, vec![2, 4]);
        assert_eq!(r.last_sorted, Some(7));
    }

    #[test]
    fn ncc_perfectly_constant() {
        let vals = vec![5i64; 40];
        let r = discover_values(&vals, Constraint::NearlyConstant);
        assert!(r.patches.is_empty());
        assert_eq!(r.last_sorted, Some(5));
    }

    #[test]
    fn ncc_empty_column() {
        let r = discover_values(&[], Constraint::NearlyConstant);
        assert!(r.patches.is_empty());
        assert_eq!(r.last_sorted, None);
    }

    #[test]
    fn cross_partition_residual_patches_every_straddling_occurrence() {
        // 5 appears in partitions 0 and 2 (once each): all its occurrences
        // are residual patches. 7 is duplicated only within partition 1:
        // local discovery owns it, the residual ignores it. 9 is unique.
        let p0: Vec<i64> = vec![5, 1];
        let p1: Vec<i64> = vec![7, 7, 9];
        let p2: Vec<i64> = vec![2, 5];
        let residual = cross_partition_nuc_residual(&[&p0, &p1, &p2]);
        assert_eq!(residual, vec![vec![0], vec![], vec![1]]);
    }

    #[test]
    fn cross_partition_residual_covers_kept_vs_patched_splits() {
        // 4 is duplicated inside partition 0 (locally patched there) and
        // also present in partition 1: the partition-1 occurrence must be
        // patched too, and partition 0's occurrences appear in the
        // residual as well (merging with the local set deduplicates).
        let p0: Vec<i64> = vec![4, 4, 1];
        let p1: Vec<i64> = vec![4, 2];
        let residual = cross_partition_nuc_residual(&[&p0, &p1]);
        assert_eq!(residual, vec![vec![0, 1], vec![0]]);
    }

    #[test]
    fn cross_partition_residual_empty_for_disjoint_pools() {
        let p0: Vec<i64> = vec![1, 2, 2];
        let p1: Vec<i64> = vec![10, 11];
        let residual = cross_partition_nuc_residual(&[&p0, &p1]);
        assert_eq!(residual, vec![Vec::<u64>::new(), Vec::new()]);
    }

    #[test]
    fn string_columns_discover_by_code() {
        let col = pi_storage::str_column(&["a", "b", "a", "c"]);
        let vals = int_view(&col);
        let r = discover_values(&vals, Constraint::NearlyUnique);
        assert_eq!(r.patches, vec![0, 2]);
    }
}
