//! Hash routing of rows onto table shards.
//!
//! A *shard* is an independent `ConcurrentTable` (own writer, own
//! epochs, own indexes); a server fronting N shards routes each inserted
//! row by hashing one designated column — the *routing column* — so a
//! given key always lands on the same shard and re-sharding is a pure
//! function of `(value, nshards)`. The hash is FNV-1a over a canonical
//! byte encoding of the [`Value`], so routing is stable across runs,
//! platforms, and checkpoint/recovery cycles (no `RandomState`).
//!
//! ```
//! use patchindex::routing::shard_of;
//! use pi_storage::Value;
//!
//! // Stable: the same key always routes to the same shard.
//! let a = shard_of(&Value::Int(42), 4);
//! assert_eq!(a, shard_of(&Value::Int(42), 4));
//! assert!(a < 4);
//!
//! // One shard is the degenerate case: everything routes to 0.
//! assert_eq!(shard_of(&Value::Str("tenant-7".into()), 1), 0);
//! ```

use pi_storage::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable 64-bit hash of a [`Value`], independent of process or
/// platform. Variants are domain-separated by a leading tag byte so
/// `Int(0)` and `Float(0.0)` do not collide structurally.
pub fn value_hash(v: &Value) -> u64 {
    match v {
        Value::Int(i) => fnv1a(fnv1a(FNV_OFFSET, &[0x01]), &i.to_le_bytes()),
        Value::Float(f) => fnv1a(fnv1a(FNV_OFFSET, &[0x02]), &f.to_bits().to_le_bytes()),
        Value::Str(s) => fnv1a(fnv1a(FNV_OFFSET, &[0x03]), s.as_bytes()),
    }
}

/// The shard a routing-key value belongs to, in `0..nshards`.
///
/// # Panics
///
/// Panics if `nshards` is zero.
pub fn shard_of(key: &Value, nshards: usize) -> usize {
    assert!(nshards > 0, "need at least one shard");
    (value_hash(key) % nshards as u64) as usize
}

/// Routes one row by its routing column. Convenience over
/// [`shard_of`] that panics with a clear message when the row is too
/// short to contain the routing column.
pub fn route_row(row: &[Value], route_col: usize, nshards: usize) -> usize {
    let key = row.get(route_col).unwrap_or_else(|| {
        panic!(
            "row has {} columns, routing column is {route_col}",
            row.len()
        )
    });
    shard_of(key, nshards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_in_range() {
        for n in 1..=16usize {
            for i in 0..1000i64 {
                let s = shard_of(&Value::Int(i), n);
                assert!(s < n);
                assert_eq!(s, shard_of(&Value::Int(i), n));
            }
        }
    }

    #[test]
    fn spreads_across_shards() {
        let n = 4;
        let mut counts = vec![0usize; n];
        for i in 0..10_000i64 {
            counts[shard_of(&Value::Int(i), n)] += 1;
        }
        for &c in &counts {
            // Uniform would be 2500 per shard; accept a generous band.
            assert!(c > 1500 && c < 3500, "skewed shard counts: {counts:?}");
        }
    }

    #[test]
    fn variants_are_domain_separated() {
        assert_ne!(value_hash(&Value::Int(0)), value_hash(&Value::Float(0.0)));
        assert_ne!(
            value_hash(&Value::Int(0)),
            value_hash(&Value::Str(String::new()))
        );
    }

    #[test]
    fn route_row_uses_designated_column() {
        let row = vec![Value::Int(7), Value::Str("x".into())];
        assert_eq!(route_row(&row, 0, 8), shard_of(&Value::Int(7), 8));
        assert_eq!(route_row(&row, 1, 8), shard_of(&Value::Str("x".into()), 8));
    }
}
