//! # patchindex — updatable materialization of approximate constraints
//!
//! Rust reproduction of "Updatable Materialization of Approximate
//! Constraints" (Kläbe, Sattler, Baumann, ICDE 2021).
//!
//! A [`PatchIndex`] materializes an approximate constraint — a constraint
//! satisfied by all tuples except a set of *patches* (exceptions) — on one
//! column of a partitioned table:
//!
//! * **NUC** (nearly unique column) and **NSC** (nearly sorted column)
//!   constraints, with [`discovery`] of minimal patch sets;
//! * two physical designs ([`Design::Bitmap`] on a sharded bitmap,
//!   [`Design::Identifier`] as a sorted rowID list);
//! * query integration via [`scan::patch_scan_split`], producing the
//!   `exclude_patches` / `use_patches` dataflows of the paper's Figure 2;
//! * update handling (insert / modify / delete) without recomputation or
//!   full scans — see [`PatchIndex::handle_insert`] and friends, or use
//!   [`IndexedTable`] to keep everything consistent automatically;
//! * checkpoint/recovery and exception-rate monitoring.
//!
//! ```
//! use patchindex::{Constraint, Design, IndexedTable, SortDir};
//! use pi_planner::{Plan, QueryEngine}; // the query facade lives in pi-planner
//! use pi_exec::ops::sort::SortOrder;
//! use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};
//!
//! let mut table = Table::new(
//!     "events",
//!     Schema::new(vec![Field::new("ts", DataType::Int)]),
//!     1,
//!     Partitioning::RoundRobin,
//! );
//! table.load_partition(0, &[ColumnData::Int(vec![1, 2, 100, 3, 4])]);
//! table.propagate_all();
//!
//! let mut it = IndexedTable::new(table);
//! it.add_index(0, Constraint::NearlySorted(SortDir::Asc), Design::Bitmap);
//! assert_eq!(it.index(0).exception_count(), 1); // the stray 100
//!
//! it.insert(&[vec![Value::Int(5)]]); // extends the sorted run, no patch
//! assert_eq!(it.index(0).exception_count(), 1);
//!
//! // Query through the QueryEngine facade: it snapshots the catalog
//! // ([`IndexedTable::catalog`]), rewrites ORDER BY into the Figure-2
//! // merge plan (only the stray is sorted), flushes deferred maintenance
//! // only when the chosen plan requires exactness, and executes with
//! // per-partition zero-branch pruning.
//! let sorted = it.query(&Plan::scan(vec![0]).sort(vec![(0, SortOrder::Asc)]));
//! assert_eq!(sorted.column(0).as_int(), &[1, 2, 3, 4, 5, 100]);
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod cache;
mod catalog;
mod checkpoint;
mod constraint;
pub mod deferred;
pub mod discovery;
mod index;
mod indexed;
pub mod lis;
mod maintenance;
pub mod routing;
pub mod sampling;
pub mod scan;
pub mod snapshot;
pub mod stats;
mod store;

pub use cache::{CacheStats, CachedValue, Footprint, ResultCache};
pub use catalog::{IndexCatalog, IndexStats, PartitionStats};
pub use constraint::{Constraint, Design, SortDir};
pub use index::{DriftBaseline, PartitionIndex, PatchIndex, QueryFeedback};
pub use indexed::{IndexedTable, MaintenanceMode, MaintenancePolicy, QueryLog, QueryShape};
pub use maintenance::{drp_ranges, MaintenanceStats, ProbeStrategy};
pub use snapshot::{
    ConcurrentTable, PublishPolicy, TableSnapshot, TableWriter, WorkloadEvent, WorkloadSink,
};
pub use store::PatchStore;
