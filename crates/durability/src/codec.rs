//! Checkpoint file codecs.
//!
//! Each checkpoint artifact is one self-describing file: 4-byte magic,
//! version word, payload, CRC-32 trailer. Files are written through
//! [`pi_storage::dfs::write_atomic`], so every file a manifest references
//! is complete and fsynced before the manifest naming it becomes visible
//! — a load never has to tolerate a torn checkpoint, only reject a
//! corrupt one.
//!
//! Partition files serialize the *visible* merged rows (via
//! [`pi_storage::Partition::read_range`]), not the physical base/delta
//! split: recovery restores a propagated partition, which is visibly
//! identical and cheaper to encode. String columns store dictionary
//! codes; the shared dictionaries travel in one dict file per checkpoint
//! generation so codes stay meaningful.

use std::io::{self, Read};
use std::sync::Arc;

use pi_storage::crc::crc32;
use pi_storage::{ColumnData, DataType, DictRef, Field, Partitioning, Schema, Table};

use patchindex::IndexedTable;

use crate::wal::{read_f64, read_u32, read_u64, read_u8};

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

pub(crate) fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(b: &mut Vec<u8>, v: i64) {
    b.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(b: &mut Vec<u8>, v: f64) {
    put_u64(b, v.to_bits());
}

pub(crate) fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

pub(crate) fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    Ok(read_u64(r)? as i64)
}

pub(crate) fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("non-utf8 string"))
}

/// Wraps a payload in `magic + version + payload + crc32`.
fn seal(magic: &[u8; 4], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(payload.len() + 12);
    b.extend_from_slice(magic);
    put_u32(&mut b, version);
    b.extend_from_slice(payload);
    let crc = crc32(&b);
    put_u32(&mut b, crc);
    b
}

/// Verifies `magic + version + crc` framing and returns the payload.
fn unseal<'a>(magic: &[u8; 4], version: u32, bytes: &'a [u8], what: &str) -> io::Result<&'a [u8]> {
    if bytes.len() < 12 {
        return Err(bad(&format!("{what}: file too short")));
    }
    if &bytes[..4] != magic {
        return Err(bad(&format!("{what}: bad magic")));
    }
    let got_version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if got_version != version {
        return Err(bad(&format!(
            "{what}: unsupported version {got_version} (expected {version})"
        )));
    }
    let trailer_at = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[trailer_at..].try_into().unwrap());
    if crc32(&bytes[..trailer_at]) != stored {
        return Err(bad(&format!("{what}: checksum mismatch (corrupt file)")));
    }
    Ok(&bytes[8..trailer_at])
}

fn expect_drained(r: &[u8], what: &str) -> io::Result<()> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(bad(&format!("{what}: trailing garbage after payload")))
    }
}

// -------------------------------------------------------------- partitions

const PART_MAGIC: &[u8; 4] = b"PIDP";
const PART_VERSION: u32 = 1;

/// Serializes the visible rows of partition `pid`.
pub(crate) fn encode_partition(table: &Table, pid: usize) -> Vec<u8> {
    let p = table.partition(pid);
    let ncols = table.schema().len();
    let cols: Vec<usize> = (0..ncols).collect();
    let data = p.read_range(&cols, 0, p.visible_len());
    let mut b = Vec::new();
    put_u32(&mut b, pid as u32);
    put_u32(&mut b, ncols as u32);
    for col in &data {
        match col {
            ColumnData::Int(v) => {
                b.push(0);
                put_u64(&mut b, v.len() as u64);
                for x in v {
                    put_i64(&mut b, *x);
                }
            }
            ColumnData::Float(v) => {
                b.push(1);
                put_u64(&mut b, v.len() as u64);
                for x in v {
                    put_f64(&mut b, *x);
                }
            }
            ColumnData::Str { codes, .. } => {
                b.push(2);
                put_u64(&mut b, codes.len() as u64);
                for c in codes {
                    put_u32(&mut b, *c);
                }
            }
        }
    }
    seal(PART_MAGIC, PART_VERSION, &b)
}

/// Decodes one partition file into column data, wiring string columns to
/// the given shared dictionaries.
pub(crate) fn decode_partition(
    bytes: &[u8],
    dicts: &[Option<DictRef>],
) -> io::Result<(usize, Vec<ColumnData>)> {
    let payload = unseal(PART_MAGIC, PART_VERSION, bytes, "partition checkpoint")?;
    let mut r: &[u8] = payload;
    let pid = read_u32(&mut r)? as usize;
    let ncols = read_u32(&mut r)? as usize;
    if ncols != dicts.len() {
        return Err(bad("partition checkpoint: column count mismatch"));
    }
    let mut cols = Vec::with_capacity(ncols);
    for (ci, dict) in dicts.iter().enumerate() {
        let tag = read_u8(&mut r)?;
        let n = read_u64(&mut r)? as usize;
        cols.push(match tag {
            0 => {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(read_i64(&mut r)?);
                }
                ColumnData::Int(v)
            }
            1 => {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(read_f64(&mut r)?);
                }
                ColumnData::Float(v)
            }
            2 => {
                let dict = dict
                    .as_ref()
                    .ok_or_else(|| bad("partition checkpoint: string column without dict"))?;
                let mut codes = Vec::with_capacity(n);
                for _ in 0..n {
                    codes.push(read_u32(&mut r)?);
                }
                ColumnData::Str {
                    codes,
                    dict: Arc::clone(dict),
                }
            }
            t => {
                return Err(bad(&format!(
                    "partition checkpoint: column tag {t}; col {ci}"
                )))
            }
        });
    }
    expect_drained(r, "partition checkpoint")?;
    Ok((pid, cols))
}

// ------------------------------------------------------------ dictionaries

const DICT_MAGIC: &[u8; 4] = b"PIDD";
const DICT_VERSION: u32 = 1;

/// Serializes every string column's dictionary (in column order).
pub(crate) fn encode_dicts(table: &Table) -> Vec<u8> {
    let mut b = Vec::new();
    let ncols = table.schema().len();
    put_u32(&mut b, ncols as u32);
    for col in 0..ncols {
        match table.dict(col) {
            Some(d) => {
                b.push(1);
                let d = d.read();
                put_u32(&mut b, d.len() as u32);
                for code in 0..d.len() as u32 {
                    put_str(&mut b, d.decode(code));
                }
            }
            None => b.push(0),
        }
    }
    seal(DICT_MAGIC, DICT_VERSION, &b)
}

/// Rebuilds shared dictionaries from a dict file.
pub(crate) fn decode_dicts(bytes: &[u8]) -> io::Result<Vec<Option<DictRef>>> {
    let payload = unseal(DICT_MAGIC, DICT_VERSION, bytes, "dict checkpoint")?;
    let mut r: &[u8] = payload;
    let ncols = read_u32(&mut r)? as usize;
    let mut out = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        if read_u8(&mut r)? == 1 {
            let n = read_u32(&mut r)?;
            let dict = pi_storage::new_dict();
            {
                let mut d = dict.write();
                for i in 0..n {
                    let s = read_str(&mut r)?;
                    let code = d.encode(&s);
                    if code != i {
                        return Err(bad("dict checkpoint: non-sequential codes"));
                    }
                }
            }
            out.push(Some(dict));
        } else {
            out.push(None);
        }
    }
    expect_drained(r, "dict checkpoint")?;
    Ok(out)
}

// ------------------------------------------------------------- table meta

const META_MAGIC: &[u8; 4] = b"PIDT";
const META_VERSION: u32 = 1;

/// Everything about the table that is not row data: identity, schema,
/// routing state, and the statement counter the advisor cadence runs on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TableMeta {
    pub name: String,
    pub fields: Vec<(String, DataType)>,
    pub partitioning: Partitioning2,
    pub rr_cursor: u64,
    pub statements: u64,
}

/// Owned mirror of [`Partitioning`] (which is not `PartialEq`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Partitioning2 {
    RoundRobin,
    KeyRange { col: usize, boundaries: Vec<i64> },
}

impl Partitioning2 {
    pub fn into_partitioning(self) -> Partitioning {
        match self {
            Partitioning2::RoundRobin => Partitioning::RoundRobin,
            Partitioning2::KeyRange { col, boundaries } => {
                Partitioning::KeyRange { col, boundaries }
            }
        }
    }
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Date => 3,
    }
}

fn dtype_from_tag(t: u8) -> io::Result<DataType> {
    match t {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Date),
        t => Err(bad(&format!("unknown dtype tag {t}"))),
    }
}

pub(crate) fn encode_meta(it: &IndexedTable) -> Vec<u8> {
    let table = it.table();
    let mut b = Vec::new();
    put_str(&mut b, table.name());
    put_u32(&mut b, table.schema().len() as u32);
    for f in table.schema().fields() {
        put_str(&mut b, &f.name);
        b.push(dtype_tag(f.dtype));
    }
    match table.partitioning() {
        Partitioning::RoundRobin => b.push(0),
        Partitioning::KeyRange { col, boundaries } => {
            b.push(1);
            put_u32(&mut b, *col as u32);
            put_u32(&mut b, boundaries.len() as u32);
            for x in boundaries {
                put_i64(&mut b, *x);
            }
        }
    }
    put_u64(&mut b, table.rr_cursor() as u64);
    put_u64(&mut b, it.statements());
    seal(META_MAGIC, META_VERSION, &b)
}

pub(crate) fn decode_meta(bytes: &[u8]) -> io::Result<TableMeta> {
    let payload = unseal(META_MAGIC, META_VERSION, bytes, "table meta checkpoint")?;
    let mut r: &[u8] = payload;
    let name = read_str(&mut r)?;
    let nfields = read_u32(&mut r)? as usize;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let fname = read_str(&mut r)?;
        let dtype = dtype_from_tag(read_u8(&mut r)?)?;
        fields.push((fname, dtype));
    }
    let partitioning = match read_u8(&mut r)? {
        0 => Partitioning2::RoundRobin,
        1 => {
            let col = read_u32(&mut r)? as usize;
            let n = read_u32(&mut r)? as usize;
            let mut boundaries = Vec::with_capacity(n);
            for _ in 0..n {
                boundaries.push(read_i64(&mut r)?);
            }
            Partitioning2::KeyRange { col, boundaries }
        }
        t => return Err(bad(&format!("unknown partitioning tag {t}"))),
    };
    let rr_cursor = read_u64(&mut r)?;
    let statements = read_u64(&mut r)?;
    expect_drained(r, "table meta checkpoint")?;
    Ok(TableMeta {
        name,
        fields,
        partitioning,
        rr_cursor,
        statements,
    })
}

pub(crate) fn schema_of(meta: &TableMeta) -> Schema {
    Schema::new(
        meta.fields
            .iter()
            .map(|(n, d)| Field::new(n.clone(), *d))
            .collect(),
    )
}

// --------------------------------------------------------------- manifest

const MANIFEST_MAGIC: &[u8; 4] = b"PIDM";
const MANIFEST_VERSION: u32 = 1;

/// The checkpoint directory's root of trust: which files make up the
/// newest complete checkpoint, which epoch it is, and the WAL sequence it
/// covers (replay resumes past `hwm`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Manifest {
    pub epoch: u64,
    pub hwm: u64,
    pub meta_file: String,
    pub dict_file: String,
    pub part_files: Vec<String>,
    pub index_files: Vec<String>,
}

pub(crate) fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64(&mut b, m.epoch);
    put_u64(&mut b, m.hwm);
    put_str(&mut b, &m.meta_file);
    put_str(&mut b, &m.dict_file);
    put_u32(&mut b, m.part_files.len() as u32);
    for f in &m.part_files {
        put_str(&mut b, f);
    }
    put_u32(&mut b, m.index_files.len() as u32);
    for f in &m.index_files {
        put_str(&mut b, f);
    }
    seal(MANIFEST_MAGIC, MANIFEST_VERSION, &b)
}

pub(crate) fn decode_manifest(bytes: &[u8]) -> io::Result<Manifest> {
    let payload = unseal(MANIFEST_MAGIC, MANIFEST_VERSION, bytes, "manifest")?;
    let mut r: &[u8] = payload;
    let epoch = read_u64(&mut r)?;
    let hwm = read_u64(&mut r)?;
    let meta_file = read_str(&mut r)?;
    let dict_file = read_str(&mut r)?;
    let nparts = read_u32(&mut r)? as usize;
    let mut part_files = Vec::with_capacity(nparts);
    for _ in 0..nparts {
        part_files.push(read_str(&mut r)?);
    }
    let nindexes = read_u32(&mut r)? as usize;
    let mut index_files = Vec::with_capacity(nindexes);
    for _ in 0..nindexes {
        index_files.push(read_str(&mut r)?);
    }
    expect_drained(r, "manifest")?;
    Ok(Manifest {
        epoch,
        hwm,
        meta_file,
        dict_file,
        part_files,
        index_files,
    })
}

// ------------------------------------------------------------ state image

/// Serializes the full visible state of an indexed table — decoded row
/// values, every index's patch sets and anchors, and the advisor's
/// monitoring counters. Two tables with equal images are
/// indistinguishable to queries, maintenance, and the advisor; the
/// recovery property tests compare these byte-for-byte.
pub fn state_image(it: &IndexedTable) -> Vec<u8> {
    let mut b = Vec::new();
    let table = it.table();
    put_str(&mut b, table.name());
    put_u64(&mut b, table.rr_cursor() as u64);
    put_u64(&mut b, it.statements());
    put_u32(&mut b, table.partition_count() as u32);
    let ncols = table.schema().len();
    for pid in 0..table.partition_count() {
        let p = table.partition(pid);
        put_u64(&mut b, p.visible_len() as u64);
        for rid in 0..p.visible_len() {
            for col in 0..ncols {
                crate::wal::put_value(&mut b, &p.value_at(col, rid));
            }
        }
    }
    put_u32(&mut b, it.indexes().len() as u32);
    for idx in it.indexes() {
        put_u32(&mut b, idx.column() as u32);
        put_str(&mut b, &format!("{:?}", idx.constraint()));
        put_str(&mut b, &format!("{:?}", idx.design()));
        b.push(idx.global_unique() as u8);
        let stats = idx.maintenance_stats();
        put_u64(&mut b, stats.collision_rounds);
        put_u64(&mut b, stats.build_invocations);
        put_u64(&mut b, stats.probed_partitions);
        put_u64(&mut b, stats.maintained_rows);
        let baseline = idx.baseline();
        put_f64(&mut b, baseline.match_fraction);
        put_u64(&mut b, baseline.patches);
        put_u64(&mut b, baseline.maintained_rows);
        let fb = idx.query_feedback();
        put_u64(&mut b, fb.times_bound);
        put_f64(&mut b, fb.est_cost_saved);
        put_u64(&mut b, fb.measured_queries);
        put_f64(&mut b, fb.actual_micros);
        put_f64(&mut b, fb.est_cost_executed);
        put_u32(&mut b, idx.partition_count() as u32);
        for pid in 0..idx.partition_count() {
            let part = idx.partition(pid);
            put_u64(&mut b, part.store.nrows());
            match part.last_sorted {
                Some(v) => {
                    b.push(1);
                    put_i64(&mut b, v);
                }
                None => b.push(0),
            }
            let rids = part.store.patch_rids();
            put_u64(&mut b, rids.len() as u64);
            for r in rids {
                put_u64(&mut b, r);
            }
        }
    }
    b
}
