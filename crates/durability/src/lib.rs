#![warn(missing_docs)]
//! Crash safety for PatchIndex tables.
//!
//! This crate wraps the single-writer half of a
//! [`patchindex::ConcurrentTable`] with a durability protocol built from
//! three pieces:
//!
//! * **Statement WAL** ([`wal`]) — every update statement (insert /
//!   modify / delete / index DDL / recompute / flush / publish / advisor
//!   feedback) is appended to an append-only, CRC-framed log *before* it
//!   is applied (log-then-apply). The [`SyncPolicy`] decides when appends
//!   are forced to stable storage.
//! * **Epoch-incremental checkpoints** — at publish time (every
//!   [`DurableOptions::checkpoint_every`] publishes) the writer persists
//!   only the partitions and index versions whose `Arc` pointer changed
//!   since the previous checkpoint; copy-on-write publishing makes
//!   pointer identity a free and exact dirty-set. A small manifest
//!   (written atomically) names the file set and the WAL high-water mark
//!   it covers.
//! * **Recovery** ([`DurableWriter::recover`]) — load the manifest,
//!   restore the newest complete checkpoint, replay the WAL tail past
//!   the high-water mark up to the **last complete publish record**, and
//!   resume. Statements after the last durable publish are discarded:
//!   recovery always lands exactly on a published epoch boundary.
//!
//! Replay is deterministic given the same [`MaintenancePolicy`]: the
//! statement counter, round-robin routing cursor and advisor counters
//! are all part of the checkpoint, so deferred flush points and policy
//! piggyback decisions re-run identically. The crash-point property
//! tests assert the strong form: for a crash at *every* IO boundary,
//! the recovered table's [`state_image`] is byte-identical to replaying
//! the surviving statement prefix on a fresh table.
//!
//! All file IO goes through [`pi_storage::dfs::DurableFs`], so the same
//! code runs against the real filesystem and against the fault-injecting
//! [`pi_storage::dfs::SimFs`] used by the tests.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pi_obs::{Counter, MetricsRegistry};
use pi_storage::dfs::{write_atomic, DurableFs};
use pi_storage::{ColumnData, Partition, RowAddr, Table, Value};

use patchindex::{
    ConcurrentTable, Constraint, Design, IndexedTable, MaintenancePolicy, PatchIndex, TableWriter,
    WorkloadEvent,
};

pub mod wal;

mod codec;

pub use codec::state_image;
pub use wal::{Record, SyncPolicy};

const MANIFEST_NAME: &str = "MANIFEST";

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Tuning knobs for a [`DurableWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// When WAL appends reach stable storage.
    pub sync: SyncPolicy,
    /// Soft WAL segment size; a segment rolls at the first append past
    /// this many bytes.
    pub wal_segment_bytes: usize,
    /// Checkpoint once per this many publishes (1 = every publish).
    /// Between checkpoints the WAL alone carries recovery.
    pub checkpoint_every: u64,
    /// Run [`DurableWriter::compact`] automatically after this many
    /// checkpoints (0 disables automatic compaction).
    pub compact_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::EveryRecord,
            wal_segment_bytes: 4 << 20,
            checkpoint_every: 1,
            compact_every: 4,
        }
    }
}

/// Byte and file counters for the durability subsystem (the economics
/// the `repro durability` experiment reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Total WAL frame bytes appended.
    pub wal_bytes: u64,
    /// Checkpoints taken (incremental or full).
    pub checkpoints: u64,
    /// Total checkpoint bytes written across all checkpoints (manifest
    /// included).
    pub checkpoint_bytes: u64,
    /// Checkpoint files written (reused files are free and not counted).
    pub checkpoint_files: u64,
    /// Bytes written by the most recent checkpoint (manifest included).
    pub last_checkpoint_bytes: u64,
    /// Files written by the most recent checkpoint.
    pub last_checkpoint_files: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Files deleted by compaction (superseded checkpoints, covered WAL
    /// segments, orphaned temporaries).
    pub files_removed: u64,
}

/// What [`DurableWriter::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint the manifest pointed at.
    pub checkpoint_epoch: u64,
    /// Epoch after WAL replay (checkpoint epoch + replayed publishes).
    pub epoch: u64,
    /// The manifest's WAL high-water mark (replay started past it).
    pub hwm: u64,
    /// WAL records replayed (up to and including the last publish).
    pub replayed: usize,
    /// Decodable WAL records discarded because no publish followed them.
    pub discarded: usize,
}

impl RecoveryReport {
    /// Publishes the recovery outcome as `recovery.*` gauges, so the
    /// last crash-recovery's shape shows up in a registry dump alongside
    /// the steady-state WAL and checkpoint metrics.
    pub fn record_to(&self, registry: &MetricsRegistry) {
        registry
            .gauge("recovery.checkpoint_epoch")
            .set(self.checkpoint_epoch as i64);
        registry.gauge("recovery.epoch").set(self.epoch as i64);
        registry
            .gauge("recovery.replayed")
            .set(self.replayed as i64);
        registry
            .gauge("recovery.discarded")
            .set(self.discarded as i64);
    }
}

/// Pre-registered handles for the checkpoint/compaction counters.
struct CkptMetrics {
    checkpoints: Arc<Counter>,
    bytes: Arc<Counter>,
    files: Arc<Counter>,
    compactions: Arc<Counter>,
    files_removed: Arc<Counter>,
}

impl CkptMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        CkptMetrics {
            checkpoints: registry.counter("checkpoint.count"),
            bytes: registry.counter("checkpoint.bytes"),
            files: registry.counter("checkpoint.files"),
            compactions: registry.counter("compact.runs"),
            files_removed: registry.counter("compact.files_removed"),
        }
    }
}

/// The file names one checkpoint generation consists of, plus the shared
/// state handles they serialize — `Arc` pointer identity against these
/// is the next checkpoint's dirty-set test.
struct CkptState {
    parts: Vec<(Arc<Partition>, String)>,
    indexes: Vec<(Arc<PatchIndex>, String)>,
    dict_lens: Vec<usize>,
    dict_file: String,
    manifest: codec::Manifest,
}

/// Applies one WAL record to an indexed table — the replay semantics of
/// every statement [`DurableWriter`] logs. A [`Record::Publish`] flushes
/// pending maintenance (the writer only publishes flushed epochs);
/// epoch bookkeeping is the caller's.
pub fn apply_record(it: &mut IndexedTable, record: &Record) {
    match record {
        Record::Insert(rows) => {
            it.insert(rows);
        }
        Record::Modify {
            pid,
            rids,
            col,
            values,
        } => it.modify(*pid, rids, *col, values),
        Record::Delete { pid, rids } => it.delete(*pid, rids),
        Record::AddIndex {
            col,
            constraint,
            design,
        } => {
            it.add_index(*col, *constraint, *design);
        }
        Record::DropIndex { slot } => {
            it.drop_index(*slot);
        }
        Record::Recompute { slot } => it.recompute_index(*slot),
        Record::Flush => it.flush_maintenance(),
        Record::Publish => it.flush_maintenance(),
        Record::Feedback {
            slot,
            est_cost_saved,
        } => it.record_query_feedback(*slot, *est_cost_saved),
        Record::Timing {
            slot,
            actual_micros,
            est_cost,
        } => it.record_query_timing(*slot, *actual_micros, *est_cost),
    }
}

/// The crash-safe single-writer: wraps a [`TableWriter`] so that every
/// statement is WAL-logged before it is applied and every published
/// epoch can be checkpointed incrementally.
///
/// Statement methods return [`io::Result`]: an `Err` means the statement
/// was **not** logged and **not** applied — the caller may retry or give
/// up, the table state is unchanged either way.
pub struct DurableWriter {
    fs: Arc<dyn DurableFs>,
    dir: PathBuf,
    opts: DurableOptions,
    writer: TableWriter,
    wal: wal::WalWriter,
    epoch: u64,
    publishes_since_ckpt: u64,
    ckpts_since_compact: u64,
    ckpt: Option<CkptState>,
    stats: DurabilityStats,
    metrics: Option<CkptMetrics>,
}

impl DurableWriter {
    /// Starts durability for a fresh table: flushes any staged
    /// maintenance, publishes epoch 0, writes the initial full
    /// checkpoint + manifest, and opens the WAL at sequence 1.
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if `dir` already holds
    /// a manifest — recover instead of clobbering.
    pub fn create(
        mut it: IndexedTable,
        fs: Arc<dyn DurableFs>,
        dir: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> io::Result<(ConcurrentTable, DurableWriter)> {
        let dir = dir.as_ref().to_path_buf();
        fs.create_dir_all(&dir)?;
        if fs.exists(&dir.join(MANIFEST_NAME)) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds a durable table", dir.display()),
            ));
        }
        // The initial checkpoint must not carry pending maintenance, and
        // replay determinism wants a clean statement-stream start.
        it.flush_maintenance();
        let (handle, writer) = ConcurrentTable::new(it);
        let wal = wal::WalWriter::new(
            Arc::clone(&fs),
            dir.clone(),
            opts.sync,
            opts.wal_segment_bytes,
            1,
        );
        let mut dw = DurableWriter {
            fs,
            dir,
            opts,
            writer,
            wal,
            epoch: 0,
            publishes_since_ckpt: 0,
            ckpts_since_compact: 0,
            ckpt: None,
            stats: DurabilityStats::default(),
            metrics: None,
        };
        dw.write_checkpoint(0)?;
        Ok((handle, dw))
    }

    /// Recovers a durable table from `dir`: manifest → checkpoint →
    /// WAL-tail replay up to the last complete publish. Finishes by
    /// writing a fresh checkpoint covering everything replayed and
    /// truncating the WAL, so a crash loop cannot re-pay replay cost.
    ///
    /// `policy` must be the maintenance policy the original run used —
    /// deferred-flush points and policy piggyback decisions replay under
    /// it, and a different policy would diverge from the logged history.
    pub fn recover(
        fs: Arc<dyn DurableFs>,
        dir: impl AsRef<Path>,
        opts: DurableOptions,
        policy: MaintenancePolicy,
    ) -> io::Result<(ConcurrentTable, DurableWriter, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = codec::decode_manifest(&fs.read(&dir.join(MANIFEST_NAME))?)?;
        let meta = codec::decode_meta(&fs.read(&dir.join(&manifest.meta_file))?)?;
        let dicts = codec::decode_dicts(&fs.read(&dir.join(&manifest.dict_file))?)?;
        if meta.fields.len() != dicts.len() {
            return Err(bad("manifest: dict file does not match schema".into()));
        }

        let mut part_cols: Vec<Option<Vec<ColumnData>>> = Vec::new();
        part_cols.resize_with(manifest.part_files.len(), || None);
        let mut part_names: Vec<String> = vec![String::new(); manifest.part_files.len()];
        for file in &manifest.part_files {
            let (pid, cols) = codec::decode_partition(&fs.read(&dir.join(file))?, &dicts)?;
            if pid >= part_cols.len() || part_cols[pid].is_some() {
                return Err(bad(format!("manifest: bad partition id {pid} in {file}")));
            }
            part_cols[pid] = Some(cols);
            part_names[pid] = file.clone();
        }
        let partition_columns: Vec<Vec<ColumnData>> = part_cols
            .into_iter()
            .enumerate()
            .map(|(pid, c)| c.ok_or_else(|| bad(format!("manifest: missing partition {pid}"))))
            .collect::<io::Result<_>>()?;
        let table = Table::restore(
            meta.name.clone(),
            codec::schema_of(&meta),
            partition_columns,
            dicts,
            meta.partitioning.clone().into_partitioning(),
            meta.rr_cursor as usize,
        );

        let mut indexes = Vec::with_capacity(manifest.index_files.len());
        for file in &manifest.index_files {
            indexes.push(Arc::new(PatchIndex::load_checkpoint_via(
                fs.as_ref(),
                &dir.join(file),
            )?));
        }

        let mut it = IndexedTable::with_restored_indexes(table, indexes, meta.statements);
        it.set_policy(policy);

        // Prime the incremental dirty-set with the loaded handles *before*
        // replay: partitions and indexes replay leaves untouched keep
        // pointer identity and reuse their checkpoint files.
        let prime = CkptState {
            parts: it
                .table()
                .partitions()
                .iter()
                .cloned()
                .zip(part_names)
                .collect(),
            indexes: it
                .indexes()
                .iter()
                .cloned()
                .zip(manifest.index_files.iter().cloned())
                .collect(),
            dict_lens: dict_lens_of(it.table()),
            dict_file: manifest.dict_file.clone(),
            manifest: manifest.clone(),
        };

        // Replay the WAL tail, stopping at the last complete publish:
        // statements past it were never part of a durable epoch.
        let tail: Vec<(u64, Record)> = wal::read_log(fs.as_ref(), &dir)?
            .into_iter()
            .filter(|(seq, _)| *seq > manifest.hwm)
            .collect();
        let max_seq = tail.iter().map(|(s, _)| *s).max().unwrap_or(manifest.hwm);
        let apply_upto = tail
            .iter()
            .rposition(|(_, r)| matches!(r, Record::Publish))
            .map_or(0, |i| i + 1);
        let mut publishes = 0u64;
        for (_, record) in &tail[..apply_upto] {
            if matches!(record, Record::Publish) {
                publishes += 1;
            }
            apply_record(&mut it, record);
        }
        let report = RecoveryReport {
            checkpoint_epoch: manifest.epoch,
            epoch: manifest.epoch + publishes,
            hwm: manifest.hwm,
            replayed: apply_upto,
            discarded: tail.len() - apply_upto,
        };

        let (handle, writer) = ConcurrentTable::new(it);
        let wal = wal::WalWriter::new(
            Arc::clone(&fs),
            dir.clone(),
            opts.sync,
            opts.wal_segment_bytes,
            max_seq + 1,
        );
        let mut dw = DurableWriter {
            fs,
            dir,
            opts,
            writer,
            wal,
            epoch: report.epoch,
            publishes_since_ckpt: 0,
            ckpts_since_compact: 0,
            ckpt: Some(prime),
            stats: DurabilityStats::default(),
            metrics: None,
        };
        // Finalize: make the recovered state the durable baseline (hwm
        // covers even the discarded tail so its records can never be
        // replayed again), then drop the now-covered WAL. Ordering is
        // crash-safe: the manifest is durable before any segment dies.
        dw.write_checkpoint(max_seq)?;
        dw.wal.remove_all_segments()?;
        dw.compact()?;
        Ok((handle, dw, report))
    }

    /// Inserts rows (WAL-logged, then applied).
    pub fn insert(&mut self, rows: &[Vec<Value>]) -> io::Result<Vec<RowAddr>> {
        self.wal.append(&Record::Insert(rows.to_vec()))?;
        Ok(self.writer.insert(rows))
    }

    /// Patches one column of visible rows (WAL-logged, then applied).
    pub fn modify(
        &mut self,
        pid: usize,
        rids: &[usize],
        col: usize,
        values: &[Value],
    ) -> io::Result<()> {
        self.wal.append(&Record::Modify {
            pid,
            rids: rids.to_vec(),
            col,
            values: values.to_vec(),
        })?;
        self.writer.modify(pid, rids, col, values);
        Ok(())
    }

    /// Deletes visible rows (WAL-logged, then applied).
    pub fn delete(&mut self, pid: usize, rids: &[usize]) -> io::Result<()> {
        self.wal.append(&Record::Delete {
            pid,
            rids: rids.to_vec(),
        })?;
        self.writer.delete(pid, rids);
        Ok(())
    }

    /// Creates a PatchIndex (WAL-logged, then applied); returns its slot.
    pub fn add_index(
        &mut self,
        col: usize,
        constraint: Constraint,
        design: Design,
    ) -> io::Result<usize> {
        self.wal.append(&Record::AddIndex {
            col,
            constraint,
            design,
        })?;
        Ok(self.writer.add_index(col, constraint, design))
    }

    /// Drops the index in `slot` (WAL-logged, then applied).
    pub fn drop_index(&mut self, slot: usize) -> io::Result<Arc<PatchIndex>> {
        self.wal.append(&Record::DropIndex { slot })?;
        Ok(self.writer.drop_index(slot))
    }

    /// Recomputes the index in `slot` (WAL-logged, then applied).
    pub fn recompute_index(&mut self, slot: usize) -> io::Result<()> {
        self.wal.append(&Record::Recompute { slot })?;
        self.writer.recompute_index(slot);
        Ok(())
    }

    /// Flushes deferred maintenance (WAL-logged, then applied — the log
    /// record matters because a later recompute discards pending work,
    /// so flush points are part of the history).
    pub fn flush_maintenance(&mut self) -> io::Result<()> {
        self.wal.append(&Record::Flush)?;
        self.writer.flush_maintenance();
        Ok(())
    }

    /// Records planner feedback against `slot` (WAL-logged: the advisor's
    /// observe state must survive recovery).
    pub fn record_query_feedback(&mut self, slot: usize, est_cost_saved: f64) -> io::Result<()> {
        self.wal.append(&Record::Feedback {
            slot,
            est_cost_saved,
        })?;
        self.writer
            .staging_mut()
            .record_query_feedback(slot, est_cost_saved);
        Ok(())
    }

    /// Records a measured query execution against `slot` (WAL-logged).
    pub fn record_query_timing(
        &mut self,
        slot: usize,
        actual_micros: f64,
        est_cost: f64,
    ) -> io::Result<()> {
        self.wal.append(&Record::Timing {
            slot,
            actual_micros,
            est_cost,
        })?;
        self.writer
            .staging_mut()
            .record_query_timing(slot, actual_micros, est_cost);
        Ok(())
    }

    /// Publishes a flushed epoch durably: drains reader-reported
    /// feedback through the WAL, logs the publish record, applies the
    /// sync policy (a returned `Ok` means the epoch will survive any
    /// later crash under [`SyncPolicy::EveryRecord`] /
    /// [`SyncPolicy::EveryPublish`]), then publishes and — every
    /// [`DurableOptions::checkpoint_every`] publishes — checkpoints.
    /// Returns the new epoch.
    pub fn publish(&mut self) -> io::Result<u64> {
        // Reader evidence arrives outside the statement path; route the
        // state-bearing events through the log so replay restores them.
        for event in self.writer.sink().drain() {
            match event {
                WorkloadEvent::Query { col, shape } => {
                    // Advisory only (query-log heat): not part of the
                    // recovered state image, applied without logging.
                    self.writer.staging_mut().record_query(col, shape);
                }
                WorkloadEvent::Feedback {
                    column,
                    constraint,
                    est_cost_saved,
                } => {
                    if let Some(slot) = self.slot_of(column, constraint) {
                        self.record_query_feedback(slot, est_cost_saved)?;
                    }
                }
                WorkloadEvent::Timing {
                    column,
                    constraint,
                    actual_micros,
                    est_cost,
                } => {
                    if let Some(slot) = self.slot_of(column, constraint) {
                        self.record_query_timing(slot, actual_micros, est_cost)?;
                    }
                }
            }
        }
        self.wal.append(&Record::Publish)?;
        let publish_seq = self.wal.next_seq() - 1;
        if self.opts.sync == SyncPolicy::EveryPublish {
            self.wal.sync_all()?;
        }
        self.writer.publish_flushed();
        self.epoch += 1;
        self.publishes_since_ckpt += 1;
        if self.publishes_since_ckpt >= self.opts.checkpoint_every {
            self.write_checkpoint(publish_seq)?;
        }
        Ok(self.epoch)
    }

    /// Starts reporting durability activity to a metrics registry:
    /// `wal.appends` / `wal.bytes` / `wal.fsyncs` and the `wal.fsync_nanos`
    /// latency histogram from the log path, `checkpoint.*` and
    /// `compact.*` from the checkpoint path.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.wal.set_metrics(wal::WalMetrics::new(registry));
        self.metrics = Some(CkptMetrics::new(registry));
    }

    fn slot_of(&self, column: usize, constraint: Constraint) -> Option<usize> {
        self.writer
            .staging()
            .indexes()
            .iter()
            .position(|idx| idx.column() == column && idx.constraint() == constraint)
    }

    /// Writes a checkpoint of the current (flushed) staging state
    /// covering WAL sequences up to `hwm`. Only files whose backing
    /// state changed since the previous checkpoint are written; the rest
    /// are re-referenced by the new manifest.
    fn write_checkpoint(&mut self, hwm: u64) -> io::Result<()> {
        let epoch = self.epoch;
        let mut bytes = 0u64;
        let mut files = 0u64;
        let it = self.writer.staging();
        let table = it.table();

        let dict_lens = dict_lens_of(table);
        let dict_file = match &self.ckpt {
            Some(prev) if prev.dict_lens == dict_lens => prev.dict_file.clone(),
            _ => {
                let name = format!("dict-e{epoch:012}.ckp");
                let data = codec::encode_dicts(table);
                write_atomic(self.fs.as_ref(), &self.dir.join(&name), &data)?;
                bytes += data.len() as u64;
                files += 1;
                name
            }
        };

        let mut parts = Vec::with_capacity(table.partition_count());
        for (pid, arc) in table.partitions().iter().enumerate() {
            let reused = self
                .ckpt
                .as_ref()
                .and_then(|prev| prev.parts.get(pid))
                .filter(|(old, _)| Arc::ptr_eq(old, arc))
                .map(|(_, name)| name.clone());
            let name = match reused {
                Some(name) => name,
                None => {
                    let name = format!("part-{pid}-e{epoch:012}.ckp");
                    let data = codec::encode_partition(table, pid);
                    write_atomic(self.fs.as_ref(), &self.dir.join(&name), &data)?;
                    bytes += data.len() as u64;
                    files += 1;
                    name
                }
            };
            parts.push((Arc::clone(arc), name));
        }

        let mut indexes = Vec::with_capacity(it.indexes().len());
        for (slot, idx) in it.indexes().iter().enumerate() {
            let reused = self
                .ckpt
                .as_ref()
                .and_then(|prev| prev.indexes.iter().find(|(old, _)| Arc::ptr_eq(old, idx)))
                .map(|(_, name)| name.clone());
            let name = match reused {
                Some(name) => name,
                None => {
                    let name = format!("idx-{slot}-e{epoch:012}.ckp");
                    let data = idx.checkpoint_bytes();
                    write_atomic(self.fs.as_ref(), &self.dir.join(&name), &data)?;
                    bytes += data.len() as u64;
                    files += 1;
                    name
                }
            };
            indexes.push((Arc::clone(idx), name));
        }

        // Meta changes every statement (the counter), so it is written
        // every checkpoint; it is a few hundred bytes.
        let meta_file = format!("meta-e{epoch:012}.ckp");
        let meta_data = codec::encode_meta(it);
        write_atomic(self.fs.as_ref(), &self.dir.join(&meta_file), &meta_data)?;
        bytes += meta_data.len() as u64;
        files += 1;

        let manifest = codec::Manifest {
            epoch,
            hwm,
            meta_file,
            dict_file: dict_file.clone(),
            part_files: parts.iter().map(|(_, n)| n.clone()).collect(),
            index_files: indexes.iter().map(|(_, n)| n.clone()).collect(),
        };
        let manifest_data = codec::encode_manifest(&manifest);
        write_atomic(
            self.fs.as_ref(),
            &self.dir.join(MANIFEST_NAME),
            &manifest_data,
        )?;
        bytes += manifest_data.len() as u64;
        files += 1;

        self.ckpt = Some(CkptState {
            parts,
            indexes,
            dict_lens,
            dict_file,
            manifest,
        });
        self.publishes_since_ckpt = 0;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += bytes;
        self.stats.checkpoint_files += files;
        self.stats.last_checkpoint_bytes = bytes;
        self.stats.last_checkpoint_files = files;
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
            m.bytes.add(bytes);
            m.files.add(files);
        }

        self.ckpts_since_compact += 1;
        if self.opts.compact_every > 0 && self.ckpts_since_compact >= self.opts.compact_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Garbage-collects the durability directory: deletes checkpoint
    /// files and temporaries the current manifest does not reference,
    /// and WAL segments fully covered by its high-water mark. Safe at
    /// any crash point — the manifest is always durable before anything
    /// it supersedes is removed.
    pub fn compact(&mut self) -> io::Result<usize> {
        self.ckpts_since_compact = 0;
        let Some(ckpt) = &self.ckpt else {
            return Ok(0);
        };
        let m = &ckpt.manifest;
        let mut referenced: HashSet<&str> = HashSet::new();
        referenced.insert(m.meta_file.as_str());
        referenced.insert(m.dict_file.as_str());
        for f in &m.part_files {
            referenced.insert(f);
        }
        for f in &m.index_files {
            referenced.insert(f);
        }
        let hwm = m.hwm;

        let mut removed = 0usize;
        let segments = wal::list_segments(self.fs.as_ref(), &self.dir)?;
        for (i, (_, seg)) in segments.iter().enumerate() {
            // A segment is dead when the *next* segment starts at or
            // below hwm+1 (every record in it is covered). The newest
            // segment is never removed here: the writer may still be
            // appending to it.
            if i + 1 < segments.len() && segments[i + 1].0 <= hwm + 1 && self.fs.remove(seg).is_ok()
            {
                removed += 1;
            }
        }
        for path in self.fs.list(&self.dir)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let is_ckpt = name.ends_with(".ckp");
            let is_tmp = name.ends_with(".tmp");
            if (is_ckpt || is_tmp) && !referenced.contains(name) && self.fs.remove(&path).is_ok() {
                removed += 1;
            }
        }
        if removed > 0 {
            self.fs.fsync_dir(&self.dir)?;
            self.stats.files_removed += removed as u64;
        }
        self.stats.compactions += 1;
        if let Some(m) = &self.metrics {
            m.compactions.inc();
            m.files_removed.add(removed as u64);
        }
        Ok(removed)
    }

    /// The bytes a non-incremental checkpoint of the current state would
    /// write (every partition, every index, dicts, meta) — the baseline
    /// the incremental economics are measured against. Requires a
    /// flushed state, like checkpointing itself.
    pub fn full_checkpoint_bytes(&self) -> u64 {
        let it = self.writer.staging();
        let table = it.table();
        let mut total = codec::encode_dicts(table).len() + codec::encode_meta(it).len();
        for pid in 0..table.partition_count() {
            total += codec::encode_partition(table, pid).len();
        }
        for idx in it.indexes() {
            total += idx.checkpoint_bytes().len();
        }
        total as u64
    }

    /// The current epoch (publishes since creation, across recoveries).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The staging table (reflects all applied statements).
    pub fn staging(&self) -> &IndexedTable {
        self.writer.staging()
    }

    /// The wrapped snapshot writer (read-only: statements must go
    /// through the logging methods on this type).
    pub fn table_writer(&self) -> &TableWriter {
        &self.writer
    }

    /// Byte/file counters, including WAL bytes appended so far.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            wal_bytes: self.wal.bytes_appended,
            ..self.stats
        }
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn dict_lens_of(table: &Table) -> Vec<usize> {
    (0..table.schema().len())
        .map(|c| table.dict(c).map_or(0, |d| d.read().len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchindex::SortDir;
    use pi_storage::dfs::SimFs;
    use pi_storage::{DataType, Field, Partitioning, Schema};

    fn fresh(parts: usize) -> IndexedTable {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
                Field::new("s", DataType::Str),
            ]),
            parts,
            Partitioning::RoundRobin,
        );
        for pid in 0..parts {
            let base = pid as i64 * 10;
            let codes = {
                let mut d = t.dict(2).unwrap().write();
                vec![
                    d.encode(&format!("p{pid}-a")),
                    d.encode(&format!("p{pid}-b")),
                    d.encode(&format!("p{pid}-a")),
                ]
            };
            let dict = Arc::clone(t.dict(2).unwrap());
            t.load_partition(
                pid,
                &[
                    ColumnData::Int(vec![base, base + 1, base + 2]),
                    ColumnData::Int(vec![base * 2, base * 2 + 2, base * 2 + 4]),
                    ColumnData::Str { codes, dict },
                ],
            );
        }
        t.propagate_all();
        IndexedTable::new(t)
    }

    fn row(k: i64, v: i64, s: &str) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v), Value::Str(s.to_string())]
    }

    fn setup(parts: usize, opts: DurableOptions) -> (Arc<SimFs>, ConcurrentTable, DurableWriter) {
        let fs = Arc::new(SimFs::new());
        let dyn_fs: Arc<dyn DurableFs> = fs.clone();
        let (handle, dw) =
            DurableWriter::create(fresh(parts), dyn_fs, PathBuf::from("/db"), opts).unwrap();
        (fs, handle, dw)
    }

    #[test]
    fn create_then_recover_restores_the_exact_state() {
        let (fs, _handle, mut dw) = setup(2, DurableOptions::default());
        dw.add_index(1, Constraint::NearlyUnique, Design::Bitmap)
            .unwrap();
        dw.insert(&[row(100, 2, "x"), row(101, 24, "p0-a")])
            .unwrap();
        dw.modify(0, &[0], 1, &[Value::Int(2)]).unwrap();
        dw.delete(1, &[1]).unwrap();
        dw.record_query_feedback(0, 42.5).unwrap();
        dw.publish().unwrap();
        let want = state_image(dw.staging());
        let epoch = dw.epoch();
        drop(dw);
        fs.crash(7);

        let (_h2, dw2, report) = DurableWriter::recover(
            fs.clone(),
            PathBuf::from("/db"),
            DurableOptions::default(),
            MaintenancePolicy::default(),
        )
        .unwrap();
        assert_eq!(report.epoch, epoch);
        assert_eq!(state_image(dw2.staging()), want);
        dw2.staging().check_consistency();
    }

    #[test]
    fn unpublished_tail_is_discarded_on_recovery() {
        let (fs, _handle, mut dw) = setup(2, DurableOptions::default());
        dw.insert(&[row(100, 2, "x")]).unwrap();
        dw.publish().unwrap();
        let at_publish = state_image(dw.staging());
        // Statements past the publish are durable in the WAL but no
        // publish follows them: recovery must land on the epoch boundary.
        dw.insert(&[row(101, 3, "y")]).unwrap();
        dw.delete(0, &[0]).unwrap();
        drop(dw);
        fs.crash(3);

        let (_h2, dw2, report) = DurableWriter::recover(
            fs.clone(),
            PathBuf::from("/db"),
            DurableOptions::default(),
            MaintenancePolicy::default(),
        )
        .unwrap();
        assert_eq!(report.discarded, 2);
        assert_eq!(state_image(dw2.staging()), at_publish);
    }

    #[test]
    fn checkpoints_are_incremental_over_clean_partitions() {
        let (_fs, _handle, mut dw) = setup(8, DurableOptions::default());
        let full = dw.stats().last_checkpoint_files;
        assert!(
            full > 3,
            "the create-time checkpoint writes every partition"
        );
        // Touch one partition only: the next checkpoint rewrites that
        // partition + meta + manifest, nothing else.
        dw.modify(3, &[0], 1, &[Value::Int(999)]).unwrap();
        dw.publish().unwrap();
        let incr = dw.stats();
        assert_eq!(incr.last_checkpoint_files, 3);
        assert!(incr.last_checkpoint_bytes < dw.full_checkpoint_bytes());
    }

    #[test]
    fn recovery_is_idempotent_across_repeated_crashes() {
        let (fs, _handle, mut dw) = setup(2, DurableOptions::default());
        dw.add_index(
            0,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Identifier,
        )
        .unwrap();
        dw.insert(&[row(100, 2, "z"), row(50, 3, "p1-b")]).unwrap();
        dw.publish().unwrap();
        let want = state_image(dw.staging());
        drop(dw);
        for seed in 0..4 {
            fs.crash(seed);
            let (_h, dw, _r) = DurableWriter::recover(
                fs.clone(),
                PathBuf::from("/db"),
                DurableOptions::default(),
                MaintenancePolicy::default(),
            )
            .unwrap();
            assert_eq!(state_image(dw.staging()), want, "seed {seed}");
            drop(dw);
        }
    }

    #[test]
    fn compaction_prunes_superseded_files_and_covered_segments() {
        let opts = DurableOptions {
            compact_every: 0, // manual compaction for the test
            wal_segment_bytes: 32,
            ..DurableOptions::default()
        };
        let (fs, _handle, mut dw) = setup(2, opts);
        for i in 0..6 {
            dw.insert(&[row(1000 + i, i, "w")]).unwrap();
            dw.publish().unwrap();
        }
        let before = fs.list(Path::new("/db")).unwrap().len();
        let removed = dw.compact().unwrap();
        let after = fs.list(Path::new("/db")).unwrap().len();
        assert!(removed > 0, "superseded checkpoints must be collected");
        assert_eq!(before - removed, after);
        // Everything still referenced survives: recovery works.
        drop(dw);
        fs.crash(11);
        let (_h, dw, _r) = DurableWriter::recover(
            fs.clone(),
            PathBuf::from("/db"),
            opts,
            MaintenancePolicy::default(),
        )
        .unwrap();
        dw.staging().check_consistency();
    }

    #[test]
    fn advisor_counters_survive_recovery() {
        let (fs, _handle, mut dw) = setup(2, DurableOptions::default());
        dw.add_index(1, Constraint::NearlyUnique, Design::Bitmap)
            .unwrap();
        dw.record_query_feedback(0, 10.0).unwrap();
        dw.record_query_timing(0, 5.5, 44.0).unwrap();
        dw.publish().unwrap();
        // A second epoch so the counters cross a checkpoint boundary too.
        dw.record_query_feedback(0, 2.5).unwrap();
        dw.publish().unwrap();
        drop(dw);
        fs.crash(5);
        let (_h, dw, _r) = DurableWriter::recover(
            fs.clone(),
            PathBuf::from("/db"),
            DurableOptions::default(),
            MaintenancePolicy::default(),
        )
        .unwrap();
        let fb = dw.staging().index(0).query_feedback();
        assert_eq!(fb.times_bound, 2);
        assert!((fb.est_cost_saved - 12.5).abs() < 1e-9);
        assert_eq!(fb.measured_queries, 1);
        assert!((fb.actual_micros - 5.5).abs() < 1e-9);
    }

    #[test]
    fn metrics_registry_mirrors_durability_stats() {
        let registry = Arc::new(MetricsRegistry::new());
        let (fs, _handle, mut dw) = setup(2, DurableOptions::default());
        dw.attach_metrics(&registry);
        dw.insert(&[row(100, 2, "x")]).unwrap();
        dw.modify(0, &[0], 1, &[Value::Int(7)]).unwrap();
        dw.publish().unwrap();
        let stats = dw.stats();
        assert_eq!(registry.counter("wal.appends").get(), 3);
        // The registry was attached after the create-time checkpoint, so
        // it counts only the publish-time one.
        assert_eq!(registry.counter("checkpoint.count").get(), 1);
        assert_eq!(
            registry.counter("checkpoint.bytes").get(),
            stats.last_checkpoint_bytes
        );
        let fsync = registry.histogram("wal.fsync_nanos").snapshot();
        assert_eq!(fsync.count, registry.counter("wal.fsyncs").get());
        assert!(fsync.count >= 3, "EveryRecord syncs each append");

        // Recovery gauges.
        drop(dw);
        fs.crash(1);
        let (_h, _dw, report) = DurableWriter::recover(
            fs.clone(),
            PathBuf::from("/db"),
            DurableOptions::default(),
            MaintenancePolicy::default(),
        )
        .unwrap();
        report.record_to(&registry);
        assert_eq!(registry.gauge("recovery.epoch").get(), report.epoch as i64);
        assert_eq!(
            registry.gauge("recovery.replayed").get(),
            report.replayed as i64
        );
    }

    #[test]
    fn create_refuses_an_existing_durable_directory() {
        let (fs, _handle, dw) = setup(1, DurableOptions::default());
        drop(dw);
        let dyn_fs: Arc<dyn DurableFs> = fs;
        let err = match DurableWriter::create(
            fresh(1),
            dyn_fs,
            PathBuf::from("/db"),
            DurableOptions::default(),
        ) {
            Ok(_) => panic!("create over an existing manifest must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }
}
