//! The statement write-ahead log.
//!
//! Every update statement against a [`crate::DurableWriter`] is encoded as
//! one WAL record and appended **before** it is applied (log-then-apply:
//! if the append fails, the statement is not applied, so the durable log
//! always describes a superset of the applied state). Records live in
//! append-only segment files `wal-<startseq>.log`; each record is framed
//!
//! ```text
//! [len: u32][crc32(payload): u32][payload]
//! payload = [seq: u64][type: u8][body]
//! ```
//!
//! so a torn tail or a flipped bit is detected by the checksum and read
//! as end-of-segment, never parsed into a half statement. Sequence
//! numbers are contiguous across segments; the reader refuses any gap,
//! which is what lets it distinguish "stale pre-crash segment tail" from
//! "the log continues in the next segment".

use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use pi_obs::{Counter, Histogram, MetricsRegistry};
use pi_storage::crc::crc32;
use pi_storage::dfs::DurableFs;
use pi_storage::Value;

use patchindex::{Constraint, Design, SortDir};

/// When WAL appends are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every record — no acknowledged statement is ever lost.
    #[default]
    EveryRecord,
    /// fsync once per publish — an epoch is durable the moment
    /// `publish()` returns; statements inside an unpublished epoch may be
    /// lost (they would be discarded by recovery anyway — recovery always
    /// lands on a published prefix).
    EveryPublish,
    /// Never fsync the WAL explicitly; durability degrades to the atomic
    /// checkpoints written at publish time. Cheapest, weakest.
    OsBuffered,
}

/// One logged statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Rows inserted through the writer.
    Insert(Vec<Vec<Value>>),
    /// One column of one partition patched.
    Modify {
        /// Partition id.
        pid: usize,
        /// Visible rowIDs patched.
        rids: Vec<usize>,
        /// Column index.
        col: usize,
        /// Replacement values, one per rid.
        values: Vec<Value>,
    },
    /// Visible rows of one partition deleted.
    Delete {
        /// Partition id.
        pid: usize,
        /// Visible rowIDs deleted (pre-delete numbering).
        rids: Vec<usize>,
    },
    /// A PatchIndex created.
    AddIndex {
        /// Indexed column.
        col: usize,
        /// Constraint kind.
        constraint: Constraint,
        /// Bitmap or Identifier design.
        design: Design,
    },
    /// The index in `slot` dropped.
    DropIndex {
        /// Slot at drop time.
        slot: usize,
    },
    /// The index in `slot` recomputed from the table.
    Recompute {
        /// Slot at recompute time.
        slot: usize,
    },
    /// All deferred maintenance flushed explicitly.
    Flush,
    /// An epoch published (durable high-water marks point at these).
    Publish,
    /// Optimizer feedback recorded against the index in `slot`.
    Feedback {
        /// Slot at record time.
        slot: usize,
        /// Estimated planner cost saved.
        est_cost_saved: f64,
    },
    /// A measured query execution recorded against the index in `slot`.
    Timing {
        /// Slot at record time.
        slot: usize,
        /// Measured wall-clock micros.
        actual_micros: f64,
        /// Estimated cost of the chosen plan.
        est_cost: f64,
    },
}

const T_INSERT: u8 = 1;
const T_MODIFY: u8 = 2;
const T_DELETE: u8 = 3;
const T_ADD_INDEX: u8 = 4;
const T_DROP_INDEX: u8 = 5;
const T_RECOMPUTE: u8 = 6;
const T_FLUSH: u8 = 7;
const T_PUBLISH: u8 = 8;
const T_FEEDBACK: u8 = 9;
const T_TIMING: u8 = 10;

/// Upper bound on one frame's payload — anything larger is treated as a
/// corrupt length field, not an allocation request.
const MAX_PAYLOAD: u32 = 64 << 20;

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(b: &mut Vec<u8>, v: f64) {
    put_u64(b, v.to_bits());
}

pub(crate) fn put_value(b: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            b.push(0);
            b.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            b.push(1);
            b.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            b.push(2);
            put_u32(b, s.len() as u32);
            b.extend_from_slice(s.as_bytes());
        }
    }
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

pub(crate) fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

pub(crate) fn read_value(r: &mut impl Read) -> io::Result<Value> {
    match read_u8(r)? {
        0 => {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            Ok(Value::Int(i64::from_le_bytes(buf)))
        }
        1 => Ok(Value::Float(read_f64(r)?)),
        2 => {
            let len = read_u32(r)? as usize;
            let mut buf = vec![0u8; len];
            r.read_exact(&mut buf)?;
            String::from_utf8(buf)
                .map(Value::Str)
                .map_err(|_| bad("non-utf8 string value"))
        }
        t => Err(bad(&format!("unknown value tag {t}"))),
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn constraint_tag(c: Constraint) -> u8 {
    match c {
        Constraint::NearlyUnique => 0,
        Constraint::NearlySorted(SortDir::Asc) => 1,
        Constraint::NearlySorted(SortDir::Desc) => 2,
        Constraint::NearlyConstant => 3,
    }
}

fn constraint_from_tag(tag: u8) -> io::Result<Constraint> {
    match tag {
        0 => Ok(Constraint::NearlyUnique),
        1 => Ok(Constraint::NearlySorted(SortDir::Asc)),
        2 => Ok(Constraint::NearlySorted(SortDir::Desc)),
        3 => Ok(Constraint::NearlyConstant),
        t => Err(bad(&format!("unknown constraint tag {t}"))),
    }
}

impl Record {
    fn encode_body(&self, b: &mut Vec<u8>) {
        match self {
            Record::Insert(rows) => {
                put_u32(b, rows.len() as u32);
                for row in rows {
                    put_u32(b, row.len() as u32);
                    for v in row {
                        put_value(b, v);
                    }
                }
            }
            Record::Modify {
                pid,
                rids,
                col,
                values,
            } => {
                put_u32(b, *pid as u32);
                put_u32(b, *col as u32);
                put_u32(b, rids.len() as u32);
                for r in rids {
                    put_u64(b, *r as u64);
                }
                for v in values {
                    put_value(b, v);
                }
            }
            Record::Delete { pid, rids } => {
                put_u32(b, *pid as u32);
                put_u32(b, rids.len() as u32);
                for r in rids {
                    put_u64(b, *r as u64);
                }
            }
            Record::AddIndex {
                col,
                constraint,
                design,
            } => {
                put_u32(b, *col as u32);
                b.push(constraint_tag(*constraint));
                b.push(matches!(design, Design::Identifier) as u8);
            }
            Record::DropIndex { slot } | Record::Recompute { slot } => {
                put_u32(b, *slot as u32);
            }
            Record::Flush | Record::Publish => {}
            Record::Feedback {
                slot,
                est_cost_saved,
            } => {
                put_u32(b, *slot as u32);
                put_f64(b, *est_cost_saved);
            }
            Record::Timing {
                slot,
                actual_micros,
                est_cost,
            } => {
                put_u32(b, *slot as u32);
                put_f64(b, *actual_micros);
                put_f64(b, *est_cost);
            }
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Record::Insert(_) => T_INSERT,
            Record::Modify { .. } => T_MODIFY,
            Record::Delete { .. } => T_DELETE,
            Record::AddIndex { .. } => T_ADD_INDEX,
            Record::DropIndex { .. } => T_DROP_INDEX,
            Record::Recompute { .. } => T_RECOMPUTE,
            Record::Flush => T_FLUSH,
            Record::Publish => T_PUBLISH,
            Record::Feedback { .. } => T_FEEDBACK,
            Record::Timing { .. } => T_TIMING,
        }
    }

    fn decode(tag: u8, r: &mut impl Read) -> io::Result<Record> {
        Ok(match tag {
            T_INSERT => {
                let nrows = read_u32(r)? as usize;
                let mut rows = Vec::with_capacity(nrows.min(1 << 16));
                for _ in 0..nrows {
                    let ncols = read_u32(r)? as usize;
                    let mut row = Vec::with_capacity(ncols.min(1 << 10));
                    for _ in 0..ncols {
                        row.push(read_value(r)?);
                    }
                    rows.push(row);
                }
                Record::Insert(rows)
            }
            T_MODIFY => {
                let pid = read_u32(r)? as usize;
                let col = read_u32(r)? as usize;
                let n = read_u32(r)? as usize;
                let mut rids = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    rids.push(read_u64(r)? as usize);
                }
                let mut values = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    values.push(read_value(r)?);
                }
                Record::Modify {
                    pid,
                    rids,
                    col,
                    values,
                }
            }
            T_DELETE => {
                let pid = read_u32(r)? as usize;
                let n = read_u32(r)? as usize;
                let mut rids = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    rids.push(read_u64(r)? as usize);
                }
                Record::Delete { pid, rids }
            }
            T_ADD_INDEX => Record::AddIndex {
                col: read_u32(r)? as usize,
                constraint: constraint_from_tag(read_u8(r)?)?,
                design: if read_u8(r)? == 1 {
                    Design::Identifier
                } else {
                    Design::Bitmap
                },
            },
            T_DROP_INDEX => Record::DropIndex {
                slot: read_u32(r)? as usize,
            },
            T_RECOMPUTE => Record::Recompute {
                slot: read_u32(r)? as usize,
            },
            T_FLUSH => Record::Flush,
            T_PUBLISH => Record::Publish,
            T_FEEDBACK => Record::Feedback {
                slot: read_u32(r)? as usize,
                est_cost_saved: read_f64(r)?,
            },
            T_TIMING => Record::Timing {
                slot: read_u32(r)? as usize,
                actual_micros: read_f64(r)?,
                est_cost: read_f64(r)?,
            },
            t => return Err(bad(&format!("unknown record type {t}"))),
        })
    }
}

fn segment_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.log")
}

fn segment_start_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

/// Lists a directory's WAL segments in sequence order.
pub(crate) fn list_segments(fs: &dyn DurableFs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs: Vec<(u64, PathBuf)> = fs
        .list(dir)?
        .into_iter()
        .filter_map(|p| segment_start_seq(&p).map(|s| (s, p)))
        .collect();
    segs.sort();
    Ok(segs)
}

/// Pre-registered registry handles for the WAL's hot path — one lookup
/// at attach time, atomic bumps per record afterwards.
#[derive(Debug)]
pub(crate) struct WalMetrics {
    pub appends: Arc<Counter>,
    pub bytes: Arc<Counter>,
    pub fsyncs: Arc<Counter>,
    pub fsync_nanos: Arc<Histogram>,
}

impl WalMetrics {
    pub fn new(registry: &MetricsRegistry) -> Self {
        WalMetrics {
            appends: registry.counter("wal.appends"),
            bytes: registry.counter("wal.bytes"),
            fsyncs: registry.counter("wal.fsyncs"),
            fsync_nanos: registry.histogram("wal.fsync_nanos"),
        }
    }
}

/// The append half of the WAL.
#[derive(Debug)]
pub(crate) struct WalWriter {
    fs: Arc<dyn DurableFs>,
    dir: PathBuf,
    sync: SyncPolicy,
    segment_bytes: usize,
    cur_seg: Option<PathBuf>,
    cur_seg_bytes: usize,
    next_seq: u64,
    /// Segments appended to since their last fsync.
    dirty_segs: Vec<PathBuf>,
    /// Whether a segment was created/removed since the last dir fsync.
    dir_dirty: bool,
    /// Total frame bytes appended (durability economics reporting).
    pub bytes_appended: u64,
    metrics: Option<WalMetrics>,
}

impl WalWriter {
    pub fn new(
        fs: Arc<dyn DurableFs>,
        dir: PathBuf,
        sync: SyncPolicy,
        segment_bytes: usize,
        next_seq: u64,
    ) -> Self {
        WalWriter {
            fs,
            dir,
            sync,
            segment_bytes: segment_bytes.max(1),
            cur_seg: None,
            cur_seg_bytes: 0,
            next_seq,
            dirty_segs: Vec::new(),
            dir_dirty: false,
            bytes_appended: 0,
            metrics: None,
        }
    }

    /// Starts reporting append counts/bytes and fsync latency to a
    /// metrics registry.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record (rolling segments as needed) and applies the
    /// per-record half of the sync policy. Returns the record's sequence
    /// number. On error nothing was logged: the caller must not apply
    /// the statement.
    pub fn append(&mut self, record: &Record) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::new();
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.push(record.tag());
        record.encode_body(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);

        if self.cur_seg.is_none() || self.cur_seg_bytes >= self.segment_bytes {
            self.cur_seg = Some(self.dir.join(segment_name(seq)));
            self.cur_seg_bytes = 0;
            self.dir_dirty = true;
        }
        let seg = self.cur_seg.clone().expect("segment just ensured");
        self.fs.append(&seg, &frame)?;
        self.cur_seg_bytes += frame.len();
        self.bytes_appended += frame.len() as u64;
        self.next_seq += 1;
        if let Some(m) = &self.metrics {
            m.appends.inc();
            m.bytes.add(frame.len() as u64);
        }
        match self.sync {
            SyncPolicy::EveryRecord => {
                let start = Instant::now();
                self.fs.fsync(&seg)?;
                if self.dir_dirty {
                    self.fs.fsync_dir(&self.dir)?;
                    self.dir_dirty = false;
                }
                if let Some(m) = &self.metrics {
                    m.fsyncs.inc();
                    m.fsync_nanos.record(start.elapsed().as_nanos() as u64);
                }
            }
            SyncPolicy::EveryPublish | SyncPolicy::OsBuffered => {
                if !self.dirty_segs.contains(&seg) {
                    self.dirty_segs.push(seg);
                }
            }
        }
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage (the
    /// publish-time half of [`SyncPolicy::EveryPublish`]).
    pub fn sync_all(&mut self) -> io::Result<()> {
        if self.dirty_segs.is_empty() && !self.dir_dirty {
            return Ok(());
        }
        let start = Instant::now();
        for seg in std::mem::take(&mut self.dirty_segs) {
            self.fs.fsync(&seg)?;
        }
        if self.dir_dirty {
            self.fs.fsync_dir(&self.dir)?;
            self.dir_dirty = false;
        }
        if let Some(m) = &self.metrics {
            m.fsyncs.inc();
            m.fsync_nanos.record(start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Removes every segment file (recovery finalization: the fresh
    /// checkpoint's high-water mark covers all of them). Removal failures
    /// are harmless — covered records are skipped at replay — so errors
    /// propagate only from the final dir fsync.
    pub fn remove_all_segments(&mut self) -> io::Result<()> {
        let mut removed = false;
        for (_, seg) in list_segments(self.fs.as_ref(), &self.dir)? {
            fs_remove_best_effort(self.fs.as_ref(), &seg, &mut removed);
        }
        self.cur_seg = None;
        self.cur_seg_bytes = 0;
        self.dirty_segs.clear();
        if removed {
            self.fs.fsync_dir(&self.dir)?;
        }
        Ok(())
    }
}

fn fs_remove_best_effort(fs: &dyn DurableFs, path: &Path, removed: &mut bool) {
    if fs.remove(path).is_ok() {
        *removed = true;
    }
}

/// Reads every decodable record from the WAL, in sequence order, starting
/// the count at `first_seq` (the sequence the oldest retained segment is
/// expected to start at; gaps before it are tolerated because compaction
/// removes whole leading segments).
///
/// Stops — without error — at the first torn or corrupt frame whose
/// segment has no contiguous successor, at any sequence gap, and at end
/// of log. This is deliberate: a checksum failure at the tail is
/// indistinguishable from a crash mid-append, and everything past it was
/// never acknowledged as durable.
pub(crate) fn read_log(fs: &dyn DurableFs, dir: &Path) -> io::Result<Vec<(u64, Record)>> {
    let segs = list_segments(fs, dir)?;
    let mut out: Vec<(u64, Record)> = Vec::new();
    let mut expect_seq: Option<u64> = None;
    for (start_seq, path) in segs {
        match expect_seq {
            // A segment that does not continue the sequence exactly is
            // stale (pre-crash leftovers past a tear) — stop.
            Some(e) if start_seq != e => break,
            // First segment: trust its own start seq.
            _ => {}
        }
        let data = fs.read(&path)?;
        let mut off = 0usize;
        let mut tore = false;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            if len > MAX_PAYLOAD || off + 8 + len as usize > data.len() {
                tore = true;
                break;
            }
            let payload = &data[off + 8..off + 8 + len as usize];
            if crc32(payload) != crc {
                tore = true;
                break;
            }
            let mut r: &[u8] = payload;
            let seq = read_u64(&mut r)?;
            let expected = expect_seq.unwrap_or(start_seq);
            if seq != expected {
                tore = true;
                break;
            }
            let tag = read_u8(&mut r)?;
            let record = Record::decode(tag, &mut r)?;
            if !r.is_empty() {
                return Err(bad("trailing bytes inside WAL record payload"));
            }
            out.push((seq, record));
            expect_seq = Some(seq + 1);
            off += 8 + len as usize;
        }
        if tore || off < data.len() {
            // Torn tail: later segments are only valid if they continue
            // the sequence exactly (the loop's gap check enforces it).
            continue;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_storage::dfs::SimFs;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Insert(vec![
                vec![Value::Int(1), Value::Float(2.5), Value::Str("ab".into())],
                vec![Value::Int(2), Value::Float(-0.0), Value::Str("".into())],
            ]),
            Record::Modify {
                pid: 3,
                rids: vec![0, 7],
                col: 1,
                values: vec![Value::Int(9), Value::Int(10)],
            },
            Record::Delete {
                pid: 0,
                rids: vec![5],
            },
            Record::AddIndex {
                col: 2,
                constraint: Constraint::NearlySorted(SortDir::Desc),
                design: Design::Identifier,
            },
            Record::DropIndex { slot: 1 },
            Record::Recompute { slot: 0 },
            Record::Flush,
            Record::Publish,
            Record::Feedback {
                slot: 0,
                est_cost_saved: 12.25,
            },
            Record::Timing {
                slot: 2,
                actual_micros: 8.5,
                est_cost: 64.0,
            },
        ]
    }

    #[test]
    fn roundtrip_through_segments() {
        let fs = Arc::new(SimFs::new());
        let dir = PathBuf::from("/wal");
        // Tiny segment budget: every record rolls a segment.
        let mut w = WalWriter::new(fs.clone(), dir.clone(), SyncPolicy::EveryRecord, 16, 1);
        let records = sample_records();
        for r in &records {
            w.append(r).unwrap();
        }
        let read = read_log(fs.as_ref(), &dir).unwrap();
        assert_eq!(read.len(), records.len());
        for (i, (seq, rec)) in read.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(rec, &records[i]);
        }
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let fs = Arc::new(SimFs::new());
        let dir = PathBuf::from("/wal");
        let mut w = WalWriter::new(fs.clone(), dir.clone(), SyncPolicy::EveryRecord, 1 << 20, 1);
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let seg = dir.join(segment_name(1));
        let full = fs.read(&seg).unwrap();
        // Rewrite a truncated copy: all but the last 3 bytes.
        fs.remove(&seg).unwrap();
        fs.append(&seg, &full[..full.len() - 3]).unwrap();
        let read = read_log(fs.as_ref(), &dir).unwrap();
        assert_eq!(read.len(), sample_records().len() - 1);
    }

    #[test]
    fn bit_flip_stops_at_the_flip() {
        let fs = Arc::new(SimFs::new());
        let dir = PathBuf::from("/wal");
        let mut w = WalWriter::new(fs.clone(), dir.clone(), SyncPolicy::EveryRecord, 1 << 20, 1);
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let seg = dir.join(segment_name(1));
        let len = fs.len(&seg).unwrap();
        fs.flip_bit(&seg, len - 10, 2);
        let read = read_log(fs.as_ref(), &dir).unwrap();
        assert!(read.len() < sample_records().len());
        for (i, (seq, _)) in read.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1, "prefix must stay contiguous");
        }
    }

    #[test]
    fn stale_segment_past_a_tear_is_ignored() {
        let fs = Arc::new(SimFs::new());
        let dir = PathBuf::from("/wal");
        // Segment 1 holds seqs 1-2 with a torn third record; a stale
        // pre-crash segment starting at seq 5 must not be replayed.
        let mut w = WalWriter::new(fs.clone(), dir.clone(), SyncPolicy::EveryRecord, 1 << 20, 1);
        w.append(&Record::Flush).unwrap();
        w.append(&Record::Publish).unwrap();
        w.append(&Record::Flush).unwrap();
        let seg = dir.join(segment_name(1));
        let full = fs.read(&seg).unwrap();
        fs.remove(&seg).unwrap();
        fs.append(&seg, &full[..full.len() - 2]).unwrap();
        let mut stale = WalWriter::new(fs.clone(), dir.clone(), SyncPolicy::EveryRecord, 16, 5);
        stale.append(&Record::Publish).unwrap();
        let read = read_log(fs.as_ref(), &dir).unwrap();
        assert_eq!(read.len(), 2);
        // A successor that *does* continue the sequence is replayed.
        let mut cont = WalWriter::new(fs.clone(), dir.clone(), SyncPolicy::EveryRecord, 16, 3);
        cont.append(&Record::Publish).unwrap();
        let read = read_log(fs.as_ref(), &dir).unwrap();
        assert_eq!(read.len(), 3);
        assert_eq!(read[2], (3, Record::Publish));
    }
}
