//! The TCP frontend: accept loop, per-connection request loop, command
//! dispatch, and the cross-shard fan-out/combine paths.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use patchindex::routing::route_row;
use patchindex::{ConcurrentTable, IndexedTable};
use pi_exec::Batch;
use pi_obs::{Counter, Histogram, MetricsRegistry, QueryTrace};
use pi_planner::QueryEngine;
use pi_storage::{DataType, Partitioning, Schema, Table, Value};

use crate::config::ServerConfig;
use crate::protocol::{parse_value, read_request, write_response, ErrorCode, ServerError};
use crate::shard::{Shard, ShardMsg, ShardSpawn, Statement};
use crate::slowlog::{SlowEntry, SlowLog};
use crate::spec::QuerySpec;
use crate::{batch_rows, canonical_rows, render_rows};

/// A running PatchIndex server: N hash-routed shards behind one TCP
/// listener. Dropping the handle shuts the server down gracefully
/// (drain queues → publish → join); [`Server::shutdown`] does the same
/// explicitly.
pub struct Server {
    inner: Arc<ServerInner>,
    listener_thread: Option<JoinHandle<()>>,
}

struct ServerInner {
    dtypes: Vec<DataType>,
    npartitions: Vec<usize>,
    shards: Vec<Shard>,
    route_col: usize,
    registry: Arc<MetricsRegistry>,
    shard_registries: Vec<Arc<MetricsRegistry>>,
    slowlog: SlowLog,
    slow_query_nanos: u64,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
    requests: Arc<Counter>,
    busy_rejections: Arc<Counter>,
    connections: Arc<Counter>,
    query_nanos: Arc<Histogram>,
}

/// Keeps one shard's writer parked while it exists — the deterministic
/// backpressure hook used by tests to fill a statement queue. Dropping
/// the guard releases the writer.
pub struct HoldGuard {
    _tx: mpsc::Sender<()>,
}

impl Server {
    /// Starts a server over pre-built shard tables (one `IndexedTable`
    /// per shard, identical schemas) and binds `127.0.0.1:0`; the bound
    /// port is [`Server::addr`].
    pub fn start(cfg: ServerConfig, tables: Vec<IndexedTable>) -> io::Result<Server> {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(tables.len(), cfg.shards, "one table per shard");
        let dtypes: Vec<DataType> = tables[0]
            .table()
            .schema()
            .fields()
            .iter()
            .map(|f| f.dtype)
            .collect();
        for t in &tables {
            let d: Vec<DataType> = t
                .table()
                .schema()
                .fields()
                .iter()
                .map(|f| f.dtype)
                .collect();
            assert_eq!(d, dtypes, "shard schemas must match");
        }
        assert!(cfg.route_col < dtypes.len(), "route_col out of range");
        let npartitions: Vec<usize> = tables
            .iter()
            .map(|t| t.table().partitions().len())
            .collect();

        let registry = Arc::new(MetricsRegistry::new());
        let benefits: Vec<Arc<AtomicU64>> = (0..cfg.shards)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        let shard_registries: Vec<Arc<MetricsRegistry>> = (0..cfg.shards)
            .map(|_| Arc::new(MetricsRegistry::new()))
            .collect();
        let shards: Vec<Shard> = tables
            .into_iter()
            .enumerate()
            .map(|(id, table)| {
                Shard::spawn(ShardSpawn {
                    id,
                    table,
                    registry: Arc::clone(&shard_registries[id]),
                    server_scope: registry.scoped(&format!("shard{id}")),
                    queue_capacity: cfg.queue_capacity,
                    publish_every: cfg.publish_every,
                    cache_budget_bytes: cfg.cache_budget_bytes,
                    advise_every: cfg.advise_every,
                    advisor_budget_bytes: cfg.advisor_budget_bytes,
                    all_benefits: benefits.clone(),
                })
            })
            .collect();

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ServerInner {
            dtypes,
            npartitions,
            shards,
            route_col: cfg.route_col,
            requests: registry.counter("server.requests"),
            busy_rejections: registry.counter("server.busy_rejections"),
            connections: registry.counter("server.connections"),
            query_nanos: registry.histogram("server.query.nanos"),
            registry,
            shard_registries,
            slowlog: SlowLog::new(cfg.slowlog_capacity),
            slow_query_nanos: cfg.slow_query_nanos,
            shutting_down: AtomicBool::new(false),
            addr,
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let accept_inner = Arc::clone(&inner);
        let listener_thread = std::thread::Builder::new()
            .name("pi-server-accept".into())
            .spawn(move || accept_loop(accept_inner, listener))
            .expect("spawn accept loop");
        Ok(Server {
            inner,
            listener_thread: Some(listener_thread),
        })
    }

    /// Starts a server over empty shards of the given schema, each with
    /// `partitions_per_shard` round-robin partitions.
    pub fn empty(
        cfg: ServerConfig,
        schema: Schema,
        partitions_per_shard: usize,
    ) -> io::Result<Server> {
        let tables = (0..cfg.shards)
            .map(|i| {
                IndexedTable::new(Table::new(
                    format!("shard{i}"),
                    schema.clone(),
                    partitions_per_shard,
                    Partitioning::RoundRobin,
                ))
            })
            .collect();
        Server::start(cfg, tables)
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Read handles on the shard tables, in shard order — for audits
    /// and in-process readers; snapshots taken here see exactly what
    /// served queries see.
    pub fn tables(&self) -> Vec<ConcurrentTable> {
        self.inner.shards.iter().map(|s| s.table.clone()).collect()
    }

    /// The server-level metrics registry (connection/request counters,
    /// query latency histogram, per-shard `shard<N>.*` queue metrics).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.inner.registry
    }

    /// The combined metrics document served by `METRICS`.
    pub fn metrics_json(&self) -> String {
        self.inner.metrics_json()
    }

    /// Parks shard `sid`'s writer until the returned guard drops. Test
    /// hook: with the writer parked, `queue_capacity` statements fill
    /// the queue and the next one is rejected `ServerBusy`. Returns
    /// once the writer is actually parked, so admission counts are
    /// deterministic from the first statement on.
    pub fn hold_shard(&self, sid: usize) -> HoldGuard {
        let (tx, rx) = mpsc::channel();
        let (parked_tx, parked_rx) = mpsc::channel();
        self.inner.shards[sid]
            .control(ShardMsg::Hold {
                parked: parked_tx,
                until: rx,
            })
            .expect("hold message admitted");
        parked_rx.recv().expect("writer parked");
        HoldGuard { _tx: tx }
    }

    /// Graceful shutdown: stop admitting work, drain every shard queue
    /// through a final flush + publish, join writers and connection
    /// threads. Also runs on drop; calling it twice is a no-op.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drain and join shard writers first: every acknowledged
        // statement reaches a published epoch before the sockets close.
        for shard in &self.inner.shards {
            shard.close();
        }
        // Wake the accept loop so it observes the flag, then join it.
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(h) = self.listener_thread.take() {
            let _ = h.join();
        }
        // Unblock connection readers and join them.
        for (_, stream) in self.inner.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> =
            self.inner.conn_threads.lock().unwrap().drain(..).collect();
        for h in threads {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(inner: Arc<ServerInner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            inner.conns.lock().unwrap().insert(id, clone);
        }
        inner.connections.inc();
        let conn_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name(format!("pi-server-conn-{id}"))
            .spawn(move || {
                conn_loop(&conn_inner, stream);
                conn_inner.conns.lock().unwrap().remove(&id);
            })
            .expect("spawn connection thread");
        inner.conn_threads.lock().unwrap().push(handle);
    }
}

fn conn_loop(inner: &ServerInner, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some((mode, Ok(line)))) => {
                inner.requests.inc();
                let payload = match inner.dispatch(&line) {
                    Ok(p) => p,
                    Err(e) => {
                        if e.code == ErrorCode::ServerBusy {
                            inner.busy_rejections.inc();
                        }
                        e.render()
                    }
                };
                if write_response(&mut writer, mode, &payload).is_err() {
                    break;
                }
            }
            Ok(Some((mode, Err(frame_err)))) => {
                // The stream position is unreliable after a framing
                // error: report and close.
                let _ = write_response(&mut writer, mode, &frame_err.render());
                break;
            }
            Err(_) => break,
        }
    }
}

type ShardResult = (u64, u64, Batch, QueryTrace);

impl ServerInner {
    fn dispatch(&self, line: &str) -> Result<String, ServerError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(ServerError::new(
                ErrorCode::ShuttingDown,
                "server is draining",
            ));
        }
        let line = line.trim();
        let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
        let rest = rest.trim();
        match word.to_ascii_uppercase().as_str() {
            "PING" => Ok("OK pong".into()),
            "QUERY" => self.query(rest),
            "COUNT" => self.count(rest),
            "EXPLAIN" => self.explain(rest),
            "INSERT" => self.insert(rest),
            "MODIFY" => self.modify(rest),
            "DELETE" => self.delete(rest),
            "FLUSH" => self.flush(),
            "PUBLISH" => self.publish(),
            "METRICS" => Ok(self.metrics_json()),
            "SLOWLOG" => Ok(self.slowlog.render()),
            other => Err(ServerError::new(
                ErrorCode::BadCommand,
                format!("unknown command {other:?}"),
            )),
        }
    }

    fn checked_spec(&self, text: &str) -> Result<QuerySpec, ServerError> {
        let spec = QuerySpec::parse(text)?;
        for &c in &spec.scan {
            if c >= self.dtypes.len() {
                return Err(ServerError::new(
                    ErrorCode::BadPlan,
                    format!(
                        "scan column {c} out of range (table has {} columns)",
                        self.dtypes.len()
                    ),
                ));
            }
        }
        Ok(spec)
    }

    /// Executes the fan-out plan on every shard's consistent snapshot.
    /// Results come back in shard order; each shard's elapsed read time
    /// feeds its benefit counter (the advisor budget-split currency).
    fn fanout(&self, spec: &QuerySpec) -> Vec<ShardResult> {
        let plan = spec.fanout_plan();
        let run = |shard: &Shard| -> ShardResult {
            let (snap, seq) = shard.consistent_snapshot();
            let epoch = snap.epoch();
            let t0 = Instant::now();
            let mut snap = snap;
            let (batch, trace) = snap.query_traced(&plan);
            shard
                .benefit_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            (epoch, seq, batch, trace)
        };
        if self.shards.len() == 1 {
            return vec![run(&self.shards[0])];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || run(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard read"))
                .collect()
        })
    }

    fn epochs_field(results: &[ShardResult]) -> String {
        results
            .iter()
            .enumerate()
            .map(|(s, (e, q, _, _))| format!("{s}:{e}@{q}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn query(&self, rest: &str) -> Result<String, ServerError> {
        let spec = self.checked_spec(rest)?;
        let t0 = Instant::now();
        let results = self.fanout(&spec);
        let mut rows = Vec::new();
        for (_, _, batch, _) in &results {
            rows.extend(batch_rows(batch));
        }
        let rows = canonical_rows(&spec, rows);
        let nanos = t0.elapsed().as_nanos() as u64;
        self.query_nanos.record(nanos);
        let epochs = Self::epochs_field(&results);
        if nanos > self.slow_query_nanos {
            let traces = results
                .iter()
                .enumerate()
                .map(|(s, (_, _, _, trace))| format!("shard {s}:\n{}", trace.render_text()))
                .collect::<Vec<_>>()
                .join("\n");
            self.slowlog.record(SlowEntry {
                spec: spec.render(),
                nanos,
                rows: rows.len(),
                epochs: epochs.clone(),
                traces,
            });
        }
        Ok(format!(
            "OK rows={} cols={} epochs={}{}",
            rows.len(),
            spec.output_width(),
            epochs,
            render_rows(&rows)
        ))
    }

    fn count(&self, rest: &str) -> Result<String, ServerError> {
        let spec = self.checked_spec(rest)?;
        // Distinct counts are not shard-additive; take the full
        // combined-result path for them.
        let (count, epochs) = if spec.distinct.is_some() {
            let results = self.fanout(&spec);
            let mut rows = Vec::new();
            for (_, _, batch, _) in &results {
                rows.extend(batch_rows(batch));
            }
            (
                canonical_rows(&spec, rows).len(),
                Self::epochs_field(&results),
            )
        } else {
            let results = self.fanout(&spec);
            let sum: usize = results.iter().map(|(_, _, batch, _)| batch.len()).sum();
            let capped = spec.limit.map_or(sum, |n| sum.min(n));
            (capped, Self::epochs_field(&results))
        };
        Ok(format!("OK count={count} epochs={epochs}"))
    }

    fn explain(&self, rest: &str) -> Result<String, ServerError> {
        let spec = self.checked_spec(rest)?;
        let results = self.fanout(&spec);
        let mut out = format!(
            "OK shards={} epochs={}",
            results.len(),
            Self::epochs_field(&results)
        );
        for (s, (epoch, _, _, trace)) in results.iter().enumerate() {
            out.push_str(&format!("\n-- shard {s} epoch {epoch}\n"));
            out.push_str(trace.render_text().trim_end());
        }
        Ok(out)
    }

    fn insert(&self, rest: &str) -> Result<String, ServerError> {
        if rest.is_empty() {
            return Err(ServerError::new(ErrorCode::BadCommand, "INSERT needs rows"));
        }
        let mut groups: Vec<Vec<Vec<Value>>> = vec![Vec::new(); self.shards.len()];
        for row_text in rest.split(';') {
            let cells: Vec<&str> = row_text.split(',').collect();
            if cells.len() != self.dtypes.len() {
                return Err(ServerError::new(
                    ErrorCode::BadValue,
                    format!(
                        "row has {} values, schema has {}",
                        cells.len(),
                        self.dtypes.len()
                    ),
                ));
            }
            let row: Vec<Value> = cells
                .iter()
                .zip(&self.dtypes)
                .map(|(cell, &dtype)| parse_value(cell.trim(), dtype))
                .collect::<Result<_, _>>()?;
            groups[route_row(&row, self.route_col, self.shards.len())].push(row);
        }
        let mut acks = Vec::new();
        for (sid, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            match self.shards[sid].enqueue(Statement::Insert(group)) {
                Ok(seq) => acks.push(format!("{sid}:{seq}")),
                Err(mut e) => {
                    // Earlier shard groups are already enqueued; report
                    // them so the client knows the partial admission.
                    if !acks.is_empty() {
                        e.msg = format!("{} (accepted {})", e.msg, acks.join(","));
                    }
                    return Err(e);
                }
            }
        }
        Ok(format!("OK shards={}", acks.join(",")))
    }

    fn checked_shard(&self, token: &str) -> Result<usize, ServerError> {
        let sid: usize = token.parse().map_err(|_| {
            ServerError::new(ErrorCode::BadShard, format!("not a shard: {token:?}"))
        })?;
        if sid >= self.shards.len() {
            return Err(ServerError::new(
                ErrorCode::BadShard,
                format!("shard {sid} out of range ({} shards)", self.shards.len()),
            ));
        }
        Ok(sid)
    }

    fn checked_pid(&self, sid: usize, token: &str) -> Result<usize, ServerError> {
        let pid: usize = token.parse().map_err(|_| {
            ServerError::new(ErrorCode::BadValue, format!("not a partition: {token:?}"))
        })?;
        if pid >= self.npartitions[sid] {
            return Err(ServerError::new(
                ErrorCode::BadValue,
                format!(
                    "partition {pid} out of range ({} partitions)",
                    self.npartitions[sid]
                ),
            ));
        }
        Ok(pid)
    }

    /// Admission-time bounds check of physical row ids against the
    /// current snapshot. `MODIFY`/`DELETE` address physical rows, so
    /// this is an operator interface: a concurrent delete between this
    /// check and apply is the operator's race to avoid.
    fn checked_rids(
        &self,
        sid: usize,
        pid: usize,
        tokens: impl Iterator<Item = impl AsRef<str>>,
    ) -> Result<Vec<usize>, ServerError> {
        let visible = self.shards[sid]
            .consistent_snapshot()
            .0
            .table()
            .partition(pid)
            .visible_len();
        tokens
            .map(|t| {
                let t = t.as_ref();
                let rid: usize = t.parse().map_err(|_| {
                    ServerError::new(ErrorCode::BadValue, format!("not a row id: {t:?}"))
                })?;
                if rid >= visible {
                    return Err(ServerError::new(
                        ErrorCode::BadValue,
                        format!("row {rid} out of range ({visible} visible rows)"),
                    ));
                }
                Ok(rid)
            })
            .collect()
    }

    fn modify(&self, rest: &str) -> Result<String, ServerError> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [sid, pid, col, assignments] = parts[..] else {
            return Err(ServerError::new(
                ErrorCode::BadCommand,
                "usage: MODIFY <shard> <pid> <col> <rid>=<val>[,...]",
            ));
        };
        let sid = self.checked_shard(sid)?;
        let pid = self.checked_pid(sid, pid)?;
        let col: usize = col
            .parse()
            .map_err(|_| ServerError::new(ErrorCode::BadValue, format!("not a column: {col:?}")))?;
        if col >= self.dtypes.len() {
            return Err(ServerError::new(
                ErrorCode::BadValue,
                format!("column {col} out of range"),
            ));
        }
        let mut rid_tokens = Vec::new();
        let mut vals = Vec::new();
        for pair in assignments.split(',') {
            let (rid, val) = pair.split_once('=').ok_or_else(|| {
                ServerError::new(
                    ErrorCode::BadCommand,
                    format!("assignment must be rid=val, got {pair:?}"),
                )
            })?;
            rid_tokens.push(rid);
            vals.push(parse_value(val, self.dtypes[col])?);
        }
        let rids = self.checked_rids(sid, pid, rid_tokens.into_iter())?;
        let seq = self.shards[sid].enqueue(Statement::Modify {
            pid,
            rids,
            col,
            vals,
        })?;
        Ok(format!("OK shard={sid} seq={seq}"))
    }

    fn delete(&self, rest: &str) -> Result<String, ServerError> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [sid, pid, rid_list] = parts[..] else {
            return Err(ServerError::new(
                ErrorCode::BadCommand,
                "usage: DELETE <shard> <pid> <rid>[,...]",
            ));
        };
        let sid = self.checked_shard(sid)?;
        let pid = self.checked_pid(sid, pid)?;
        let rids = self.checked_rids(sid, pid, rid_list.split(','))?;
        let seq = self.shards[sid].enqueue(Statement::Delete { pid, rids })?;
        Ok(format!("OK shard={sid} seq={seq}"))
    }

    fn flush(&self) -> Result<String, ServerError> {
        let mut acks = Vec::new();
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            shard.control(ShardMsg::Flush { ack: tx })?;
            acks.push(rx);
        }
        for rx in acks {
            rx.recv()
                .map_err(|_| ServerError::new(ErrorCode::ShuttingDown, "shard writer exited"))?;
        }
        Ok("OK".into())
    }

    fn publish(&self) -> Result<String, ServerError> {
        let mut acks = Vec::new();
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            shard.control(ShardMsg::Publish { ack: tx })?;
            acks.push(rx);
        }
        let mut epochs = Vec::new();
        for (sid, rx) in acks.into_iter().enumerate() {
            let epoch = rx
                .recv()
                .map_err(|_| ServerError::new(ErrorCode::ShuttingDown, "shard writer exited"))?;
            epochs.push(format!("{sid}:{epoch}"));
        }
        Ok(format!("OK epochs={}", epochs.join(",")))
    }

    fn metrics_json(&self) -> String {
        let mut out = format!("{{\"server\":{}", self.registry.snapshot_json());
        out.push_str(",\"shards\":{");
        for (sid, reg) in self.shard_registries.iter().enumerate() {
            if sid > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{sid}\":{}", reg.snapshot_json()));
        }
        out.push_str("}}");
        out
    }
}
