//! # pi-server — the network frontend of the PatchIndex engine
//!
//! A TCP server speaking a small hand-rolled wire protocol (see
//! `docs/WIRE_PROTOCOL.md`) in front of N hash-routed
//! [`patchindex::ConcurrentTable`] shards:
//!
//! * **readers** never block: every query runs against a per-shard
//!   consistent snapshot, fans out across all shards, and the per-shard
//!   results merge into one canonically ordered response
//!   (byte-deterministic regardless of shard count — see [`combine`](canonical_rows));
//! * **writers** are one dedicated thread per shard consuming a bounded
//!   statement queue. The queue is the admission-control point: a full
//!   queue rejects with `ServerBusy` instead of buffering, and sequence
//!   numbers are assigned at admission so apply order is ack order.
//!   Every response carries per-shard `epoch@seq` watermarks naming the
//!   exact statement prefix it reflects;
//! * **the advisor** runs per shard inside each writer thread, under one
//!   global byte budget re-split by observed per-shard read benefit
//!   ([`pi_advisor::split_budget`]) before every step;
//! * **observability** is per shard: `METRICS` returns the server
//!   registry plus every shard's engine registry as one JSON document,
//!   and queries slower than [`ServerConfig::slow_query_nanos`] land in
//!   the `SLOWLOG` ring with their EXPLAIN ANALYZE traces
//!   (`QueryEngine::query_traced` runs under every query);
//! * **shutdown** drains: closing the server applies every acknowledged
//!   statement through a final flush + publish before joining.
//!
//! ```
//! use pi_server::{client, Server, ServerConfig};
//! use pi_storage::{DataType, Field, Schema};
//!
//! let schema = Schema::new(vec![
//!     Field::new("k", DataType::Int),
//!     Field::new("v", DataType::Int),
//! ]);
//! let server = Server::empty(ServerConfig::with_shards(2), schema, 2).unwrap();
//!
//! let mut c = client::Client::connect(server.addr()).unwrap();
//! assert_eq!(c.request("PING").unwrap(), "OK pong");
//!
//! let resp = c.request("INSERT 1,10;2,20;3,30").unwrap();
//! assert!(resp.starts_with("OK shards="), "{resp}");
//!
//! // PUBLISH is a write barrier: once it acks, every previously
//! // acknowledged statement is applied and visible to new snapshots.
//! c.request("PUBLISH").unwrap();
//!
//! let resp = c.request("QUERY scan 1 | sort 0:desc").unwrap();
//! assert_eq!(client::body_lines(&resp), vec!["30", "20", "10"]);
//! assert_eq!(client::header_field(&resp, "rows"), Some("3"));
//!
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
mod combine;
mod config;
mod protocol;
mod server;
mod shard;
mod slowlog;
mod spec;

pub use client::{body_lines, header, header_field, Client};
pub use combine::{batch_rows, canonical_rows, cmp_value, render_rows};
pub use config::ServerConfig;
pub use protocol::{
    parse_value, read_request, render_value, write_response, ErrorCode, ServerError, WireMode,
    MAX_FRAME_LEN,
};
pub use server::{HoldGuard, Server};
pub use slowlog::{SlowEntry, SlowLog};
pub use spec::QuerySpec;
