//! Server tuning knobs.

/// Configuration of a [`crate::Server`].
///
/// The defaults suit tests and small deployments: one shard, statement
/// visibility on every publish, a result cache per shard, and the
/// advisor disabled. Production configs raise `shards` to the tenant or
/// core count and set `advise_every` to let each shard tune its own
/// indexes under the global [`ServerConfig::advisor_budget_bytes`].
///
/// ```
/// use pi_server::ServerConfig;
///
/// let cfg = ServerConfig {
///     shards: 4,
///     queue_capacity: 256,
///     advise_every: 128,
///     ..ServerConfig::default()
/// };
/// assert_eq!(cfg.shards, 4);
/// assert_eq!(cfg.route_col, 0);      // rows hash-route by column 0
/// assert_eq!(cfg.publish_every, 1);  // every statement becomes visible
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of independent `ConcurrentTable` shards.
    pub shards: usize,
    /// Column whose value hash-routes each inserted row to a shard
    /// (see `patchindex::routing`).
    pub route_col: usize,
    /// Bounded statement-queue depth per shard. A full queue rejects
    /// the statement with `ServerBusy` instead of blocking the
    /// connection — admission control, not buffering.
    pub queue_capacity: usize,
    /// Statements a shard writer applies between publishes. `1` (the
    /// default) makes every acknowledged statement promptly visible to
    /// new snapshots; larger values batch copy-on-write work at the
    /// cost of staleness.
    pub publish_every: u64,
    /// Per-shard result-cache budget in bytes; `0` disables caching.
    pub cache_budget_bytes: usize,
    /// Queries slower than this (wall clock, nanoseconds) enter the
    /// slow-query log with their EXPLAIN ANALYZE trace summary.
    pub slow_query_nanos: u64,
    /// Ring-buffer capacity of the slow-query log.
    pub slowlog_capacity: usize,
    /// Statements between advisor steps on each shard writer; `0` (the
    /// default) disables the advisor.
    pub advise_every: u64,
    /// Global patch-memory budget shared by all shards' advisors, split
    /// by observed per-shard read benefit (`pi_advisor::split_budget`)
    /// before every step.
    pub advisor_budget_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            route_col: 0,
            queue_capacity: 1024,
            publish_every: 1,
            cache_budget_bytes: 8 << 20,
            slow_query_nanos: 50_000_000,
            slowlog_capacity: 128,
            advise_every: 0,
            advisor_budget_bytes: 16 << 20,
        }
    }
}

impl ServerConfig {
    /// A config with `shards` shards and every other knob at its
    /// default.
    pub fn with_shards(shards: usize) -> Self {
        ServerConfig {
            shards,
            ..ServerConfig::default()
        }
    }
}
