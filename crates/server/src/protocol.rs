//! The wire codec: dual framed/line request framing, dot-terminated
//! line responses, error codes, and value parse/render rules.
//!
//! See `docs/WIRE_PROTOCOL.md` for the operator-facing specification
//! with a worked `nc` transcript. In short: a request is one command
//! line, sent either *framed* (`<len>\n<payload>`, `len` in ASCII
//! decimal) or *line-mode* (the raw line, `\n`-terminated, as typed
//! into `nc`). Responses come back in the mode of their request:
//! framed responses are one `<len>\n<payload>` frame; line-mode
//! responses are the payload's lines, dot-stuffed SMTP-style, followed
//! by a lone `.` terminator line.

use std::fmt;
use std::io::{self, BufRead, Write};

use pi_storage::{DataType, Value};

/// Upper bound on a framed payload; larger length prefixes are rejected
/// with [`ErrorCode::BadFrame`] before any allocation.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Machine-readable error classes of the protocol. The wire form is the
/// first word after `ERR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame: non-decimal length, overlong prefix, or a
    /// payload exceeding [`MAX_FRAME_LEN`]. The connection closes after
    /// this error — the stream position is no longer trustworthy.
    BadFrame,
    /// Unknown command word or malformed argument list.
    BadCommand,
    /// A query spec that parses but cannot run: column out of range,
    /// stage position out of range, duplicate stage.
    BadPlan,
    /// A value literal that does not parse under the column's type, or
    /// a string containing a forbidden separator character.
    BadValue,
    /// Shard index out of range.
    BadShard,
    /// The target shard's statement queue is full; retry later.
    /// Admission control, not an error in the statement itself.
    ServerBusy,
    /// The server is draining for shutdown; no new work is admitted.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire token for this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "BadFrame",
            ErrorCode::BadCommand => "BadCommand",
            ErrorCode::BadPlan => "BadPlan",
            ErrorCode::BadValue => "BadValue",
            ErrorCode::BadShard => "BadShard",
            ErrorCode::ServerBusy => "ServerBusy",
            ErrorCode::ShuttingDown => "ShuttingDown",
        }
    }
}

/// A protocol-level error: code plus human-readable detail. Rendered on
/// the wire as `ERR <Code> <detail>`.
#[derive(Debug, Clone)]
pub struct ServerError {
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable detail (single line).
    pub msg: String,
}

impl ServerError {
    /// Constructs an error with the given code and detail message.
    pub fn new(code: ErrorCode, msg: impl Into<String>) -> Self {
        ServerError {
            code,
            msg: msg.into(),
        }
    }

    /// The wire rendering: `ERR <Code> <detail>`.
    pub fn render(&self) -> String {
        format!("ERR {} {}", self.code.as_str(), self.msg)
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// How a request arrived — responses mirror the mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// `<len>\n<payload>` frames (programs; length-prefixed both ways).
    Framed,
    /// Raw `\n`-terminated command lines (humans over `nc`; responses
    /// are dot-terminated line blocks).
    Line,
}

/// Reads one request. Returns `Ok(None)` on clean EOF before any byte
/// of a request; IO errors (including read timeouts, which the server
/// uses to poll its shutdown flag) surface as `Err`.
pub fn read_request(
    r: &mut impl BufRead,
) -> io::Result<Option<(WireMode, Result<String, ServerError>)>> {
    let mut first = [0u8; 1];
    match r.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if first[0].is_ascii_digit() {
        Ok(Some((WireMode::Framed, read_framed(r, first[0]))))
    } else {
        Ok(Some((WireMode::Line, read_line_tail(r, first[0]))))
    }
}

fn read_framed(r: &mut impl BufRead, first: u8) -> Result<String, ServerError> {
    let bad = |m: &str| ServerError::new(ErrorCode::BadFrame, m);
    let mut len = (first - b'0') as usize;
    let mut digits = 1;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)
            .map_err(|_| bad("truncated length prefix"))?;
        match b[0] {
            b'\n' => break,
            d if d.is_ascii_digit() => {
                digits += 1;
                if digits > 8 {
                    return Err(bad("length prefix too long"));
                }
                len = len * 10 + (d - b'0') as usize;
            }
            _ => return Err(bad("non-decimal length prefix")),
        }
    }
    if len > MAX_FRAME_LEN {
        return Err(bad("frame exceeds MAX_FRAME_LEN"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|_| bad("truncated payload"))?;
    String::from_utf8(payload).map_err(|_| bad("payload is not UTF-8"))
}

fn read_line_tail(r: &mut impl BufRead, first: u8) -> Result<String, ServerError> {
    let mut line = Vec::with_capacity(64);
    line.push(first);
    r.read_until(b'\n', &mut line)
        .map_err(|_| ServerError::new(ErrorCode::BadFrame, "connection error mid-line"))?;
    while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ServerError::new(ErrorCode::BadFrame, "line is not UTF-8"))
}

/// Writes `payload` as a response in `mode`. Framed mode emits one
/// `<len>\n<payload>` frame. Line mode emits the payload's lines with
/// SMTP dot-stuffing (a leading `.` becomes `..`) and a lone `.`
/// terminator.
pub fn write_response(w: &mut impl Write, mode: WireMode, payload: &str) -> io::Result<()> {
    match mode {
        WireMode::Framed => {
            write!(w, "{}\n{payload}", payload.len())?;
        }
        WireMode::Line => {
            for line in payload.split('\n') {
                if line.starts_with('.') {
                    w.write_all(b".")?;
                }
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
            }
            w.write_all(b".\n")?;
        }
    }
    w.flush()
}

/// Parses one value literal under a column type. Strings are taken
/// verbatim but must not contain the protocol's separator characters
/// (`,`, `;`, tab, newline) — there is no quoting.
pub fn parse_value(s: &str, dtype: DataType) -> Result<Value, ServerError> {
    let bad = |m: String| ServerError::new(ErrorCode::BadValue, m);
    match dtype {
        DataType::Int | DataType::Date => s
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| bad(format!("not an integer: {s:?}"))),
        DataType::Float => s
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| bad(format!("not a float: {s:?}"))),
        DataType::Str => {
            if s.contains([',', ';', '\t', '\n']) {
                Err(bad(format!("string contains a separator: {s:?}")))
            } else {
                Ok(Value::Str(s.to_string()))
            }
        }
    }
}

/// Renders one value for the wire: integers in decimal, floats in
/// shortest-roundtrip form, strings verbatim.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => s.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_read(bytes: &[u8]) -> Option<(WireMode, Result<String, ServerError>)> {
        read_request(&mut BufReader::new(bytes)).unwrap()
    }

    #[test]
    fn framed_roundtrip() {
        let mut buf = Vec::new();
        write_response(&mut buf, WireMode::Framed, "OK pong").unwrap();
        assert_eq!(buf, b"7\nOK pong");
        let (mode, payload) = roundtrip_read(b"4\nPING").unwrap();
        assert_eq!(mode, WireMode::Framed);
        assert_eq!(payload.unwrap(), "PING");
    }

    #[test]
    fn line_mode_dot_termination_and_stuffing() {
        let mut buf = Vec::new();
        write_response(&mut buf, WireMode::Line, "OK rows=1\n.hidden").unwrap();
        assert_eq!(buf, b"OK rows=1\n..hidden\n.\n");
        let (mode, payload) = roundtrip_read(b"PING\r\n").unwrap();
        assert_eq!(mode, WireMode::Line);
        assert_eq!(payload.unwrap(), "PING");
    }

    #[test]
    fn eof_and_bad_frames() {
        assert!(roundtrip_read(b"").is_none());
        let (_, r) = roundtrip_read(b"99999999999\nx").unwrap();
        assert_eq!(r.unwrap_err().code, ErrorCode::BadFrame);
        let (_, r) = roundtrip_read(b"5\nab").unwrap();
        assert_eq!(r.unwrap_err().code, ErrorCode::BadFrame);
        let (_, r) = roundtrip_read(b"3x\nabc").unwrap();
        assert_eq!(r.unwrap_err().code, ErrorCode::BadFrame);
    }

    #[test]
    fn value_rules() {
        assert_eq!(parse_value("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            parse_value("1.5", DataType::Float).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            parse_value("ab", DataType::Str).unwrap(),
            Value::Str("ab".into())
        );
        assert_eq!(
            parse_value("a,b", DataType::Str).unwrap_err().code,
            ErrorCode::BadValue
        );
        assert_eq!(
            parse_value("x", DataType::Int).unwrap_err().code,
            ErrorCode::BadValue
        );
        assert_eq!(render_value(&Value::Float(0.5)), "0.5");
        assert_eq!(render_value(&Value::Int(-3)), "-3");
    }
}
