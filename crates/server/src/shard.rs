//! One shard: a `ConcurrentTable` with a dedicated writer thread
//! consuming a bounded statement queue.
//!
//! The queue is the admission-control point: statements are sequenced
//! and enqueued under one lock (so per-shard sequence order *is* queue
//! order *is* apply order), and a full queue rejects with `ServerBusy`
//! instead of blocking the connection. The writer thread applies
//! statements in order, publishes every
//! [`crate::ServerConfig::publish_every`] statements, and records
//! `(epoch, last applied sequence)` after each publish — the pair that
//! lets readers tag every response with the exact statement prefix it
//! reflects (the contract the prefix-replay property test checks).
//!
//! Closing the queue drains it: the writer applies every remaining
//! statement, flushes maintenance, publishes, and exits — graceful
//! shutdown is "close all queues, join all writers".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use patchindex::{ConcurrentTable, IndexedTable, ResultCache, TableSnapshot, TableWriter};
use pi_advisor::{split_budget, Advisor, AdvisorConfig};
use pi_obs::{Gauge, MetricsRegistry, ScopedRegistry};
use pi_storage::Value;

use crate::protocol::{ErrorCode, ServerError};

/// One write statement, as applied by the shard writer.
pub(crate) enum Statement {
    /// Append rows (already routed to this shard).
    Insert(Vec<Vec<Value>>),
    /// Overwrite column values at physical addresses.
    Modify {
        pid: usize,
        rids: Vec<usize>,
        col: usize,
        vals: Vec<Value>,
    },
    /// Hide rows at physical addresses.
    Delete { pid: usize, rids: Vec<usize> },
}

pub(crate) enum ShardMsg {
    Statement {
        seq: u64,
        stmt: Statement,
    },
    /// Flush deferred maintenance, publish, ack.
    Flush {
        ack: mpsc::Sender<()>,
    },
    /// Publish, ack with the new epoch.
    Publish {
        ack: mpsc::Sender<u64>,
    },
    /// Park the writer until the sender side drops (test hook for
    /// deterministic backpressure). `parked` acks right before the
    /// writer parks, so the holder knows the queue is no longer being
    /// consumed.
    Hold {
        parked: mpsc::Sender<()>,
        until: mpsc::Receiver<()>,
    },
}

struct EnqueueState {
    sender: Option<SyncSender<ShardMsg>>,
    next_seq: u64,
}

/// A shard handle: the read side (`table`), the sequenced enqueue path,
/// and the `(epoch, seq)` watermark its writer maintains.
pub(crate) struct Shard {
    pub(crate) table: ConcurrentTable,
    state: Mutex<EnqueueState>,
    applied: Arc<Mutex<(u64, u64)>>,
    /// Read-side benefit (query nanos served) — the advisor budget
    /// split's currency, shared with every shard's writer loop.
    pub(crate) benefit_nanos: Arc<AtomicU64>,
    queue_depth: Arc<Gauge>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

pub(crate) struct ShardSpawn {
    pub id: usize,
    pub table: IndexedTable,
    pub registry: Arc<MetricsRegistry>,
    pub server_scope: ScopedRegistry,
    pub queue_capacity: usize,
    pub publish_every: u64,
    pub cache_budget_bytes: usize,
    pub advise_every: u64,
    pub advisor_budget_bytes: usize,
    pub all_benefits: Vec<Arc<AtomicU64>>,
}

impl Shard {
    pub(crate) fn spawn(spec: ShardSpawn) -> Shard {
        // `with_registry` so hits/misses/invalidations surface in this
        // shard's section of the `METRICS` document.
        let cache = (spec.cache_budget_bytes > 0).then(|| {
            Arc::new(ResultCache::with_registry(
                spec.cache_budget_bytes,
                &spec.registry,
            ))
        });
        let (table, writer) =
            ConcurrentTable::with_observability(spec.table, cache, Arc::clone(&spec.registry));
        let applied = Arc::new(Mutex::new((table.epoch(), 0)));
        let (tx, rx) = mpsc::sync_channel(spec.queue_capacity);
        let queue_depth = spec.server_scope.gauge("queue.depth");
        let statements = spec.server_scope.counter("statements");
        let advisor = (spec.advise_every > 0).then(|| {
            Advisor::with_metrics(
                AdvisorConfig {
                    step_every: spec.advise_every,
                    memory_budget_bytes: spec.advisor_budget_bytes / spec.all_benefits.len().max(1),
                    ..AdvisorConfig::default()
                },
                &spec.registry,
            )
        });
        let loop_ctx = WriterLoop {
            writer,
            rx,
            applied: Arc::clone(&applied),
            publish_every: spec.publish_every.max(1),
            queue_depth: Arc::clone(&queue_depth),
            statements,
            advisor,
            advise_every: spec.advise_every,
            advisor_budget_bytes: spec.advisor_budget_bytes,
            shard_id: spec.id,
            all_benefits: spec.all_benefits.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("pi-shard-{}", spec.id))
            .spawn(move || loop_ctx.run())
            .expect("spawn shard writer");
        Shard {
            table,
            state: Mutex::new(EnqueueState {
                sender: Some(tx),
                next_seq: 0,
            }),
            applied,
            benefit_nanos: Arc::clone(&spec.all_benefits[spec.id]),
            queue_depth,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Sequences and enqueues one statement. The returned sequence
    /// number is this shard's statement-log position: a snapshot whose
    /// watermark seq is `>= seq` reflects this statement.
    pub(crate) fn enqueue(&self, stmt: Statement) -> Result<u64, ServerError> {
        let mut st = self.state.lock().unwrap();
        let Some(sender) = st.sender.as_ref() else {
            return Err(ServerError::new(
                ErrorCode::ShuttingDown,
                "shard queue closed",
            ));
        };
        let seq = st.next_seq + 1;
        match sender.try_send(ShardMsg::Statement { seq, stmt }) {
            Ok(()) => {
                st.next_seq = seq;
                self.queue_depth.add(1);
                Ok(seq)
            }
            Err(TrySendError::Full(_)) => Err(ServerError::new(
                ErrorCode::ServerBusy,
                "statement queue full; retry",
            )),
            Err(TrySendError::Disconnected(_)) => Err(ServerError::new(
                ErrorCode::ShuttingDown,
                "shard writer exited",
            )),
        }
    }

    /// Enqueues a control message (flush / publish / hold).
    pub(crate) fn control(&self, msg: ShardMsg) -> Result<(), ServerError> {
        let st = self.state.lock().unwrap();
        let Some(sender) = st.sender.as_ref() else {
            return Err(ServerError::new(
                ErrorCode::ShuttingDown,
                "shard queue closed",
            ));
        };
        match sender.try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServerError::new(
                ErrorCode::ServerBusy,
                "statement queue full; retry",
            )),
            Err(TrySendError::Disconnected(_)) => Err(ServerError::new(
                ErrorCode::ShuttingDown,
                "shard writer exited",
            )),
        }
    }

    /// A snapshot paired with the exact statement prefix it reflects.
    /// Publish (epoch swap) and watermark update are two steps; the
    /// retry loop waits out the nanoseconds-wide window between them.
    pub(crate) fn consistent_snapshot(&self) -> (TableSnapshot, u64) {
        loop {
            let (epoch, seq) = *self.applied.lock().unwrap();
            let snap = self.table.snapshot();
            if snap.epoch() == epoch {
                return (snap, seq);
            }
            std::thread::yield_now();
        }
    }

    /// Closes the queue (new statements get `ShuttingDown`) and joins
    /// the writer, which drains every queued statement through a final
    /// flush + publish first.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().sender = None;
        if let Some(h) = self.handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

struct WriterLoop {
    writer: TableWriter,
    rx: Receiver<ShardMsg>,
    applied: Arc<Mutex<(u64, u64)>>,
    publish_every: u64,
    queue_depth: Arc<Gauge>,
    statements: Arc<pi_obs::Counter>,
    advisor: Option<Advisor>,
    advise_every: u64,
    advisor_budget_bytes: usize,
    shard_id: usize,
    all_benefits: Vec<Arc<AtomicU64>>,
}

impl WriterLoop {
    fn run(mut self) {
        let mut last_seq = 0u64;
        let mut since_publish = 0u64;
        let mut since_advise = 0u64;
        // `recv` until disconnect drains the queue before returning: a
        // closed channel still yields every message already sent.
        while let Ok(msg) = self.rx.recv() {
            match msg {
                ShardMsg::Statement { seq, stmt } => {
                    self.queue_depth.add(-1);
                    self.statements.inc();
                    self.apply(stmt);
                    last_seq = seq;
                    since_publish += 1;
                    if since_publish >= self.publish_every {
                        self.publish(last_seq);
                        since_publish = 0;
                    }
                    since_advise += 1;
                    if self.advisor.is_some() && since_advise >= self.advise_every {
                        self.advise(last_seq);
                        since_advise = 0;
                    }
                }
                ShardMsg::Flush { ack } => {
                    self.writer.flush_maintenance();
                    self.publish(last_seq);
                    since_publish = 0;
                    let _ = ack.send(());
                }
                ShardMsg::Publish { ack } => {
                    self.publish(last_seq);
                    since_publish = 0;
                    let _ = ack.send(self.writer.epoch());
                }
                ShardMsg::Hold { parked, until } => {
                    // Parked until the test-side guard drops its sender.
                    let _ = parked.send(());
                    let _ = until.recv();
                }
            }
        }
        // Queue closed: everything above already applied; drain through
        // a final flush + publish so acknowledged statements are
        // visible (and durable via any wrapped WAL) before the join.
        self.writer.flush_maintenance();
        self.publish(last_seq);
    }

    fn apply(&mut self, stmt: Statement) {
        match stmt {
            Statement::Insert(rows) => {
                self.writer.insert(&rows);
            }
            Statement::Modify {
                pid,
                rids,
                col,
                vals,
            } => {
                self.writer.modify(pid, &rids, col, &vals);
            }
            Statement::Delete { pid, rids } => {
                self.writer.delete(pid, &rids);
            }
        }
    }

    fn publish(&mut self, last_seq: u64) {
        let epoch = self.writer.publish();
        *self.applied.lock().unwrap() = (epoch, last_seq);
    }

    fn advise(&mut self, last_seq: u64) {
        let benefits: Vec<f64> = self
            .all_benefits
            .iter()
            .map(|b| b.load(Ordering::Relaxed) as f64)
            .collect();
        let share = split_budget(self.advisor_budget_bytes, &benefits)[self.shard_id];
        let advisor = self.advisor.as_mut().unwrap();
        advisor.set_memory_budget(share);
        advisor.step_writer(&mut self.writer);
        *self.applied.lock().unwrap() = (self.writer.epoch(), last_seq);
    }
}
