//! A minimal blocking reference client speaking the framed mode of the
//! wire protocol — one request frame out, one response frame back.
//!
//! This is both the client the integration tests and benchmarks use and
//! the executable documentation of the codec: `request` is all there is
//! to implementing a conforming client (line mode exists for humans
//! over `nc`; see `docs/WIRE_PROTOCOL.md`).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking framed-mode connection to a [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server (usually `server.addr()`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one command and returns the raw response payload (an
    /// `OK ...` or `ERR <Code> ...` document; see
    /// [`header`] / [`body_lines`]).
    pub fn request(&mut self, cmd: &str) -> io::Result<String> {
        write!(self.writer, "{}\n{cmd}", cmd.len())?;
        self.writer.flush()?;
        self.read_frame()
    }

    fn read_frame(&mut self) -> io::Result<String> {
        let mut len = 0usize;
        let mut any = false;
        loop {
            let mut b = [0u8; 1];
            self.reader.read_exact(&mut b)?;
            match b[0] {
                b'\n' if any => break,
                d if d.is_ascii_digit() => {
                    any = true;
                    len = len * 10 + (d - b'0') as usize;
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "malformed response frame",
                    ))
                }
            }
        }
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        String::from_utf8(payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))
    }

    /// Sends one command line in *line mode* and reads the
    /// dot-terminated response — what an `nc` user sees. Mostly useful
    /// for protocol tests; programs should prefer [`request`](Self::request).
    pub fn request_line_mode(&mut self, cmd: &str) -> io::Result<String> {
        writeln!(self.writer, "{cmd}")?;
        self.writer.flush()?;
        let mut payload = String::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line == "." {
                break;
            }
            let line = line.strip_prefix('.').unwrap_or(line);
            if !payload.is_empty() {
                payload.push('\n');
            }
            payload.push_str(line);
        }
        Ok(payload)
    }
}

/// The response's header (first) line.
pub fn header(resp: &str) -> &str {
    resp.split('\n').next().unwrap_or(resp)
}

/// The value of a `key=value` field on the header line, if present.
pub fn header_field<'a>(resp: &'a str, key: &str) -> Option<&'a str> {
    header(resp)
        .split(' ')
        .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
}

/// The response's body lines (everything after the header).
pub fn body_lines(resp: &str) -> Vec<&str> {
    resp.split('\n').skip(1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_parsing() {
        let resp = "OK rows=2 cols=1 epochs=0:3@5\n1\n2";
        assert_eq!(header(resp), "OK rows=2 cols=1 epochs=0:3@5");
        assert_eq!(header_field(resp, "rows"), Some("2"));
        assert_eq!(header_field(resp, "epochs"), Some("0:3@5"));
        assert_eq!(header_field(resp, "missing"), None);
        assert_eq!(body_lines(resp), vec!["1", "2"]);
    }
}
