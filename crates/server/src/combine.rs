//! Canonical cross-shard combine.
//!
//! Each shard executes the fan-out plan over its own snapshot; the
//! server merges the per-shard row sets into one *canonically ordered*
//! result so the bytes on the wire are deterministic — independent of
//! shard count, routing, and per-shard physical plans. That determinism
//! is what the exactness audits and the prefix-replay property test
//! compare against.
//!
//! Canonical order: the spec's sort keys first (tie-broken by the
//! remaining columns ascending), full-row lexicographic ascending when
//! the spec has no sort. `distinct` re-deduplicates globally (shards
//! eliminate only their own duplicates); `limit` truncates last.

use std::cmp::Ordering;

use pi_exec::ops::sort::SortOrder;
use pi_exec::Batch;
use pi_storage::Value;

use crate::protocol::render_value;
use crate::spec::QuerySpec;

/// Total order on values: by variant (Int < Float < Str), then by
/// payload; floats compare by `total_cmp`. Homogeneous columns never
/// reach the cross-variant arm.
pub fn cmp_value(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

fn cmp_row_suffix(a: &[Value], b: &[Value], skip: &[usize]) -> Ordering {
    for i in 0..a.len() {
        if skip.contains(&i) {
            continue;
        }
        match cmp_value(&a[i], &b[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Materializes a batch as row vectors (the combine works row-wise).
pub fn batch_rows(batch: &Batch) -> Vec<Vec<Value>> {
    let ncols = batch.columns().len();
    (0..batch.len())
        .map(|r| (0..ncols).map(|c| batch.column(c).value(r)).collect())
        .collect()
}

/// Merges per-shard result rows into the canonical result: global
/// dedup when the spec has `distinct`, canonical ordering, then the
/// `limit` truncation.
pub fn canonical_rows(spec: &QuerySpec, mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let keys: Vec<(usize, SortOrder)> = spec.sort.clone().unwrap_or_default();
    let key_positions: Vec<usize> = keys.iter().map(|&(p, _)| p).collect();
    rows.sort_by(|a, b| {
        for &(pos, dir) in &keys {
            let ord = cmp_value(&a[pos], &b[pos]);
            let ord = if matches!(dir, SortOrder::Desc) {
                ord.reverse()
            } else {
                ord
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        cmp_row_suffix(a, b, &key_positions)
    });
    if spec.distinct.is_some() {
        // Shard-local distinct already projected rows to the distinct
        // columns, so global dedup is full-row dedup; the canonical sort
        // above placed duplicates adjacently.
        rows.dedup();
    }
    if let Some(n) = spec.limit {
        rows.truncate(n);
    }
    rows
}

/// Renders rows as wire lines: one row per line, values tab-separated.
pub fn render_rows(rows: &[Vec<Value>]) -> String {
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row.iter().map(render_value).collect();
        out.push('\n');
        out.push_str(&cells.join("\t"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(v: &[&[i64]]) -> Vec<Vec<Value>> {
        v.iter()
            .map(|r| r.iter().map(|&i| Value::Int(i)).collect())
            .collect()
    }

    #[test]
    fn plain_scan_is_full_row_lex_sorted() {
        let spec = QuerySpec::parse("scan 0,1").unwrap();
        let out = canonical_rows(&spec, rows(&[&[2, 0], &[1, 9], &[1, 3]]));
        assert_eq!(out, rows(&[&[1, 3], &[1, 9], &[2, 0]]));
    }

    #[test]
    fn sort_keys_then_suffix_tiebreak() {
        let spec = QuerySpec::parse("scan 0,1 | sort 1:desc").unwrap();
        let out = canonical_rows(&spec, rows(&[&[5, 1], &[2, 9], &[1, 9]]));
        assert_eq!(out, rows(&[&[1, 9], &[2, 9], &[5, 1]]));
    }

    #[test]
    fn distinct_dedups_across_shards_and_limit_truncates_last() {
        let spec = QuerySpec::parse("scan 0 | distinct 0 | limit 2").unwrap();
        // Two shards each sent their own deduped rows; 7 appears in both.
        let out = canonical_rows(&spec, rows(&[&[7], &[3], &[7], &[9]]));
        assert_eq!(out, rows(&[&[3], &[7]]));
    }

    #[test]
    fn value_order_is_total() {
        assert_eq!(cmp_value(&Value::Int(1), &Value::Int(2)), Ordering::Less);
        assert_eq!(
            cmp_value(&Value::Float(f64::NAN), &Value::Float(f64::NAN)),
            Ordering::Equal
        );
        assert_eq!(
            cmp_value(&Value::Str("a".into()), &Value::Str("b".into())),
            Ordering::Less
        );
        assert_eq!(
            cmp_value(&Value::Int(9), &Value::Float(0.0)),
            Ordering::Less
        );
    }

    #[test]
    fn rendering_is_tab_and_newline_separated() {
        let r = rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(render_rows(&r), "\n1\t2\n3\t4");
    }
}
