//! Ring-buffered slow-query log.
//!
//! Every query runs through `QueryEngine::query_traced`; when the
//! request's wall clock crosses the configured threshold, its canonical
//! spec, latency, result size, the per-shard `(epoch, seq)` watermarks
//! it was served at, and the per-shard EXPLAIN ANALYZE traces are
//! recorded here. `SLOWLOG` renders the ring newest-first.

use std::collections::VecDeque;
use std::sync::Mutex;

use pi_obs::fmt_nanos;

/// One slow query.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Canonical spec text (`QuerySpec::render`).
    pub spec: String,
    /// End-to-end wall clock of the request, nanoseconds.
    pub nanos: u64,
    /// Rows in the combined result.
    pub rows: usize,
    /// Per-shard watermarks, `shard:epoch@seq` comma-separated.
    pub epochs: String,
    /// Per-shard EXPLAIN ANALYZE traces (`QueryTrace::render_text`).
    pub traces: String,
}

/// Fixed-capacity ring of [`SlowEntry`]s; oldest entries fall off.
pub struct SlowLog {
    cap: usize,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// An empty log keeping at most `cap` entries (`cap == 0` disables
    /// recording).
    pub fn new(cap: usize) -> Self {
        SlowLog {
            cap,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one entry, evicting the oldest past capacity.
    pub fn record(&self, entry: SlowEntry) {
        if self.cap == 0 {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        if entries.len() == self.cap {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// The `SLOWLOG` response payload: `OK entries=<n>` then one block
    /// per entry, newest first.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = format!("OK entries={}", entries.len());
        for e in entries.iter().rev() {
            out.push_str(&format!(
                "\n-- {} rows={} epochs={} spec: {}",
                fmt_nanos(e.nanos),
                e.rows,
                e.epochs,
                e.spec
            ));
            for line in e.traces.lines() {
                out.push_str("\n   ");
                out.push_str(line);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(spec: &str, nanos: u64) -> SlowEntry {
        SlowEntry {
            spec: spec.into(),
            nanos,
            rows: 1,
            epochs: "0:1@1".into(),
            traces: String::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowLog::new(2);
        log.record(entry("a", 1));
        log.record(entry("b", 2));
        log.record(entry("c", 3));
        let specs: Vec<String> = log.entries().into_iter().map(|e| e.spec).collect();
        assert_eq!(specs, vec!["b", "c"]);
        // Newest first in the rendering.
        let render = log.render();
        assert!(render.starts_with("OK entries=2"));
        assert!(render.find("spec: c").unwrap() < render.find("spec: b").unwrap());
    }

    #[test]
    fn zero_capacity_disables() {
        let log = SlowLog::new(0);
        log.record(entry("a", 1));
        assert!(log.is_empty());
    }
}
