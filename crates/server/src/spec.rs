//! The wire query mini-language: a pipe-separated stage list compiled
//! to a `pi_planner::Plan`.
//!
//! Grammar (see `docs/WIRE_PROTOCOL.md` for the spec with examples):
//!
//! ```text
//! spec     := scan ( '|' stage )*
//! scan     := 'scan' collist
//! stage    := 'distinct' collist | 'sort' sortlist | 'limit' N
//! collist  := col ( ',' col )*
//! sortlist := pos ':' ('asc'|'desc') ( ',' pos ':' ('asc'|'desc') )*
//! ```
//!
//! `scan` columns index the *table schema*; `distinct` and `sort`
//! positions index the current *output row* (so after `scan 2,0`,
//! position 0 is table column 2). Each stage may appear at most once,
//! in `distinct`/`sort`/`limit` order.

use pi_exec::ops::sort::SortOrder;
use pi_planner::Plan;

use crate::protocol::{ErrorCode, ServerError};

/// A parsed wire query. The canonical text form (`render`) is what the
/// slow-query log records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Table columns scanned, in output order.
    pub scan: Vec<usize>,
    /// Distinct over these output positions, if requested.
    pub distinct: Option<Vec<usize>>,
    /// Sort keys over output positions, if requested.
    pub sort: Option<Vec<(usize, SortOrder)>>,
    /// Row-count cap applied after the canonical combine.
    pub limit: Option<usize>,
}

fn bad(msg: impl Into<String>) -> ServerError {
    ServerError::new(ErrorCode::BadPlan, msg)
}

fn parse_cols(s: &str) -> Result<Vec<usize>, ServerError> {
    let cols: Result<Vec<usize>, _> = s
        .split(',')
        .map(|c| {
            c.trim()
                .parse::<usize>()
                .map_err(|_| bad(format!("not a column: {c:?}")))
        })
        .collect();
    let cols = cols?;
    if cols.is_empty() {
        return Err(bad("empty column list"));
    }
    Ok(cols)
}

impl QuerySpec {
    /// Parses the wire form. Validates stage arity and output-position
    /// ranges, but not table width — the server checks `scan` columns
    /// against the live schema.
    pub fn parse(text: &str) -> Result<QuerySpec, ServerError> {
        let mut stages = text.split('|').map(str::trim);
        let scan_stage = stages.next().unwrap_or("");
        let scan = match scan_stage.split_once(' ') {
            Some(("scan", cols)) => parse_cols(cols.trim())?,
            _ => return Err(bad("spec must start with 'scan <cols>'")),
        };
        let mut spec = QuerySpec {
            scan,
            distinct: None,
            sort: None,
            limit: None,
        };
        for stage in stages {
            let (word, args) = stage.split_once(' ').unwrap_or((stage, ""));
            let args = args.trim();
            match word {
                "distinct"
                    if spec.distinct.is_none() && spec.sort.is_none() && spec.limit.is_none() =>
                {
                    let cols = parse_cols(args)?;
                    for &c in &cols {
                        if c >= spec.scan.len() {
                            return Err(bad(format!("distinct position {c} out of range")));
                        }
                    }
                    spec.distinct = Some(cols);
                }
                "sort" if spec.sort.is_none() && spec.limit.is_none() => {
                    let mut keys = Vec::new();
                    for part in args.split(',') {
                        let (pos, dir) = part.trim().split_once(':').ok_or_else(|| {
                            bad(format!("sort key must be pos:dir, got {part:?}"))
                        })?;
                        let pos: usize = pos
                            .parse()
                            .map_err(|_| bad(format!("not a position: {pos:?}")))?;
                        if pos >= spec.output_width() {
                            return Err(bad(format!("sort position {pos} out of range")));
                        }
                        let dir = match dir {
                            "asc" => SortOrder::Asc,
                            "desc" => SortOrder::Desc,
                            other => {
                                return Err(bad(format!(
                                    "sort direction must be asc|desc, got {other:?}"
                                )))
                            }
                        };
                        keys.push((pos, dir));
                    }
                    if keys.is_empty() {
                        return Err(bad("empty sort key list"));
                    }
                    spec.sort = Some(keys);
                }
                "limit" if spec.limit.is_none() => {
                    spec.limit = Some(
                        args.parse()
                            .map_err(|_| bad(format!("not a limit: {args:?}")))?,
                    );
                }
                "distinct" | "sort" | "limit" => {
                    return Err(bad(format!("stage '{word}' repeated or out of order")))
                }
                other => return Err(bad(format!("unknown stage {other:?}"))),
            }
        }
        Ok(spec)
    }

    /// Width of the final output row: `distinct` projects to its
    /// positions, otherwise the scan width stands.
    pub fn output_width(&self) -> usize {
        self.distinct.as_ref().map_or(self.scan.len(), Vec::len)
    }

    /// The canonical text form (stable across parse → render cycles).
    pub fn render(&self) -> String {
        let join = |cols: &[usize]| {
            cols.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut out = format!("scan {}", join(&self.scan));
        if let Some(d) = &self.distinct {
            out.push_str(&format!(" | distinct {}", join(d)));
        }
        if let Some(keys) = &self.sort {
            let keys: Vec<String> = keys
                .iter()
                .map(|(p, d)| {
                    format!(
                        "{p}:{}",
                        if matches!(d, SortOrder::Asc) {
                            "asc"
                        } else {
                            "desc"
                        }
                    )
                })
                .collect();
            out.push_str(&format!(" | sort {}", keys.join(",")));
        }
        if let Some(n) = self.limit {
            out.push_str(&format!(" | limit {n}"));
        }
        out
    }

    /// The logical plan each shard executes. `limit` is *not* lowered —
    /// a per-shard limit would discard rows another shard's combine
    /// needs; the server truncates after the canonical merge instead.
    pub fn fanout_plan(&self) -> Plan {
        let mut plan = Plan::scan(self.scan.clone());
        if let Some(d) = &self.distinct {
            plan = plan.distinct(d.clone());
        }
        if let Some(keys) = &self.sort {
            plan = plan.sort(keys.clone());
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_pipeline() {
        let spec = QuerySpec::parse("scan 2,0 | distinct 0,1 | sort 1:desc | limit 10").unwrap();
        assert_eq!(spec.scan, vec![2, 0]);
        assert_eq!(spec.distinct, Some(vec![0, 1]));
        assert_eq!(spec.sort, Some(vec![(1, SortOrder::Desc)]));
        assert_eq!(spec.limit, Some(10));
        assert_eq!(
            spec.render(),
            "scan 2,0 | distinct 0,1 | sort 1:desc | limit 10"
        );
    }

    #[test]
    fn parse_render_is_stable() {
        for text in ["scan 0", "scan 1,2 | sort 0:asc,1:desc", "scan 0 | limit 3"] {
            assert_eq!(QuerySpec::parse(text).unwrap().render(), text);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for text in [
            "",
            "scan",
            "scan x",
            "distinct 0",
            "scan 0 | distinct 1", // position out of range
            "scan 0 | sort 0",     // missing direction
            "scan 0 | sort 1:asc", // position out of range
            "scan 0 | sort 0:up",
            "scan 0 | limit x",
            "scan 0 | limit 1 | sort 0:asc", // out of order
            "scan 0 | distinct 0 | distinct 0",
            "scan 0 | frobnicate 1",
        ] {
            assert!(QuerySpec::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn fanout_plan_excludes_limit() {
        let spec = QuerySpec::parse("scan 0 | limit 5").unwrap();
        assert!(matches!(spec.fanout_plan(), Plan::Scan { .. }));
    }
}
