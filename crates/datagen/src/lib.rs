//! # pi-datagen — workload generators
//!
//! * [`micro`] — the paper's microbenchmark generator (Section 6.2): a
//!   unique key column plus a value column with a planted exception rate
//!   for NUC or NSC, range-partitioned on the key.
//! * [`publicbi`] — synthetic stand-ins for the PublicBI workbooks of
//!   Figure 1 (per-column constraint-match fractions).
//! * [`drift`] — the three-phase grow/drift/storm workload driving the
//!   advisor lifecycle experiment.

#![warn(missing_docs)]

pub mod drift;
pub mod micro;
pub mod publicbi;

pub use drift::{DriftOp, DriftPhase, DriftSpec};
pub use micro::{generate, update_rows, MicroDataset, MicroKind, MicroSpec};
