//! # pi-datagen — workload generators
//!
//! * [`micro`] — the paper's microbenchmark generator (Section 6.2): a
//!   unique key column plus a value column with a planted exception rate
//!   for NUC or NSC, range-partitioned on the key.
//! * [`publicbi`] — synthetic stand-ins for the PublicBI workbooks of
//!   Figure 1 (per-column constraint-match fractions).

#![warn(missing_docs)]

pub mod micro;
pub mod publicbi;

pub use micro::{generate, update_rows, MicroDataset, MicroKind, MicroSpec};
