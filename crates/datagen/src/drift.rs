//! A three-phase *drifting* workload exercising the whole index
//! lifecycle — the scenario the `pi-advisor` reproduction experiment and
//! the lifecycle integration test replay:
//!
//! 1. **grow** — unique-value inserts interleaved with distinct queries:
//!    the workload evidence that makes an advisor create a NUC index.
//! 2. **drift** — rows are modified into duplicates of *other* rows
//!    (collision patches on both sides), then modified away again to
//!    fresh unique values. The patches stay (update maintenance never
//!    un-patches: "lost optimality, not correctness"), so the index's
//!    error drifts below its create-time value while the data itself is
//!    clean again — exactly the state a recompute repairs.
//! 3. **storm** — pure update pressure with zero queries: maintenance
//!    cost accrues, benefit does not, and a cost-based drop rule should
//!    retire the index.
//!
//! Ops carry explicit rowIDs/values (deterministic, seed-fixed), so a
//! harness can apply the identical stream to an advisor-managed table
//! and a manually-managed reference and compare results byte for byte.

use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table, Value};

/// Scale parameters of the drifting workload.
#[derive(Debug, Clone)]
pub struct DriftSpec {
    /// Base rows loaded before the workload starts.
    pub base_rows: usize,
    /// Partitions of the table.
    pub partitions: usize,
    /// Rows per insert/modify batch.
    pub batch_rows: usize,
    /// Batches in the grow phase (each followed by one query).
    pub grow_batches: usize,
    /// Duplicate-then-move-away rounds in the drift phase.
    pub drift_batches: usize,
    /// Update batches in the maintenance storm phase.
    pub storm_batches: usize,
}

impl DriftSpec {
    /// A spec scaled around `base_rows`, sized so the drift phase moves
    /// the error by ~`2 · drift_batches · batch_rows / total_rows`.
    pub fn new(base_rows: usize) -> Self {
        let partitions = 4;
        let drift_batches = 5;
        // The drift phase needs its target rows *and* their duplicate
        // partners inside partition 0, so the batch is capped to half a
        // partition divided over the drift rounds — tiny base_rows scale
        // the workload down instead of tripping the phase assert.
        let rows_per_part = base_rows.div_ceil(partitions);
        let max_batch = (rows_per_part / (2 * drift_batches)).max(1);
        let batch_rows = (base_rows / 64).clamp(16, 4096).min(max_batch);
        DriftSpec {
            base_rows,
            partitions,
            batch_rows,
            grow_batches: 4,
            drift_batches,
            storm_batches: 6,
        }
    }

    fn rows_per_part(&self) -> usize {
        self.base_rows.div_ceil(self.partitions)
    }

    /// Builds the (deterministic) base table: a unique `key` column and
    /// a unique `val` column (`val = 2·row`), range-partitioned on key.
    /// Call twice to get two identical tables (advisor vs reference).
    pub fn base_table(&self) -> Table {
        let rows_per_part = self.rows_per_part();
        let boundaries: Vec<i64> = (1..self.partitions)
            .map(|p| (p * rows_per_part) as i64)
            .collect();
        let mut t = Table::new(
            "drift",
            Schema::new(vec![
                Field::new("key", DataType::Int),
                Field::new("val", DataType::Int),
            ]),
            self.partitions,
            Partitioning::KeyRange { col: 0, boundaries },
        );
        for pid in 0..self.partitions {
            let start = pid * rows_per_part;
            let end = ((pid + 1) * rows_per_part).min(self.base_rows);
            let keys: Vec<i64> = (start as i64..end as i64).collect();
            let vals: Vec<i64> = (start as i64..end as i64).map(|i| 2 * i).collect();
            t.load_partition(pid, &[ColumnData::Int(keys), ColumnData::Int(vals)]);
        }
        t.propagate_all();
        t
    }

    /// The three phases, in execution order.
    pub fn phases(&self) -> Vec<DriftPhase> {
        vec![self.grow_phase(), self.drift_phase(), self.storm_phase()]
    }

    /// Column index of `val` (the advised column).
    pub const VAL_COL: usize = 1;

    fn fresh_val(counter: &mut i64) -> i64 {
        *counter += 1;
        *counter
    }

    fn grow_phase(&self) -> DriftPhase {
        // Keys continue past the base; fresh unique values far above the
        // base domain.
        let mut key = self.base_rows as i64;
        let mut val = 100_000_000i64;
        let mut ops = Vec::new();
        for _ in 0..self.grow_batches {
            let rows: Vec<Vec<Value>> = (0..self.batch_rows)
                .map(|_| {
                    key += 1;
                    vec![Value::Int(key), Value::Int(Self::fresh_val(&mut val))]
                })
                .collect();
            ops.push(DriftOp::Insert(rows));
            ops.push(DriftOp::Query);
        }
        DriftPhase { name: "grow", ops }
    }

    fn drift_phase(&self) -> DriftPhase {
        // Round b modifies base rows [b·B, (b+1)·B) of partition 0 into
        // duplicates of the partition's untouched upper half, then moves
        // them to fresh values. Both sides of every pair end up as stale
        // patches; the data is unique again afterwards.
        let rows_per_part = self.rows_per_part();
        // Targets and their duplicate partners both live in partition 0,
        // so only as many rounds run as fit — degenerate tiny tables get
        // a shorter (possibly empty) drift phase instead of a panic.
        let rounds = self
            .drift_batches
            .min(rows_per_part / (2 * self.batch_rows));
        let upper_base = rows_per_part / 2;
        let mut val = 200_000_000i64;
        let mut ops = Vec::new();
        for b in 0..rounds {
            let rids: Vec<usize> = (b * self.batch_rows..(b + 1) * self.batch_rows).collect();
            // Partner values: vals of rows in the upper half (val = 2·row
            // for partition 0's base rows).
            let dup_vals: Vec<Value> = rids
                .iter()
                .map(|&r| Value::Int(2 * (upper_base + r) as i64))
                .collect();
            ops.push(DriftOp::Modify {
                pid: 0,
                rids: rids.clone(),
                col: Self::VAL_COL,
                values: dup_vals,
            });
            let away: Vec<Value> = rids
                .iter()
                .map(|_| Value::Int(Self::fresh_val(&mut val)))
                .collect();
            ops.push(DriftOp::Modify {
                pid: 0,
                rids,
                col: Self::VAL_COL,
                values: away,
            });
            ops.push(DriftOp::Query);
        }
        DriftPhase { name: "drift", ops }
    }

    fn storm_phase(&self) -> DriftPhase {
        // Fresh-value modifies cycling through partition 0: no new
        // patches, pure maintenance pressure, no queries.
        let rows_per_part = self.rows_per_part();
        let mut val = 300_000_000i64;
        let mut ops = Vec::new();
        for b in 0..self.storm_batches {
            let start = (b * self.batch_rows) % (rows_per_part - self.batch_rows).max(1);
            let rids: Vec<usize> = (start..start + self.batch_rows).collect();
            let values: Vec<Value> = rids
                .iter()
                .map(|_| Value::Int(Self::fresh_val(&mut val)))
                .collect();
            ops.push(DriftOp::Modify {
                pid: 0,
                rids,
                col: Self::VAL_COL,
                values,
            });
        }
        DriftPhase { name: "storm", ops }
    }
}

/// One workload operation.
#[derive(Debug, Clone)]
pub enum DriftOp {
    /// Insert these rows.
    Insert(Vec<Vec<Value>>),
    /// Modify `rids` of partition `pid`, column `col`, to `values`.
    Modify {
        /// Partition.
        pid: usize,
        /// Target rowIDs.
        rids: Vec<usize>,
        /// Column to patch.
        col: usize,
        /// New values, one per rowID.
        values: Vec<Value>,
    },
    /// Run the workload's query (distinct over [`DriftSpec::VAL_COL`]).
    Query,
}

/// One named phase.
#[derive(Debug, Clone)]
pub struct DriftPhase {
    /// Phase name (`grow` / `drift` / `storm`).
    pub name: &'static str,
    /// Operations in order.
    pub ops: Vec<DriftOp>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_table_is_deterministic_and_unique() {
        let spec = DriftSpec::new(4_000);
        let a = spec.base_table();
        let b = spec.base_table();
        assert_eq!(a.visible_len(), 4_000);
        assert_eq!(a.visible_len(), b.visible_len());
        for pid in 0..spec.partitions {
            assert_eq!(
                a.partition(pid).base_column(1).as_int(),
                b.partition(pid).base_column(1).as_int()
            );
        }
    }

    #[test]
    fn phases_have_the_expected_shapes() {
        let spec = DriftSpec::new(4_000);
        let phases = spec.phases();
        assert_eq!(phases.len(), 3);
        let queries = |p: &DriftPhase| p.ops.iter().filter(|o| matches!(o, DriftOp::Query)).count();
        assert_eq!(phases[0].name, "grow");
        assert_eq!(queries(&phases[0]), spec.grow_batches);
        assert_eq!(phases[1].name, "drift");
        assert_eq!(queries(&phases[1]), spec.drift_batches);
        assert_eq!(phases[2].name, "storm");
        assert_eq!(queries(&phases[2]), 0, "the storm never queries");
    }

    /// Regression: tiny `base_rows` must scale the workload down, not
    /// trip the drift-phase assert (`repro advisor` accepts any
    /// `PI_ADV_ROWS`).
    #[test]
    fn tiny_base_rows_scale_down_instead_of_panicking() {
        for rows in [1usize, 64, 256, 511] {
            let spec = DriftSpec::new(rows);
            let phases = spec.phases();
            assert_eq!(phases.len(), 3, "base_rows={rows}");
            assert!(spec.batch_rows >= 1);
        }
    }

    #[test]
    fn drift_rounds_target_disjoint_rids_below_their_partners() {
        let spec = DriftSpec::new(4_000);
        let drift = &spec.phases()[1];
        let mut seen = std::collections::HashSet::new();
        for op in &drift.ops {
            if let DriftOp::Modify { rids, values, .. } = op {
                for (&r, v) in rids.iter().zip(values) {
                    // Duplicate-step values point at upper-half rows the
                    // phase itself never touches.
                    if let Value::Int(v) = v {
                        if *v < 100_000_000 {
                            let partner = (*v / 2) as usize;
                            assert!(partner >= spec.rows_per_part() / 2);
                        }
                    }
                    seen.insert(r);
                }
            }
        }
        assert!(seen.len() >= spec.drift_batches * spec.batch_rows);
    }
}
