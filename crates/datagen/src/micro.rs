//! The microbenchmark data generator (paper, Section 6.2; the authors'
//! generator is reference \[1\]).
//!
//! Datasets have two columns: a unique key and a value column exhibiting a
//! chosen exception rate `e` to a chosen constraint. The table is range-
//! partitioned on the key into equal slices.
//!
//! * **NUC**: exceptions draw their values from a pool of duplicate values
//!   ("equally distributed into 100K values" at paper scale); all other
//!   values are unique and disjoint from the pool. Pool values are planted
//!   in pairs *within* a partition, so partition-local discovery marks all
//!   of their occurrences — the property that keeps the rewritten distinct
//!   plan duplicate-free (see DESIGN.md).
//! * **NSC**: non-exception positions carry an ascending sequence;
//!   exceptions carry random values at random positions.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pi_storage::{ColumnData, DataType, Field, Partitioning, Schema, Table};

/// Which constraint the value column approximates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKind {
    /// Nearly unique values.
    Nuc,
    /// Nearly sorted (ascending) values.
    Nsc,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MicroSpec {
    /// Total rows (the paper uses 1e9; scale to the machine).
    pub rows: usize,
    /// Partitions (paper: 24).
    pub partitions: usize,
    /// Exception rate `e` in `[0, 1]`.
    pub exception_rate: f64,
    /// Constraint kind of the value column.
    pub kind: MicroKind,
    /// Size of the duplicate-value pool for NUC (paper: 100K). Clamped so
    /// every pool value can occur at least twice.
    pub dup_values: usize,
    /// RNG seed (datasets are generated once; fixed seeds keep runs
    /// comparable, like the paper's "randomly chosen but fixed").
    pub seed: u64,
}

impl MicroSpec {
    /// A spec with paper-like defaults at the given scale.
    pub fn new(rows: usize, exception_rate: f64, kind: MicroKind) -> Self {
        MicroSpec {
            rows,
            partitions: 4,
            exception_rate,
            kind,
            dup_values: 100_000,
            seed: 0x9E37_79B9,
        }
    }

    /// Overrides the partition count.
    pub fn with_partitions(mut self, p: usize) -> Self {
        self.partitions = p;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated dataset: the table plus the planted exception positions
/// (per partition, ascending) for verification.
pub struct MicroDataset {
    /// Two-column table (`key`, `val`), range-partitioned on `key`.
    pub table: Table,
    /// Planted exception rowIDs per partition.
    pub planted: Vec<Vec<u64>>,
}

/// Generates a microbenchmark dataset.
pub fn generate(spec: &MicroSpec) -> MicroDataset {
    assert!(spec.partitions > 0 && spec.rows > 0, "empty spec");
    assert!(
        (0.0..=1.0).contains(&spec.exception_rate),
        "exception rate out of range"
    );
    let rows_per_part = spec.rows.div_ceil(spec.partitions);
    let boundaries: Vec<i64> = (1..spec.partitions)
        .map(|p| (p * rows_per_part) as i64)
        .collect();
    let schema = Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("val", DataType::Int),
    ]);
    let mut table = Table::new(
        "micro",
        schema,
        spec.partitions,
        Partitioning::KeyRange { col: 0, boundaries },
    );
    let mut planted = Vec::with_capacity(spec.partitions);
    let mut next_unique = spec.rows as i64; // unique values disjoint from pool
    for pid in 0..spec.partitions {
        let start = pid * rows_per_part;
        let end = ((pid + 1) * rows_per_part).min(spec.rows);
        let n = end - start;
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ (pid as u64).wrapping_mul(0xA24B_AED4));
        let keys: Vec<i64> = (start as i64..end as i64).collect();
        let n_exc = ((n as f64) * spec.exception_rate).round() as usize;
        // Random exception positions within the partition.
        let mut positions: Vec<usize> = (0..n).collect();
        positions.shuffle(&mut rng);
        let mut exc_pos: Vec<usize> = positions[..n_exc].to_vec();
        exc_pos.sort_unstable();
        let is_exc = {
            let mut v = vec![false; n];
            exc_pos.iter().for_each(|&p| v[p] = true);
            v
        };
        let vals: Vec<i64> = match spec.kind {
            MicroKind::Nuc => {
                // Draw pool values in pairs so every pool value occurring in
                // this partition occurs at least twice here.
                let pool = spec.dup_values.clamp(1, (n_exc / 2).max(1));
                let mut exc_vals = Vec::with_capacity(n_exc);
                while exc_vals.len() + 2 <= n_exc {
                    let v = rng.gen_range(0..pool as i64);
                    exc_vals.push(v);
                    exc_vals.push(v);
                }
                // An odd remainder repeats the previous value once more.
                if exc_vals.len() < n_exc {
                    let v = exc_vals.last().copied().unwrap_or(0);
                    exc_vals.push(v);
                }
                exc_vals.shuffle(&mut rng);
                let mut ei = 0;
                (0..n)
                    .map(|i| {
                        if is_exc[i] {
                            let v = exc_vals[ei];
                            ei += 1;
                            v
                        } else {
                            next_unique += 1;
                            next_unique
                        }
                    })
                    .collect()
            }
            MicroKind::Nsc => {
                // Sorted backbone over non-exception positions; exceptions
                // carry random values anywhere in the domain.
                let mut sorted_val = (start as i64) * 2;
                (0..n)
                    .map(|i| {
                        if is_exc[i] {
                            rng.gen_range(0..(spec.rows as i64 * 2))
                        } else {
                            sorted_val += 2;
                            sorted_val
                        }
                    })
                    .collect()
            }
        };
        table.load_partition(pid, &[ColumnData::Int(keys), ColumnData::Int(vals)]);
        planted.push(exc_pos.iter().map(|&p| p as u64).collect());
    }
    table.propagate_all();
    MicroDataset { table, planted }
}

/// Rows used by the update experiments (paper, Section 6.2.4–6.2.6):
/// fresh unique keys; values drawn like the base distribution.
pub fn update_rows(
    dataset_rows: usize,
    kind: MicroKind,
    count: usize,
    seed: u64,
) -> Vec<Vec<pi_storage::Value>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let key = (dataset_rows + i) as i64 * 7 + 1_000_000_007;
            let val = match kind {
                MicroKind::Nuc => rng.gen_range(0..(dataset_rows as i64 * 4)),
                MicroKind::Nsc => rng.gen_range(0..(dataset_rows as i64 * 2)),
            };
            vec![pi_storage::Value::Int(key), pi_storage::Value::Int(val)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchindex::discovery::{discover_values, partition_column_values};
    use patchindex::{Constraint, SortDir};

    #[test]
    fn nuc_exception_rate_is_planted() {
        let spec = MicroSpec::new(10_000, 0.2, MicroKind::Nuc);
        let ds = generate(&spec);
        assert_eq!(ds.table.visible_len(), 10_000);
        let total_planted: usize = ds.planted.iter().map(|p| p.len()).sum();
        assert!((total_planted as f64 / 10_000.0 - 0.2).abs() < 0.01);
        // Discovery finds exactly the planted exceptions.
        for pid in 0..ds.table.partition_count() {
            let vals = partition_column_values(ds.table.partition(pid), 1);
            let r = discover_values(&vals, Constraint::NearlyUnique);
            assert_eq!(r.patches, ds.planted[pid], "partition {pid}");
        }
    }

    #[test]
    fn nsc_discovery_close_to_planted() {
        let spec = MicroSpec::new(8_000, 0.1, MicroKind::Nsc);
        let ds = generate(&spec);
        for pid in 0..ds.table.partition_count() {
            let vals = partition_column_values(ds.table.partition(pid), 1);
            let r = discover_values(&vals, Constraint::NearlySorted(SortDir::Asc));
            // A random exception can accidentally extend the sorted run, so
            // discovery may find slightly FEWER patches than planted — never
            // more.
            assert!(r.patches.len() <= ds.planted[pid].len(), "partition {pid}");
            let planted = ds.planted[pid].len() as f64;
            if planted > 0.0 {
                assert!(r.patches.len() as f64 >= planted * 0.8, "partition {pid}");
            }
        }
    }

    #[test]
    fn zero_exception_rate_is_clean() {
        for kind in [MicroKind::Nuc, MicroKind::Nsc] {
            let ds = generate(&MicroSpec::new(5_000, 0.0, kind));
            assert!(ds.planted.iter().all(|p| p.is_empty()));
        }
    }

    #[test]
    fn full_exception_rate() {
        let ds = generate(&MicroSpec::new(4_000, 1.0, MicroKind::Nuc));
        let total: usize = ds.planted.iter().map(|p| p.len()).sum();
        assert_eq!(total, 4_000);
    }

    #[test]
    fn partitions_have_equal_size() {
        let ds = generate(&MicroSpec::new(10_000, 0.5, MicroKind::Nsc).with_partitions(5));
        for pid in 0..5 {
            assert_eq!(ds.table.partition(pid).visible_len(), 2_000);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&MicroSpec::new(2_000, 0.3, MicroKind::Nuc));
        let b = generate(&MicroSpec::new(2_000, 0.3, MicroKind::Nuc));
        assert_eq!(a.planted, b.planted);
        let va = partition_column_values(a.table.partition(0), 1);
        let vb = partition_column_values(b.table.partition(0), 1);
        assert_eq!(va, vb);
    }

    #[test]
    fn update_rows_have_fresh_keys() {
        let rows = update_rows(1_000, MicroKind::Nuc, 10, 42);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r[0].as_int() >= 1_000_000_007);
        }
    }
}
