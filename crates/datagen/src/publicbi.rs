//! Synthetic stand-ins for the PublicBI workbooks of Figure 1.
//!
//! The paper motivates PatchIndexes with three real Tableau workbooks
//! (USCensus_1, IGlocations2_1, IUBlibrary_1) whose columns match
//! approximate constraints to varying degrees. The real dumps are multi-GB
//! downloads; Figure 1 only uses *per-column constraint-match
//! percentages*, so we synthesize workbook-like tables with planted match
//! fractions following the paper's description (USCensus: 15 of 500+
//! columns nearly sorted, nine of them above 60%; IGlocations2/IUBlibrary:
//! few columns, many nearly perfectly unique). See DESIGN.md,
//! substitutions.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Constraint a synthetic column approximates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Nearly sorted column.
    Nsc,
    /// Nearly unique column.
    Nuc,
    /// Unconstrained noise column.
    Noise,
}

/// One synthetic column: kind plus target match fraction.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Constraint kind.
    pub kind: ColumnKind,
    /// Fraction of tuples matching the constraint, `[0, 1]`.
    pub match_fraction: f64,
}

/// A synthetic workbook.
#[derive(Debug, Clone)]
pub struct WorkbookSpec {
    /// Workbook name (paper dataset it imitates).
    pub name: &'static str,
    /// Which constraint Figure 1 plots for this workbook.
    pub plotted: ColumnKind,
    /// Rows per column.
    pub rows: usize,
    /// The columns.
    pub columns: Vec<ColumnSpec>,
}

fn spread(kind: ColumnKind, fractions: &[f64]) -> Vec<ColumnSpec> {
    fractions
        .iter()
        .map(|&f| ColumnSpec {
            kind,
            match_fraction: f,
        })
        .collect()
}

/// USCensus_1-like: 500+ columns, 15 nearly sorted, nine above 60%.
pub fn uscensus_like(rows: usize) -> WorkbookSpec {
    let mut columns = spread(
        ColumnKind::Nsc,
        &[
            0.97, 0.93, 0.88, 0.82, 0.76, 0.71, 0.68, 0.65, 0.62, 0.45, 0.38, 0.31, 0.22, 0.15,
            0.08,
        ],
    );
    columns.extend(
        std::iter::repeat_with(|| ColumnSpec {
            kind: ColumnKind::Noise,
            match_fraction: 0.0,
        })
        .take(490),
    );
    WorkbookSpec {
        name: "USCensus_1",
        plotted: ColumnKind::Nsc,
        rows,
        columns,
    }
}

/// IGlocations2_1-like: few columns, a large share nearly perfectly unique.
pub fn iglocations_like(rows: usize) -> WorkbookSpec {
    let mut columns = spread(
        ColumnKind::Nuc,
        &[0.999, 0.995, 0.99, 0.97, 0.92, 0.55, 0.30],
    );
    columns.extend(spread(ColumnKind::Noise, &[0.0, 0.0, 0.0]));
    WorkbookSpec {
        name: "IGlocations2_1",
        plotted: ColumnKind::Nuc,
        rows,
        columns,
    }
}

/// IUBlibrary_1-like: small workbook, several nearly unique columns.
pub fn iublibrary_like(rows: usize) -> WorkbookSpec {
    let mut columns = spread(
        ColumnKind::Nuc,
        &[0.998, 0.99, 0.985, 0.96, 0.88, 0.72, 0.40, 0.12],
    );
    columns.extend(spread(ColumnKind::Noise, &[0.0, 0.0]));
    WorkbookSpec {
        name: "IUBlibrary_1",
        plotted: ColumnKind::Nuc,
        rows,
        columns,
    }
}

/// Materializes a column's values with (approximately) the target match
/// fraction.
pub fn generate_column(spec: &ColumnSpec, rows: usize, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_match = ((rows as f64) * spec.match_fraction).round() as usize;
    match spec.kind {
        ColumnKind::Nsc => {
            // `n_match` positions form a sorted run; the rest are random.
            let mut idx: Vec<usize> = (0..rows).collect();
            idx.shuffle(&mut rng);
            let mut is_sorted_pos = vec![false; rows];
            idx[..n_match].iter().for_each(|&i| is_sorted_pos[i] = true);
            let mut next = 0i64;
            (0..rows)
                .map(|i| {
                    if is_sorted_pos[i] {
                        next += rng.gen_range(1..3);
                        next
                    } else {
                        // Strictly below the backbone's reach so a random
                        // value rarely extends the run.
                        -rng.gen_range(1..(rows as i64 * 4))
                    }
                })
                .collect()
        }
        ColumnKind::Nuc => {
            // `rows - n_match` rows share values from a small pool (pairs),
            // the rest are unique.
            let n_dup = rows - n_match;
            let pool = (n_dup / 2).max(1) as i64;
            let mut vals: Vec<i64> = Vec::with_capacity(rows);
            let mut i = 0;
            while vals.len() + 2 <= n_dup {
                let v = rng.gen_range(0..pool);
                vals.push(v);
                vals.push(v);
            }
            if vals.len() < n_dup {
                let v = vals.last().copied().unwrap_or(0);
                vals.push(v);
            }
            while vals.len() < rows {
                vals.push(pool + 1 + i);
                i += 1;
            }
            vals.shuffle(&mut rng);
            vals
        }
        ColumnKind::Noise => (0..rows).map(|_| rng.gen_range(0..16)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchindex::discovery::constraint_match_fraction;
    use patchindex::{Constraint, SortDir};

    #[test]
    fn workbook_shapes_match_paper_description() {
        let us = uscensus_like(1000);
        assert!(us.columns.len() > 500);
        let nsc_cols = us
            .columns
            .iter()
            .filter(|c| c.kind == ColumnKind::Nsc)
            .count();
        assert_eq!(nsc_cols, 15);
        let over60 = us
            .columns
            .iter()
            .filter(|c| c.kind == ColumnKind::Nsc && c.match_fraction > 0.6)
            .count();
        assert_eq!(over60, 9);
        assert!(iglocations_like(100).columns.len() <= 10);
    }

    #[test]
    fn generated_nuc_column_hits_target_fraction() {
        for target in [0.9, 0.5, 0.2] {
            let col = generate_column(
                &ColumnSpec {
                    kind: ColumnKind::Nuc,
                    match_fraction: target,
                },
                4000,
                7,
            );
            let got = constraint_match_fraction(&col, Constraint::NearlyUnique);
            assert!((got - target).abs() < 0.05, "target {target} got {got}");
        }
    }

    #[test]
    fn generated_nsc_column_hits_target_fraction() {
        for target in [0.9, 0.6, 0.3] {
            let col = generate_column(
                &ColumnSpec {
                    kind: ColumnKind::Nsc,
                    match_fraction: target,
                },
                4000,
                11,
            );
            let got = constraint_match_fraction(&col, Constraint::NearlySorted(SortDir::Asc));
            // Random rows can only add to the sorted run.
            assert!(got >= target - 0.02, "target {target} got {got}");
            assert!(got <= target + 0.1, "target {target} got {got}");
        }
    }

    #[test]
    fn noise_columns_match_poorly() {
        let col = generate_column(
            &ColumnSpec {
                kind: ColumnKind::Noise,
                match_fraction: 0.0,
            },
            2000,
            3,
        );
        let nuc = constraint_match_fraction(&col, Constraint::NearlyUnique);
        assert!(nuc < 0.1, "noise should not look unique ({nuc})");
    }
}
