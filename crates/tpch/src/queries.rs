//! Hand-lowered physical plans for TPC-H Q3, Q7 and Q12 (paper,
//! Section 6.3 / Figure 10) in four variants each:
//!
//! * **Reference** — hash joins, no constraint information;
//! * **PatchIndex** — the NSC on `l_orderkey` replaces the big HashJoin by
//!   a MergeJoin in the `exclude_patches` flow, the patches flow builds a
//!   hash table on the (small) patch set and probes the buffered join
//!   subtree "X" (intermediate result caching), both flows recombine with
//!   a Union (Figure 2, right);
//! * **PatchIndexZbp** — like PatchIndex with zero-branch pruning: on a
//!   perfect constraint the patches subtree is dropped entirely;
//! * **JoinIdx** — the lineitem⋈orders join is read from a materialized
//!   [`JoinIndex`] partner column instead of being computed.

use patchindex::scan::patch_scan;
use patchindex::PatchIndex;
use pi_baselines::JoinIndex;
use pi_exec::ops::agg::{AggSpec, HashAggOp};
use pi_exec::ops::filter::{FilterOp, ProjectOp};
use pi_exec::ops::hash_join::HashJoinOp;
use pi_exec::ops::merge::UnionAllOp;
use pi_exec::ops::merge_join::MergeJoinOp;
use pi_exec::ops::patch_select::PatchMode;
use pi_exec::ops::reuse::{ReuseCacheOp, ReuseCell, ReuseLoadOp};
use pi_exec::ops::scan::ScanOp;
use pi_exec::ops::sort::{SortOp, SortOrder};
use pi_exec::{collect, count_rows, Batch, Expr, OpRef};
use pi_storage::{date, Table};

use crate::gen::{cols, TpchDb};

/// Which physical plan a query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryVariant {
    /// Hash joins without constraint information.
    Reference,
    /// PatchIndex rewrite (MergeJoin + patches flow).
    PatchIndex,
    /// PatchIndex rewrite with zero-branch pruning.
    PatchIndexZbp,
    /// Materialized JoinIndex.
    JoinIdx,
}

/// Scans all partitions of a table (union), optionally filtered.
fn scan_all<'a>(table: &'a Table, cols_: Vec<usize>, filter: Option<Expr>) -> OpRef<'a> {
    let parts: Vec<OpRef<'a>> = (0..table.partition_count())
        .map(|pid| Box::new(ScanOp::new(table.partition(pid), cols_.clone(), false)) as OpRef<'a>)
        .collect();
    let union: OpRef<'a> = Box::new(UnionAllOp::new(parts));
    match filter {
        Some(pred) => Box::new(FilterOp::new(union, pred)),
        None => union,
    }
}

/// Materializes the buffered subtree "X" into a reuse cell and returns a
/// factory for replaying it (the paper's ReuseCache / ReuseLoad pair).
fn buffer_subtree(x: OpRef<'_>) -> ReuseCell {
    let cell = ReuseCell::new();
    let mut cache = ReuseCacheOp::new(x, cell.clone());
    let _ = count_rows(&mut cache);
    cell
}

/// The lineitem⋈X join for the PatchIndex variants: per partition, an
/// order-preserving MergeJoin over the excluding flow plus (unless pruned)
/// a HashJoin with the build side on the patches. Output columns are
/// `[X columns..., lineitem columns..., rid]`.
fn pi_lineitem_join<'a>(
    db: &'a TpchDb,
    index: &'a PatchIndex,
    x_cell: &ReuseCell,
    x_key: usize,
    l_cols: Vec<usize>,
    l_filter: Option<Expr>,
    zbp: bool,
) -> OpRef<'a> {
    let mut flows: Vec<OpRef<'a>> = Vec::new();
    for pid in 0..db.lineitem.partition_count() {
        let part = db.lineitem.partition(pid);
        // exclude_patches flow: sorted on l_orderkey, MergeJoin with X.
        let exclude = patch_scan(part, index, l_cols.clone(), PatchMode::ExcludePatches);
        let exclude: OpRef<'a> = match &l_filter {
            Some(pred) => Box::new(FilterOp::new(exclude, pred.clone())),
            None => exclude,
        };
        let x_replay: OpRef<'a> = Box::new(ReuseLoadOp::new(x_cell.clone()));
        flows.push(Box::new(MergeJoinOp::new(x_replay, x_key, exclude, 0)));
        // use_patches flow: hash build on the small patch set, probe X.
        // The ZBP variant prunes it per partition, like pi-planner's
        // catalog-aware lowering does for Plan-based queries.
        let has_patches = index.partition_patch_count(pid) > 0;
        if !zbp || has_patches {
            let use_flow = patch_scan(part, index, l_cols.clone(), PatchMode::UsePatches);
            let use_flow: OpRef<'a> = match &l_filter {
                Some(pred) => Box::new(FilterOp::new(use_flow, pred.clone())),
                None => use_flow,
            };
            let x_replay: OpRef<'a> = Box::new(ReuseLoadOp::new(x_cell.clone()));
            // Probe X so the output layout matches the MergeJoin flow.
            flows.push(Box::new(HashJoinOp::inner(use_flow, 0, x_replay, x_key)));
        }
    }
    Box::new(UnionAllOp::new(flows))
}

/// TPC-H Q3 (shipping priority).
pub fn q3(
    db: &TpchDb,
    variant: QueryVariant,
    index: Option<&PatchIndex>,
    ji: Option<&JoinIndex>,
) -> Batch {
    let cutoff = date(1995, 3, 15);
    let seg_dict = db.customer.dict(cols::C_MKTSEGMENT).unwrap();
    let cust_filter = Expr::col(1).eq(Expr::lit_str(seg_dict, "BUILDING"));
    let customer_f = || {
        scan_all(
            &db.customer,
            vec![cols::C_CUSTKEY, cols::C_MKTSEGMENT],
            Some(cust_filter.clone()),
        )
    };
    let orders_cols = vec![
        cols::O_ORDERKEY,
        cols::O_CUSTKEY,
        cols::O_ORDERDATE,
        cols::O_SHIPPRIORITY,
    ];
    let orders_f = || {
        scan_all(
            &db.orders,
            orders_cols.clone(),
            Some(Expr::col(2).lt(Expr::LitInt(cutoff))),
        )
    };
    // X = customer_f ⋈ orders_f, probe side = orders (order preserving).
    // Output: [o_orderkey, o_custkey, o_orderdate, o_shippriority, c_custkey, c_seg]
    let x = || -> OpRef<'_> { Box::new(HashJoinOp::inner(customer_f(), 0, orders_f(), 1)) };
    let l_cols = vec![
        cols::L_ORDERKEY,
        cols::L_EXTENDEDPRICE,
        cols::L_DISCOUNT,
        cols::L_SHIPDATE,
    ];
    let l_filter = Expr::col(3).gt(Expr::LitInt(cutoff));

    let joined: Batch = match variant {
        QueryVariant::Reference => {
            // HashJoin: build = X, probe = lineitem.
            // Output: [l cols (0..4), x cols (4..10)]
            let li = scan_all(&db.lineitem, l_cols.clone(), Some(l_filter.clone()));
            let mut join = HashJoinOp::inner(x(), 0, li, 0);
            let out = collect(&mut join);
            // Normalize to [x..., l...]: project x cols then l cols.
            project_concat(&out, 4, 6)
        }
        QueryVariant::PatchIndex | QueryVariant::PatchIndexZbp => {
            let index = index.expect("PatchIndex variant needs the NSC index");
            let cell = buffer_subtree(x());
            let mut root = pi_lineitem_join(
                db,
                index,
                &cell,
                0,
                l_cols.clone(),
                Some(l_filter.clone()),
                variant == QueryVariant::PatchIndexZbp,
            );
            let out = collect(root.as_mut());
            normalize_pi_layout(&out, 6, l_cols.len() + 1)
        }
        QueryVariant::JoinIdx => {
            let ji = ji.expect("JoinIdx variant needs the JoinIndex");
            return q3_joinindex(db, ji, cutoff, &cust_filter);
        }
    };
    // joined layout: [x(0..6), l(6..)]:
    //   0 o_orderkey 1 o_custkey 2 o_orderdate 3 o_shippriority
    //   4 c_custkey 5 c_seg 6 l_orderkey 7 price 8 discount 9 shipdate
    let revenue = Expr::col(7).mul(Expr::LitFloat(1.0).sub(Expr::col(8)));
    let projected = Batch::new(vec![
        joined.column(6).clone(),
        joined.column(2).clone(),
        joined.column(3).clone(),
        revenue.eval(&joined),
    ]);
    finish_q3(projected)
}

/// Groups, sorts and limits the projected Q3 rows
/// `[l_orderkey, o_orderdate, o_shippriority, revenue]`.
fn finish_q3(projected: Batch) -> Batch {
    let mut agg = HashAggOp::new(
        Box::new(pi_exec::BatchSource::single(projected)),
        vec![0, 1, 2],
        vec![AggSpec::sum(Expr::col(3))],
    );
    let aggd = collect(&mut agg);
    let mut sort = SortOp::new(
        Box::new(pi_exec::BatchSource::single(aggd)),
        vec![(3, SortOrder::Desc), (1, SortOrder::Asc)],
    );
    let sorted = collect(&mut sort);
    let keep: Vec<usize> = (0..sorted.len().min(10)).collect();
    sorted.gather(&keep)
}

fn q3_joinindex(db: &TpchDb, ji: &JoinIndex, cutoff: i64, cust_filter: &Expr) -> Batch {
    // Scan lineitem (+rids), gather the orders partner columns through the
    // materialized index, then finish with the customer join.
    let l_cols = vec![
        cols::L_ORDERKEY,
        cols::L_EXTENDEDPRICE,
        cols::L_DISCOUNT,
        cols::L_SHIPDATE,
    ];
    let mut pieces: Vec<Batch> = Vec::new();
    for pid in 0..db.lineitem.partition_count() {
        let part = db.lineitem.partition(pid);
        let mut scan = ScanOp::new(part, l_cols.clone(), true);
        let mut filt = FilterOp::new(
            Box::new(take_op(&mut scan)),
            Expr::col(3).gt(Expr::LitInt(cutoff)),
        );
        let out = collect(&mut filt);
        if out.is_empty() {
            continue;
        }
        let rids: Vec<usize> = out.column(4).as_int().iter().map(|&r| r as usize).collect();
        let ocols = ji.gather_dim(
            &db.orders,
            pid,
            &rids,
            &[cols::O_CUSTKEY, cols::O_ORDERDATE, cols::O_SHIPPRIORITY],
        );
        let mut columns = out.into_columns();
        columns.truncate(4);
        columns.extend(ocols);
        pieces.push(Batch::new(columns));
    }
    // [l_orderkey, price, discount, shipdate, o_custkey, o_orderdate, o_shipprio]
    let combined = Batch::concat(&pieces);
    let mut date_f = FilterOp::new(
        Box::new(pi_exec::BatchSource::single(combined)),
        Expr::col(5).lt(Expr::LitInt(cutoff)),
    );
    // Remaining join with the filtered customers.
    let cust = scan_all(
        &db.customer,
        vec![cols::C_CUSTKEY, cols::C_MKTSEGMENT],
        Some(cust_filter.clone()),
    );
    let mut join = HashJoinOp::inner(cust, 0, Box::new(take_op(&mut date_f)), 4);
    let out = collect(&mut join);
    // [l..7, c_custkey, c_seg]
    let revenue = Expr::col(1).mul(Expr::LitFloat(1.0).sub(Expr::col(2)));
    let projected = Batch::new(vec![
        out.column(0).clone(),
        out.column(5).clone(),
        out.column(6).clone(),
        revenue.eval(&out),
    ]);
    finish_q3(projected)
}

// --- small plumbing helpers -------------------------------------------------

/// Drains an operator into a replayable source (pipeline-breaking helper
/// for hand-lowered plans).
fn take_op(op: &mut dyn pi_exec::Operator) -> pi_exec::BatchSource {
    pi_exec::BatchSource::new(pi_exec::drain(op))
}

/// Reorders `[l(0..l_width), x(l_width..l_width+x_width)]` into
/// `[x..., l...]`.
fn project_concat(out: &Batch, l_width: usize, x_width: usize) -> Batch {
    let order: Vec<usize> = (l_width..l_width + x_width).chain(0..l_width).collect();
    out.project(&order)
}

/// PatchIndex flows emit two layouts: MergeJoin `[x, l]`, patches HashJoin
/// `[x, l]` as well (X is the probe side) — already uniform, so this is a
/// no-op check that widths line up.
fn normalize_pi_layout(out: &Batch, x_width: usize, l_width: usize) -> Batch {
    if !out.is_empty() {
        assert_eq!(out.width(), x_width + l_width, "unexpected PI join layout");
    }
    out.clone()
}

/// TPC-H Q7 (volume shipping).
pub fn q7(
    db: &TpchDb,
    variant: QueryVariant,
    index: Option<&PatchIndex>,
    ji: Option<&JoinIndex>,
) -> Batch {
    let n_dict = db.nation.dict(cols::N_NAME).unwrap();
    let fr = Expr::lit_str(n_dict, "FRANCE");
    let de = Expr::lit_str(n_dict, "GERMANY");
    let nation_pair = || {
        scan_all(
            &db.nation,
            vec![cols::N_NATIONKEY, cols::N_NAME],
            Some(Expr::col(1).eq(fr.clone()).or(Expr::col(1).eq(de.clone()))),
        )
    };
    // supp side: [s_suppkey, s_nationkey, n_key, n_name]
    let supp_nation = || -> OpRef<'_> {
        Box::new(HashJoinOp::inner(
            nation_pair(),
            0,
            scan_all(&db.supplier, vec![cols::S_SUPPKEY, cols::S_NATIONKEY], None),
            1,
        ))
    };
    // cust side: [c_custkey, c_nationkey, n_key, n_name]
    let cust_nation = || -> OpRef<'_> {
        Box::new(HashJoinOp::inner(
            nation_pair(),
            0,
            scan_all(&db.customer, vec![cols::C_CUSTKEY, cols::C_NATIONKEY], None),
            1,
        ))
    };
    // X = cust_nation ⋈ orders (probe = orders, order preserving):
    // [o_orderkey, o_custkey, c_custkey, c_nationkey, n_key, n_name]
    let x = || -> OpRef<'_> {
        Box::new(HashJoinOp::inner(
            cust_nation(),
            0,
            scan_all(&db.orders, vec![cols::O_ORDERKEY, cols::O_CUSTKEY], None),
            1,
        ))
    };
    let ship_lo = date(1995, 1, 1);
    let ship_hi = date(1996, 12, 31);
    let l_cols = vec![
        cols::L_ORDERKEY,
        cols::L_SUPPKEY,
        cols::L_EXTENDEDPRICE,
        cols::L_DISCOUNT,
        cols::L_SHIPDATE,
    ];
    let l_filter = Expr::Between(Box::new(Expr::col(4)), ship_lo, ship_hi);

    // lineitem ⋈ X, normalized to [x(0..6), l(6..)].
    let joined: Batch = match variant {
        QueryVariant::Reference => {
            let li = scan_all(&db.lineitem, l_cols.clone(), Some(l_filter.clone()));
            let mut join = HashJoinOp::inner(x(), 0, li, 0);
            let out = collect(&mut join);
            project_concat(&out, 5, 6)
        }
        QueryVariant::PatchIndex | QueryVariant::PatchIndexZbp => {
            let index = index.expect("PatchIndex variant needs the NSC index");
            let cell = buffer_subtree(x());
            let mut root = pi_lineitem_join(
                db,
                index,
                &cell,
                0,
                l_cols.clone(),
                Some(l_filter.clone()),
                variant == QueryVariant::PatchIndexZbp,
            );
            let out = collect(root.as_mut());
            let out = normalize_pi_layout(&out, 6, l_cols.len() + 1);
            // Drop the internal rid column: uniform 11-column layout.
            out.project(&(0..11).collect::<Vec<_>>())
        }
        QueryVariant::JoinIdx => {
            let ji = ji.expect("JoinIdx variant needs the JoinIndex");
            q7_joinindex_join(db, ji, &l_cols, &l_filter)
        }
    };
    // joined: 0 o_orderkey 1 o_custkey 2 c_custkey 3 c_nationkey 4 n2_key
    // 5 cust_nation 6 l_orderkey 7 l_suppkey 8 price 9 discount 10 shipdate
    let mut supp_join = HashJoinOp::inner(
        supp_nation(),
        0,
        Box::new(pi_exec::BatchSource::single(joined)),
        7,
    );
    let out = collect(&mut supp_join);
    // [prev(0..11), s_suppkey(11), s_nationkey(12), n1_key(13), supp_nation(14)]
    if out.is_empty() {
        return Batch::default();
    }
    let pair_filter = Expr::col(14)
        .eq(fr.clone())
        .and(Expr::col(5).eq(de.clone()))
        .or(Expr::col(14).eq(de).and(Expr::col(5).eq(fr)));
    let mut filt = FilterOp::new(Box::new(pi_exec::BatchSource::single(out)), pair_filter);
    let mut proj = ProjectOp::new(
        Box::new(take_op(&mut filt)),
        vec![
            Expr::col(14),                                           // supp_nation
            Expr::col(5),                                            // cust_nation
            Expr::Year(Box::new(Expr::col(10))),                     // l_year
            Expr::col(8).mul(Expr::LitFloat(1.0).sub(Expr::col(9))), // volume
        ],
    );
    let mut agg = HashAggOp::new(
        Box::new(take_op(&mut proj)),
        vec![0, 1, 2],
        vec![AggSpec::sum(Expr::col(3))],
    );
    let mut sort = SortOp::new(
        Box::new(take_op(&mut agg)),
        vec![
            (0, SortOrder::Asc),
            (1, SortOrder::Asc),
            (2, SortOrder::Asc),
        ],
    );
    collect(&mut sort)
}

/// Q7's lineitem⋈orders through the JoinIndex, producing the same
/// `[x(0..6), l(6..)]` layout as the join variants (the cust/nation columns
/// are joined afterwards like the reference plan would).
fn q7_joinindex_join(db: &TpchDb, ji: &JoinIndex, l_cols: &[usize], l_filter: &Expr) -> Batch {
    let mut pieces: Vec<Batch> = Vec::new();
    for pid in 0..db.lineitem.partition_count() {
        let part = db.lineitem.partition(pid);
        let mut scan = ScanOp::new(part, l_cols.to_vec(), true);
        let mut filt = FilterOp::new(Box::new(take_op(&mut scan)), l_filter.clone());
        let out = collect(&mut filt);
        if out.is_empty() {
            continue;
        }
        let rids: Vec<usize> = out.column(5).as_int().iter().map(|&r| r as usize).collect();
        let ocols = ji.gather_dim(&db.orders, pid, &rids, &[cols::O_ORDERKEY, cols::O_CUSTKEY]);
        let mut columns = out.into_columns();
        columns.truncate(5);
        let mut ordered = ocols;
        ordered.extend(columns);
        pieces.push(Batch::new(ordered));
    }
    // [o_orderkey, o_custkey, l(2..7)] -> join customers to reach the X layout.
    let combined = Batch::concat(&pieces);
    let n_dict = db.nation.dict(cols::N_NAME).unwrap();
    let pair = Expr::col(1)
        .eq(Expr::lit_str(n_dict, "FRANCE"))
        .or(Expr::col(1).eq(Expr::lit_str(n_dict, "GERMANY")));
    let nation_f = scan_all(
        &db.nation,
        vec![cols::N_NATIONKEY, cols::N_NAME],
        Some(pair),
    );
    let cust: OpRef<'_> = Box::new(HashJoinOp::inner(
        nation_f,
        0,
        scan_all(&db.customer, vec![cols::C_CUSTKEY, cols::C_NATIONKEY], None),
        1,
    ));
    let mut join = HashJoinOp::inner(cust, 0, Box::new(pi_exec::BatchSource::single(combined)), 1);
    let out = collect(&mut join);
    // [o_orderkey, o_custkey, l(2..7), c_custkey, c_nationkey, n_key, n_name]
    // Reorder into the uniform [x(0..6), l(6..11)] layout.
    let order: Vec<usize> = vec![0, 1, 7, 8, 9, 10, 2, 3, 4, 5, 6];
    out.project(&order)
}

/// TPC-H Q12 (shipping modes and order priority).
pub fn q12(
    db: &TpchDb,
    variant: QueryVariant,
    index: Option<&PatchIndex>,
    ji: Option<&JoinIndex>,
) -> Batch {
    let mode_dict = db.lineitem.dict(cols::L_SHIPMODE).unwrap();
    let mail = mode_dict.write().encode("MAIL") as i64;
    let ship = mode_dict.write().encode("SHIP") as i64;
    let recv_lo = date(1994, 1, 1);
    let recv_hi = date(1995, 1, 1);
    let l_cols = vec![
        cols::L_ORDERKEY,
        cols::L_SHIPMODE,
        cols::L_COMMITDATE,
        cols::L_RECEIPTDATE,
        cols::L_SHIPDATE,
    ];
    let l_filter = Expr::InInts(Box::new(Expr::col(1)), vec![mail, ship])
        .and(Expr::col(2).lt(Expr::col(3)))
        .and(Expr::col(4).lt(Expr::col(2)))
        .and(Expr::col(3).ge(Expr::LitInt(recv_lo)))
        .and(Expr::col(3).lt(Expr::LitInt(recv_hi)));
    let o_cols = vec![cols::O_ORDERKEY, cols::O_ORDERPRIORITY];

    // Normalized layout: [o_orderkey, o_orderpriority, l(2..)].
    let joined: Batch = match variant {
        QueryVariant::Reference => {
            // Build on the (selective) filtered lineitem, probe orders.
            let li = scan_all(&db.lineitem, l_cols.clone(), Some(l_filter.clone()));
            let mut join = HashJoinOp::inner(li, 0, scan_all(&db.orders, o_cols.clone(), None), 0);
            collect(&mut join)
        }
        QueryVariant::PatchIndex | QueryVariant::PatchIndexZbp => {
            let index = index.expect("PatchIndex variant needs the NSC index");
            let cell = buffer_subtree(scan_all(&db.orders, o_cols.clone(), None));
            let mut root = pi_lineitem_join(
                db,
                index,
                &cell,
                0,
                l_cols.clone(),
                Some(l_filter.clone()),
                variant == QueryVariant::PatchIndexZbp,
            );
            collect(root.as_mut())
        }
        QueryVariant::JoinIdx => {
            let ji = ji.expect("JoinIdx variant needs the JoinIndex");
            let mut pieces: Vec<Batch> = Vec::new();
            for pid in 0..db.lineitem.partition_count() {
                let part = db.lineitem.partition(pid);
                let mut scan = ScanOp::new(part, l_cols.clone(), true);
                let mut filt = FilterOp::new(Box::new(take_op(&mut scan)), l_filter.clone());
                let out = collect(&mut filt);
                if out.is_empty() {
                    continue;
                }
                let rids: Vec<usize> = out.column(5).as_int().iter().map(|&r| r as usize).collect();
                let ocols = ji.gather_dim(
                    &db.orders,
                    pid,
                    &rids,
                    &[cols::O_ORDERKEY, cols::O_ORDERPRIORITY],
                );
                let mut columns = ocols;
                columns.extend(out.into_columns());
                pieces.push(Batch::new(columns));
            }
            Batch::concat(&pieces)
        }
    };
    if joined.is_empty() {
        return Batch::default();
    }
    // All variants produce an o-first layout: the Reference plan probes
    // orders ([probe o(0..2), build l(2..7)]), the PatchIndex flows emit
    // [X=o(0..2), l(2..)], and the JoinIndex gather prepends the o columns.
    let (prio_col, mode_col) = (1, 3);
    let prio_dict = db.orders.dict(cols::O_ORDERPRIORITY).unwrap();
    let urgent = prio_dict.write().encode("1-URGENT") as i64;
    let high = prio_dict.write().encode("2-HIGH") as i64;
    let high_pred = Expr::InInts(Box::new(Expr::col(prio_col)), vec![urgent, high]);
    let projected = Batch::new(vec![
        joined.column(mode_col).clone(),
        high_pred.eval(&joined),
    ]);
    let mut agg = HashAggOp::new(
        Box::new(pi_exec::BatchSource::single(projected)),
        vec![0],
        vec![
            AggSpec::count_if(Expr::col(1).eq(Expr::LitInt(1))),
            AggSpec::count_if(Expr::col(1).eq(Expr::LitInt(0))),
        ],
    );
    let mut sort = SortOp::new(Box::new(take_op(&mut agg)), vec![(0, SortOrder::Asc)]);
    collect(&mut sort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchSpec};
    use patchindex::{Constraint, Design, SortDir};

    fn setup(e: f64) -> (TpchDb, PatchIndex, JoinIndex) {
        let db = generate(&TpchSpec::new(0.002, e));
        let pi = PatchIndex::create(
            &db.lineitem,
            cols::L_ORDERKEY,
            Constraint::NearlySorted(SortDir::Asc),
            Design::Bitmap,
        );
        let ji = JoinIndex::create(&db.lineitem, cols::L_ORDERKEY, &db.orders, cols::O_ORDERKEY);
        (db, pi, ji)
    }

    /// Sorts rows into a canonical multiset representation for comparison
    /// (revenue sums may differ in the last float bits between join
    /// orders).
    fn canonical(b: &Batch) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..b.len())
            .map(|i| {
                (0..b.width())
                    .map(|c| match b.column(c) {
                        pi_storage::ColumnData::Float(v) => format!("{:.3}", v[i]),
                        col => col.value(i).to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    }

    fn check_all_variants(
        q: impl Fn(&TpchDb, QueryVariant, Option<&PatchIndex>, Option<&JoinIndex>) -> Batch,
        e: f64,
    ) {
        let (db, pi, ji) = setup(e);
        let reference = q(&db, QueryVariant::Reference, None, None);
        assert!(!reference.is_empty(), "reference result empty — weak test");
        for variant in [
            QueryVariant::PatchIndex,
            QueryVariant::PatchIndexZbp,
            QueryVariant::JoinIdx,
        ] {
            let got = q(&db, variant, Some(&pi), Some(&ji));
            assert_eq!(
                canonical(&got),
                canonical(&reference),
                "variant {variant:?} e={e}"
            );
        }
    }

    #[test]
    fn q3_variants_agree_clean() {
        check_all_variants(q3, 0.0);
    }

    #[test]
    fn q3_variants_agree_10pct() {
        check_all_variants(q3, 0.10);
    }

    #[test]
    fn q7_variants_agree_clean() {
        check_all_variants(q7, 0.0);
    }

    #[test]
    fn q7_variants_agree_5pct() {
        check_all_variants(q7, 0.05);
    }

    #[test]
    fn q12_variants_agree_clean() {
        check_all_variants(q12, 0.0);
    }

    #[test]
    fn q12_variants_agree_10pct() {
        check_all_variants(q12, 0.10);
    }

    #[test]
    fn q3_returns_at_most_ten_rows() {
        let (db, _, _) = setup(0.0);
        let out = q3(&db, QueryVariant::Reference, None, None);
        assert!(out.len() <= 10);
        // Sorted by revenue descending.
        let rev = out.column(3).as_float();
        assert!(rev.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q7_groups_cover_both_nation_directions() {
        let (db, _, _) = setup(0.0);
        let out = q7(&db, QueryVariant::Reference, None, None);
        assert!(!out.is_empty());
        // supp_nation != cust_nation in every group.
        for i in 0..out.len() {
            assert_ne!(out.column(0).value(i), out.column(1).value(i));
        }
    }

    #[test]
    fn q12_counts_split_by_priority() {
        let (db, _, _) = setup(0.0);
        let out = q12(&db, QueryVariant::Reference, None, None);
        assert_eq!(out.len(), 2); // MAIL and SHIP
        let total: i64 =
            out.column(1).as_int().iter().sum::<i64>() + out.column(2).as_int().iter().sum::<i64>();
        assert!(total > 0);
    }
}
