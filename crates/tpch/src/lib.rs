//! # pi-tpch — TPC-H substrate for Figure 10
//!
//! A scaled dbgen-equivalent [`gen`]erator for the Q3/Q7/Q12 subset, with
//! the paper's lineitem order perturbation (0% / 5% / 10% NSC exceptions),
//! RF1/RF2-style refresh sets, and the four hand-lowered plan variants per
//! query in [`queries`] (reference hash joins, PatchIndex merge-join
//! rewrite, PatchIndex + zero-branch pruning, JoinIndex).

#![warn(missing_docs)]

pub mod gen;
pub mod queries;

pub use gen::{cols, generate, TpchDb, TpchSpec};
pub use queries::{q12, q3, q7, QueryVariant};
