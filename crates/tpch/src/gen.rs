//! Scaled dbgen-equivalent TPC-H generator (paper, Section 6.3).
//!
//! Generates the tables the Q3/Q7/Q12 subset touches, with the paper's
//! data-order manipulation: `lineitem` is produced sorted by `l_orderkey`
//! (a perfect sorting constraint) and a chosen fraction of rows is then
//! relocated to random positions, yielding the 0% / 5% / 10% NSC-exception
//! datasets of Figure 10. Refresh sets mirror TPC-H RF1 (insert orders +
//! lineitems) and RF2 (delete by orderkey).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pi_storage::{date, ColumnData, DataType, Field, Partitioning, Schema, Table, Value};

/// Column indices of the generated tables (schema constants).
pub mod cols {
    /// nation: key.
    pub const N_NATIONKEY: usize = 0;
    /// nation: name.
    pub const N_NAME: usize = 1;
    /// supplier: key.
    pub const S_SUPPKEY: usize = 0;
    /// supplier: nation FK.
    pub const S_NATIONKEY: usize = 1;
    /// customer: key.
    pub const C_CUSTKEY: usize = 0;
    /// customer: market segment.
    pub const C_MKTSEGMENT: usize = 1;
    /// customer: nation FK.
    pub const C_NATIONKEY: usize = 2;
    /// orders: key (sorted).
    pub const O_ORDERKEY: usize = 0;
    /// orders: customer FK.
    pub const O_CUSTKEY: usize = 1;
    /// orders: order date.
    pub const O_ORDERDATE: usize = 2;
    /// orders: ship priority.
    pub const O_SHIPPRIORITY: usize = 3;
    /// orders: order priority string.
    pub const O_ORDERPRIORITY: usize = 4;
    /// lineitem: order FK (nearly sorted).
    pub const L_ORDERKEY: usize = 0;
    /// lineitem: supplier FK.
    pub const L_SUPPKEY: usize = 1;
    /// lineitem: extended price.
    pub const L_EXTENDEDPRICE: usize = 2;
    /// lineitem: discount.
    pub const L_DISCOUNT: usize = 3;
    /// lineitem: ship date.
    pub const L_SHIPDATE: usize = 4;
    /// lineitem: commit date.
    pub const L_COMMITDATE: usize = 5;
    /// lineitem: receipt date.
    pub const L_RECEIPTDATE: usize = 6;
    /// lineitem: ship mode.
    pub const L_SHIPMODE: usize = 7;
}

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TpchSpec {
    /// Scale factor (paper: 1000; default here is laptop scale).
    pub sf: f64,
    /// Partitions of `lineitem` (other tables use one partition).
    pub lineitem_partitions: usize,
    /// Fraction of lineitem rows relocated to break the orderkey sorting
    /// (the paper's 0% / 5% / 10% datasets).
    pub exception_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpchSpec {
    /// Spec with the given scale factor and exception rate.
    pub fn new(sf: f64, exception_rate: f64) -> Self {
        TpchSpec {
            sf,
            lineitem_partitions: 2,
            exception_rate,
            seed: 0x7269_7065,
        }
    }
}

/// The generated database.
pub struct TpchDb {
    /// nation(n_nationkey, n_name).
    pub nation: Table,
    /// supplier(s_suppkey, s_nationkey).
    pub supplier: Table,
    /// customer(c_custkey, c_mktsegment, c_nationkey).
    pub customer: Table,
    /// orders(o_orderkey, o_custkey, o_orderdate, o_shippriority, o_orderpriority),
    /// sorted by o_orderkey.
    pub orders: Table,
    /// lineitem(l_orderkey, …), nearly sorted by l_orderkey.
    pub lineitem: Table,
    /// Row counts at generation time (orders, lineitem).
    pub counts: (usize, usize),
    next_orderkey: i64,
    spec: TpchSpec,
}

fn single_part(name: &str, schema: Schema) -> Table {
    Table::new(name, schema, 1, Partitioning::RoundRobin)
}

/// Generates the database.
pub fn generate(spec: &TpchSpec) -> TpchDb {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n_customers = ((150_000.0 * spec.sf) as usize).max(50);
    let n_orders = n_customers * 10;
    let n_suppliers = ((10_000.0 * spec.sf) as usize).max(10);

    // nation
    let mut nation = single_part(
        "nation",
        Schema::new(vec![
            Field::new("n_nationkey", DataType::Int),
            Field::new("n_name", DataType::Str),
        ]),
    );
    let names = nation.encode_strings(cols::N_NAME, &NATIONS);
    nation.load_partition(0, &[ColumnData::Int((0..25).collect()), names]);

    // supplier
    let mut supplier = single_part(
        "supplier",
        Schema::new(vec![
            Field::new("s_suppkey", DataType::Int),
            Field::new("s_nationkey", DataType::Int),
        ]),
    );
    supplier.load_partition(
        0,
        &[
            ColumnData::Int((1..=n_suppliers as i64).collect()),
            ColumnData::Int((0..n_suppliers).map(|_| rng.gen_range(0..25)).collect()),
        ],
    );

    // customer
    let mut customer = single_part(
        "customer",
        Schema::new(vec![
            Field::new("c_custkey", DataType::Int),
            Field::new("c_mktsegment", DataType::Str),
            Field::new("c_nationkey", DataType::Int),
        ]),
    );
    let segs: Vec<&str> = (0..n_customers)
        .map(|_| SEGMENTS[rng.gen_range(0..5)])
        .collect();
    let segs = customer.encode_strings(cols::C_MKTSEGMENT, &segs);
    customer.load_partition(
        0,
        &[
            ColumnData::Int((1..=n_customers as i64).collect()),
            segs,
            ColumnData::Int((0..n_customers).map(|_| rng.gen_range(0..25)).collect()),
        ],
    );

    // orders, sorted by o_orderkey
    let mut orders = single_part(
        "orders",
        Schema::new(vec![
            Field::new("o_orderkey", DataType::Int),
            Field::new("o_custkey", DataType::Int),
            Field::new("o_orderdate", DataType::Date),
            Field::new("o_shippriority", DataType::Int),
            Field::new("o_orderpriority", DataType::Str),
        ]),
    );
    let date_lo = date(1992, 1, 1);
    let date_hi = date(1998, 8, 2);
    let orderdates: Vec<i64> = (0..n_orders)
        .map(|_| rng.gen_range(date_lo..date_hi))
        .collect();
    let prios: Vec<&str> = (0..n_orders)
        .map(|_| PRIORITIES[rng.gen_range(0..5)])
        .collect();
    let prios = orders.encode_strings(cols::O_ORDERPRIORITY, &prios);
    orders.load_partition(
        0,
        &[
            ColumnData::Int((1..=n_orders as i64).collect()),
            ColumnData::Int(
                (0..n_orders)
                    .map(|_| rng.gen_range(1..=n_customers as i64))
                    .collect(),
            ),
            ColumnData::Int(orderdates.clone()),
            ColumnData::Int(vec![0; n_orders]),
            prios,
        ],
    );

    // lineitem: 1..=7 lines per order, generated in orderkey order, then
    // perturbed to plant sorting exceptions.
    let mut l_orderkey: Vec<i64> = Vec::new();
    let mut l_suppkey: Vec<i64> = Vec::new();
    let mut l_price: Vec<f64> = Vec::new();
    let mut l_discount: Vec<f64> = Vec::new();
    let mut l_ship: Vec<i64> = Vec::new();
    let mut l_commit: Vec<i64> = Vec::new();
    let mut l_receipt: Vec<i64> = Vec::new();
    let mut l_mode: Vec<&str> = Vec::new();
    for ok in 1..=n_orders {
        let odate = orderdates[ok - 1];
        for _ in 0..rng.gen_range(1..=7) {
            l_orderkey.push(ok as i64);
            l_suppkey.push(rng.gen_range(1..=n_suppliers as i64));
            l_price.push(rng.gen_range(900.0..105_000.0));
            l_discount.push(rng.gen_range(0.0..0.1));
            let ship = odate + rng.gen_range(1..=121);
            let commit = odate + rng.gen_range(30..=90);
            l_ship.push(ship);
            l_commit.push(commit);
            l_receipt.push(ship + rng.gen_range(1..=30));
            l_mode.push(SHIPMODES[rng.gen_range(0..7)]);
        }
    }
    let n_lines = l_orderkey.len();
    // Data-order manipulation: relocate a fraction of rows.
    let perm = perturbation(n_lines, spec.exception_rate, &mut rng);
    let apply = |v: &mut Vec<i64>| {
        let old = std::mem::take(v);
        *v = perm.iter().map(|&i| old[i]).collect();
    };
    let apply_f = |v: &mut Vec<f64>| {
        let old = std::mem::take(v);
        *v = perm.iter().map(|&i| old[i]).collect();
    };
    apply(&mut l_orderkey);
    apply(&mut l_suppkey);
    apply_f(&mut l_price);
    apply_f(&mut l_discount);
    apply(&mut l_ship);
    apply(&mut l_commit);
    apply(&mut l_receipt);
    let l_mode: Vec<&str> = perm.iter().map(|&i| l_mode[i]).collect();

    let nparts = spec.lineitem_partitions.max(1);
    let mut lineitem = Table::new(
        "lineitem",
        Schema::new(vec![
            Field::new("l_orderkey", DataType::Int),
            Field::new("l_suppkey", DataType::Int),
            Field::new("l_extendedprice", DataType::Float),
            Field::new("l_discount", DataType::Float),
            Field::new("l_shipdate", DataType::Date),
            Field::new("l_commitdate", DataType::Date),
            Field::new("l_receiptdate", DataType::Date),
            Field::new("l_shipmode", DataType::Str),
        ]),
        nparts,
        Partitioning::RoundRobin,
    );
    let per_part = n_lines.div_ceil(nparts);
    for pid in 0..nparts {
        let s = pid * per_part;
        let e = ((pid + 1) * per_part).min(n_lines);
        if s >= e {
            continue;
        }
        let modes = lineitem.encode_strings(cols::L_SHIPMODE, &l_mode[s..e]);
        lineitem.load_partition(
            pid,
            &[
                ColumnData::Int(l_orderkey[s..e].to_vec()),
                ColumnData::Int(l_suppkey[s..e].to_vec()),
                ColumnData::Float(l_price[s..e].to_vec()),
                ColumnData::Float(l_discount[s..e].to_vec()),
                ColumnData::Int(l_ship[s..e].to_vec()),
                ColumnData::Int(l_commit[s..e].to_vec()),
                ColumnData::Int(l_receipt[s..e].to_vec()),
                modes,
            ],
        );
    }
    for t in [
        &mut nation,
        &mut supplier,
        &mut customer,
        &mut orders,
        &mut lineitem,
    ] {
        t.propagate_all();
    }
    TpchDb {
        nation,
        supplier,
        customer,
        orders,
        lineitem,
        counts: (n_orders, n_lines),
        next_orderkey: n_orders as i64 + 1,
        spec: spec.clone(),
    }
}

/// Produces a permutation that relocates `rate * n` random rows to random
/// positions, leaving the rest in their original relative (sorted) order.
fn perturbation(n: usize, rate: f64, rng: &mut SmallRng) -> Vec<usize> {
    let k = ((n as f64) * rate).round() as usize;
    if k == 0 {
        return (0..n).collect();
    }
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    let moved: Vec<usize> = all[..k].to_vec();
    let is_moved = {
        let mut v = vec![false; n];
        moved.iter().for_each(|&i| v[i] = true);
        v
    };
    // Stable remainder, moved rows spliced at random slots.
    let keep: Vec<usize> = (0..n).filter(|&i| !is_moved[i]).collect();
    let mut out = keep;
    for &m in &moved {
        let pos = rng.gen_range(0..=out.len());
        out.insert(pos, m);
    }
    out
}

impl TpchDb {
    /// The spec this database was generated with.
    pub fn spec(&self) -> &TpchSpec {
        &self.spec
    }

    /// RF1-style refresh: generates `n_orders` new orders with 1–7 lines
    /// each, returning `(order rows, lineitem rows)` ready for insertion.
    pub fn refresh_insert_rows(&mut self, n_orders: usize) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
        let mut rng = SmallRng::seed_from_u64(self.spec.seed ^ self.next_orderkey as u64);
        let n_customers = self.customer.visible_len() as i64;
        let n_suppliers = self.supplier.visible_len() as i64;
        let date_lo = date(1995, 1, 1);
        let mut orows = Vec::new();
        let mut lrows = Vec::new();
        for _ in 0..n_orders {
            let ok = self.next_orderkey;
            self.next_orderkey += 1;
            let odate = date_lo + rng.gen_range(0..1000);
            orows.push(vec![
                Value::Int(ok),
                Value::Int(rng.gen_range(1..=n_customers)),
                Value::Int(odate),
                Value::Int(0),
                Value::from(PRIORITIES[rng.gen_range(0..5)]),
            ]);
            for _ in 0..rng.gen_range(1..=7) {
                let ship = odate + rng.gen_range(1..=121);
                lrows.push(vec![
                    Value::Int(ok),
                    Value::Int(rng.gen_range(1..=n_suppliers)),
                    Value::Float(rng.gen_range(900.0..105_000.0)),
                    Value::Float(rng.gen_range(0.0..0.1)),
                    Value::Int(ship),
                    Value::Int(odate + rng.gen_range(30..=90)),
                    Value::Int(ship + rng.gen_range(1..=30)),
                    Value::from(SHIPMODES[rng.gen_range(0..7)]),
                ]);
            }
        }
        (orows, lrows)
    }

    /// RF2-style refresh: the lineitem rowIDs (per partition) of the lines
    /// belonging to `n_orders` random existing orders.
    pub fn refresh_delete_rids(&self, n_orders: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let max_ok = self.counts.0 as i64;
        let targets: pi_exec::hash::IntSet = {
            let mut s = pi_exec::hash::int_set();
            while s.len() < n_orders.min(self.counts.0) {
                s.insert(rng.gen_range(1..=max_ok));
            }
            s
        };
        (0..self.lineitem.partition_count())
            .map(|pid| {
                let p = self.lineitem.partition(pid);
                let keys = p.read_range(&[cols::L_ORDERKEY], 0, p.visible_len());
                keys[0]
                    .as_int()
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| targets.contains(k))
                    .map(|(rid, _)| rid)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchindex::discovery::{discover_values, partition_column_values};
    use patchindex::{Constraint, SortDir};

    fn small(e: f64) -> TpchDb {
        generate(&TpchSpec::new(0.002, e))
    }

    #[test]
    fn row_counts_scale() {
        let db = small(0.0);
        assert_eq!(db.customer.visible_len(), 300);
        assert_eq!(db.orders.visible_len(), 3_000);
        let lines = db.lineitem.visible_len();
        assert!((3_000..=21_000).contains(&lines), "lines {lines}");
    }

    #[test]
    fn zero_rate_lineitem_is_sorted_per_partition() {
        let db = small(0.0);
        for pid in 0..db.lineitem.partition_count() {
            let keys = partition_column_values(db.lineitem.partition(pid), cols::L_ORDERKEY);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "partition {pid}");
        }
    }

    #[test]
    fn perturbation_plants_requested_exception_rate() {
        for e in [0.05, 0.10] {
            let db = small(e);
            let mut patches = 0usize;
            let mut rows = 0usize;
            for pid in 0..db.lineitem.partition_count() {
                let keys = partition_column_values(db.lineitem.partition(pid), cols::L_ORDERKEY);
                let r = discover_values(&keys, Constraint::NearlySorted(SortDir::Asc));
                patches += r.patches.len();
                rows += keys.len();
            }
            let got = patches as f64 / rows as f64;
            assert!(got <= e + 0.01, "e={e} got {got}");
            assert!(got >= e * 0.5, "e={e} got {got}");
        }
    }

    #[test]
    fn orders_sorted_by_orderkey() {
        let db = small(0.05);
        let keys = partition_column_values(db.orders.partition(0), cols::O_ORDERKEY);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn refresh_insert_produces_fresh_orderkeys() {
        let mut db = small(0.0);
        let (orows, lrows) = db.refresh_insert_rows(10);
        assert_eq!(orows.len(), 10);
        assert!(!lrows.is_empty());
        let max_existing = db.counts.0 as i64;
        assert!(orows.iter().all(|r| r[0].as_int() > max_existing));
    }

    #[test]
    fn refresh_delete_targets_existing_lines() {
        let db = small(0.0);
        let rids = db.refresh_delete_rids(20, 1);
        let total: usize = rids.iter().map(|r| r.len()).sum();
        assert!(total >= 20, "deleted lines {total}");
        for (pid, part_rids) in rids.iter().enumerate() {
            let len = db.lineitem.partition(pid).visible_len();
            assert!(part_rids.iter().all(|&r| r < len));
        }
    }

    #[test]
    fn generation_deterministic() {
        let a = small(0.05);
        let b = small(0.05);
        assert_eq!(
            partition_column_values(a.lineitem.partition(0), 0),
            partition_column_values(b.lineitem.partition(0), 0)
        );
    }
}
