//! The advisor loop: observe an [`IndexedTable`], decide, act.

use std::collections::HashMap;
use std::sync::Arc;

use patchindex::stats::{pi_bitmap_bytes, pi_identifier_bytes, preferred_design};
use patchindex::{
    Constraint, Design, IndexCatalog, IndexStats, IndexedTable, PartitionStats, QueryFeedback,
    QueryShape, SortDir,
};
use pi_exec::ops::sort::SortOrder;
use pi_obs::{Counter, Cumulative, MetricsRegistry, Windowed};
use pi_planner::{cost, rewrite, Plan};

use crate::policy::{
    decide, AdvisorConfig, CandidateObservation, Decision, DropReason, IndexObservation,
    Observation,
};

/// What one advisor step actually did (the executed counterpart of a
/// [`Decision`], with post-action facts filled in).
#[derive(Debug, Clone)]
pub enum AdvisorAction {
    /// An index was created.
    Created {
        /// Slot the new index landed in.
        slot: usize,
        /// Indexed column.
        column: usize,
        /// Materialized constraint.
        constraint: Constraint,
        /// Chosen physical design (memory-model crossover).
        design: Design,
        /// Sampled match fraction that justified the creation.
        sampled_e: f64,
        /// Actual match fraction the full discovery found.
        discovered_e: f64,
    },
    /// An index was recomputed.
    Recomputed {
        /// Slot of the recomputed index.
        slot: usize,
        /// Match fraction before the recompute (drifted).
        e_before: f64,
        /// Match fraction after (restored).
        e_after: f64,
        /// The create-time value it had drifted away from.
        baseline_e: f64,
        /// Physical design before the recompute.
        design_before: Design,
        /// Design the rebuild chose from the fresh exception rate — the
        /// recompute migrates designs when drift carried the rate across
        /// the Table-3 crossover.
        design_after: Design,
    },
    /// An index was dropped.
    Dropped {
        /// Column the dropped index covered.
        column: usize,
        /// Its constraint.
        constraint: Constraint,
        /// Which rule fired.
        reason: DropReason,
        /// Windowed maintenance cost at decision time.
        maintenance_cost: f64,
        /// Windowed query benefit at decision time.
        query_benefit: f64,
    },
}

impl AdvisorAction {
    /// One-line human-readable summary (examples and the reproduction
    /// harness print these).
    pub fn describe(&self) -> String {
        match self {
            AdvisorAction::Created {
                slot,
                column,
                constraint,
                design,
                sampled_e,
                discovered_e,
            } => {
                format!(
                    "create {} ({design:?}) on col {column} -> slot {slot} \
                     [sampled e {sampled_e:.3}, discovered e {discovered_e:.3}]",
                    constraint.name()
                )
            }
            AdvisorAction::Recomputed {
                slot,
                e_before,
                e_after,
                baseline_e,
                design_before,
                design_after,
            } => {
                let migration = if design_before == design_after {
                    String::new()
                } else {
                    format!(", design {design_before:?} -> {design_after:?}")
                };
                format!(
                    "recompute slot {slot} [e {e_before:.3} -> {e_after:.3}, \
                     create-time {baseline_e:.3}{migration}]"
                )
            }
            AdvisorAction::Dropped {
                column,
                constraint,
                reason,
                maintenance_cost,
                query_benefit,
            } => {
                format!(
                    "drop {} on col {column} ({reason:?}) \
                     [window maintenance {maintenance_cost:.0} vs benefit {query_benefit:.0}]",
                    constraint.name()
                )
            }
        }
    }
}

/// The cumulative per-index counters the advisor windows over:
/// maintenance plus query feedback, as one [`Cumulative`] bundle so a
/// single [`Windowed`] tracks all four in lockstep.
#[derive(Debug, Default, Clone, Copy)]
struct FeedbackTotals {
    maintained: u64,
    saved: f64,
    actual_micros: f64,
    est_cost_executed: f64,
}

impl Cumulative for FeedbackTotals {
    fn delta(&self, earlier: &Self) -> Self {
        FeedbackTotals {
            maintained: self.maintained.saturating_sub(earlier.maintained),
            saved: self.saved - earlier.saved,
            actual_micros: self.actual_micros - earlier.actual_micros,
            est_cost_executed: self.est_cost_executed - earlier.est_cost_executed,
        }
    }
    fn accumulate(&mut self, sample: &Self) {
        self.maintained += sample.maintained;
        self.saved += sample.saved;
        self.actual_micros += sample.actual_micros;
        self.est_cost_executed += sample.est_cost_executed;
    }
}

/// Pre-registered handles for the advisor's action counters.
#[derive(Debug)]
struct AdvisorMetrics {
    steps: Arc<Counter>,
    created: Arc<Counter>,
    recomputed: Arc<Counter>,
    dropped: Arc<Counter>,
}

impl AdvisorMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        AdvisorMetrics {
            steps: registry.counter("advisor.steps"),
            created: registry.counter("advisor.created"),
            recomputed: registry.counter("advisor.recomputed"),
            dropped: registry.counter("advisor.dropped"),
        }
    }
}

/// The self-tuning index-lifecycle advisor.
///
/// One [`Advisor::step`] runs the whole observe → decide → act loop:
/// flush deferred maintenance (so counters are exact), snapshot every
/// index's error/drift/feedback state and every queried column's sampled
/// match fractions, apply the [`decide`] rules, and execute the
/// resulting create/recompute/drop actions through the table.
#[derive(Debug, Default)]
pub struct Advisor {
    cfg: AdvisorConfig,
    windows: HashMap<(usize, Constraint), Windowed<FeedbackTotals>>,
    /// Per-(column, shape) sliding window over query-log deltas: the
    /// create rule demands *recent* query evidence, so a dropped index
    /// is not immediately re-created from stale cumulative counts.
    query_windows: HashMap<(usize, QueryShape), Windowed<u64>>,
    last_step_statements: u64,
    metrics: Option<AdvisorMetrics>,
}

impl Advisor {
    /// An advisor with the given configuration.
    pub fn new(cfg: AdvisorConfig) -> Self {
        Advisor {
            cfg,
            ..Advisor::default()
        }
    }

    /// An advisor that reports its activity (`advisor.steps`,
    /// `advisor.created`, `advisor.recomputed`, `advisor.dropped`) to a
    /// metrics registry.
    pub fn with_metrics(cfg: AdvisorConfig, registry: &MetricsRegistry) -> Self {
        Advisor {
            metrics: Some(AdvisorMetrics::new(registry)),
            ..Advisor::new(cfg)
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.cfg
    }

    /// Replaces the patch-memory budget for subsequent steps. This is
    /// the multi-tenant hook: a coordinator owning several advisors (one
    /// per shard) re-divides one global budget by observed benefit
    /// ([`crate::split_budget`]) and pushes each share down here.
    pub fn set_memory_budget(&mut self, bytes: usize) {
        self.cfg.memory_budget_bytes = bytes;
    }

    /// Runs one step if at least `step_every` statements were applied
    /// since the last one — the cadence used when the advisor is
    /// piggybacked on the update path (see [`AdvisedTable`]).
    pub fn maybe_step(&mut self, it: &mut IndexedTable) -> Vec<AdvisorAction> {
        if it.statements() - self.last_step_statements < self.cfg.step_every {
            return Vec::new();
        }
        self.step(it)
    }

    /// Runs one advisor cycle against the snapshot/writer split of
    /// [`patchindex::snapshot`]: reader-reported workload evidence is
    /// absorbed from the sink first, the observe → decide → act loop runs
    /// against the writer's staging state (create / recompute / drop all
    /// execute off the read path), and the result is published as a new
    /// epoch — concurrent readers keep querying their snapshots the whole
    /// time and pick the advised state up at their next snapshot pull.
    pub fn step_writer(&mut self, writer: &mut patchindex::TableWriter) -> Vec<AdvisorAction> {
        writer.absorb_feedback();
        let actions = self.step(writer.staging_mut());
        writer.publish();
        actions
    }

    /// Runs one observe → decide → act cycle and returns the executed
    /// actions.
    pub fn step(&mut self, it: &mut IndexedTable) -> Vec<AdvisorAction> {
        self.last_step_statements = it.statements();
        if let Some(m) = &self.metrics {
            m.steps.inc();
        }
        // Deferred maintenance stays batched: staged rows are already
        // counted as maintained, and the drop/create rules read only
        // counters that are exact while pending. The one rule that needs
        // exactness is recompute — staged rows are *conservatively*
        // patched, so the apparent drift overstates the real one. Flush
        // exactly the indexes whose apparent drift crosses the margin
        // (a real decision is at stake there), leaving the rest staged.
        for slot in 0..it.indexes().len() {
            let idx = it.index(slot);
            if idx.has_pending()
                && idx.baseline().match_fraction - idx.match_fraction() > self.cfg.recompute_margin
            {
                it.flush_index(slot);
            }
        }
        if !it.sampling_enabled() {
            it.enable_discovery_sampling(self.cfg.sample_cap);
        }
        let obs = self.observe(it);
        let decisions = decide(&self.cfg, &obs);
        self.act(it, decisions)
    }

    /// Builds the observation: live index stats with windowed deltas,
    /// plus creation candidates from the query log and the reservoirs.
    fn observe(&mut self, it: &IndexedTable) -> Observation {
        let mut indexes = Vec::new();
        let mut live: Vec<(usize, Constraint)> = Vec::new();
        for (slot, idx) in it.indexes().iter().enumerate() {
            let key = (idx.column(), idx.constraint());
            live.push(key);
            let feedback = idx.query_feedback();
            let totals = FeedbackTotals {
                maintained: idx.maintenance_stats().maintained_rows,
                saved: feedback.est_cost_saved,
                actual_micros: feedback.actual_micros,
                est_cost_executed: feedback.est_cost_executed,
            };
            let window = self.windows.entry(key).or_insert_with(|| {
                // First sight: anchor at the current counters so
                // pre-advisor history does not flood the first window.
                Windowed::anchored(self.cfg.drop_window, totals)
            });
            window.observe(totals);
            let windowed = window.total();
            indexes.push(IndexObservation {
                slot,
                column: idx.column(),
                constraint: idx.constraint(),
                e: idx.match_fraction(),
                baseline_e: idx.baseline().match_fraction,
                memory_bytes: idx.memory_bytes(),
                window_maintained_rows: windowed.maintained,
                window_cost_saved: windowed.saved,
                window_actual_micros: windowed.actual_micros,
                window_est_cost_executed: windowed.est_cost_executed,
                window_full: window.is_full(),
            });
        }
        // Windows of dropped indexes would otherwise linger forever.
        self.windows.retain(|key, _| live.contains(key));

        // Windowed query evidence: deltas of the cumulative log, summed
        // over the same sliding window as the drop rule. The first step
        // counts everything logged so far.
        let mut windowed: Vec<(usize, QueryShape, u64)> = Vec::new();
        for (col, shape, total) in it.query_log().entries() {
            let window = self
                .query_windows
                .entry((col, shape))
                .or_insert_with(|| Windowed::from_zero(self.cfg.drop_window));
            window.observe(total);
            windowed.push((col, shape, window.total()));
        }

        let rows = it.table().visible_len() as u64;
        let mut candidates: Vec<CandidateObservation> = Vec::new();
        for (col, shape, queries) in windowed {
            let options: &[Constraint] = match shape {
                QueryShape::Distinct => &[Constraint::NearlyUnique, Constraint::NearlyConstant],
                QueryShape::Sort(SortDir::Asc) => &[Constraint::NearlySorted(SortDir::Asc)],
                QueryShape::Sort(SortDir::Desc) => &[Constraint::NearlySorted(SortDir::Desc)],
            };
            // Skip columns already served for this shape.
            if it
                .indexes()
                .iter()
                .any(|idx| idx.column() == col && options.contains(&idx.constraint()))
            {
                continue;
            }
            let best = options
                .iter()
                .filter_map(|&c| it.sampled_match(col, c).map(|e| (c, e)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let Some((constraint, sampled_e)) = best else {
                continue;
            };
            let exception_rate = 1.0 - sampled_e;
            let design = preferred_design(exception_rate);
            let projected_bytes = match design {
                Design::Bitmap => pi_bitmap_bytes(rows) as usize,
                Design::Identifier => pi_identifier_bytes(exception_rate, rows) as usize,
            };
            let est_benefit_per_query = hypothetical_benefit(it, col, constraint, sampled_e, shape);
            candidates.push(CandidateObservation {
                column: col,
                constraint,
                design,
                sampled_e,
                queries,
                projected_bytes,
                est_benefit_per_query,
            });
        }
        Observation {
            indexes,
            candidates,
        }
    }

    /// Executes the decisions: recomputes (snapshot slots still valid),
    /// then drops in descending slot order, then creates.
    fn act(&mut self, it: &mut IndexedTable, decisions: Vec<Decision>) -> Vec<AdvisorAction> {
        let mut actions = Vec::new();
        for d in &decisions {
            if let Decision::Recompute {
                slot,
                e,
                baseline_e,
            } = *d
            {
                let design_before = it.index(slot).design();
                it.recompute_index(slot);
                actions.push(AdvisorAction::Recomputed {
                    slot,
                    e_before: e,
                    e_after: it.index(slot).match_fraction(),
                    baseline_e,
                    design_before,
                    design_after: it.index(slot).design(),
                });
            }
        }
        let mut drops: Vec<(usize, DropReason, f64, f64)> = decisions
            .iter()
            .filter_map(|d| match *d {
                Decision::Drop {
                    slot,
                    reason,
                    maintenance_cost,
                    query_benefit,
                } => Some((slot, reason, maintenance_cost, query_benefit)),
                _ => None,
            })
            .collect();
        drops.sort_by_key(|d| std::cmp::Reverse(d.0)); // descending: removal shifts later slots
        for (slot, reason, maintenance_cost, query_benefit) in drops {
            let dropped = it.drop_index(slot);
            self.windows
                .remove(&(dropped.column(), dropped.constraint()));
            actions.push(AdvisorAction::Dropped {
                column: dropped.column(),
                constraint: dropped.constraint(),
                reason,
                maintenance_cost,
                query_benefit,
            });
        }
        for d in decisions {
            if let Decision::Create {
                column,
                constraint,
                design,
                sampled_e,
            } = d
            {
                let slot = it.add_index(column, constraint, design);
                // A fresh index starts its counters at zero, so anchoring
                // at zero and at "current" coincide here.
                self.windows.insert(
                    (column, constraint),
                    Windowed::from_zero(self.cfg.drop_window),
                );
                actions.push(AdvisorAction::Created {
                    slot,
                    column,
                    constraint,
                    design,
                    sampled_e,
                    discovered_e: it.index(slot).match_fraction(),
                });
            }
        }
        if let Some(m) = &self.metrics {
            for a in &actions {
                match a {
                    AdvisorAction::Created { .. } => m.created.inc(),
                    AdvisorAction::Recomputed { .. } => m.recomputed.inc(),
                    AdvisorAction::Dropped { .. } => m.dropped.inc(),
                }
            }
        }
        actions
    }
}

/// Estimated planner cost one rewritten query would save if an index
/// with the sampled match fraction existed on `col` — the candidate's
/// side of the benefit-per-byte ranking, in the same cost units as the
/// engine's feedback. Computed against a hypothetical catalog entry via
/// the real cost model and rewrite rule.
fn hypothetical_benefit(
    it: &IndexedTable,
    col: usize,
    constraint: Constraint,
    sampled_e: f64,
    shape: QueryShape,
) -> f64 {
    let part_rows: Vec<u64> = it
        .table()
        .partitions()
        .iter()
        .map(|p| p.visible_len() as u64)
        .collect();
    let parts: Vec<PartitionStats> = part_rows
        .iter()
        .map(|&rows| PartitionStats {
            rows,
            patches: ((1.0 - sampled_e) * rows as f64).round() as u64,
        })
        .collect();
    let patches: u64 = parts.iter().map(|p| p.patches).sum();
    let entry = IndexStats {
        slot: 0,
        column: col,
        constraint,
        parts,
        patch_distinct: patches / 2,
        pending: false,
        e: sampled_e,
        baseline_e: sampled_e,
        drift_patches: 0,
        maintained_rows: 0,
        memory_bytes: 0,
        global_unique: true,
        feedback: QueryFeedback::default(),
    };
    let cat = IndexCatalog {
        part_rows,
        indexes: vec![entry],
    };
    let reference = match shape {
        QueryShape::Distinct => Plan::Scan {
            cols: vec![col],
            filter: None,
        }
        .distinct(vec![0]),
        QueryShape::Sort(dir) => {
            let order = match dir {
                SortDir::Asc => SortOrder::Asc,
                SortDir::Desc => SortOrder::Desc,
            };
            Plan::Scan {
                cols: vec![col],
                filter: None,
            }
            .sort(vec![(0, order)])
        }
    };
    let rewritten = rewrite(reference.clone(), &cat.indexes[0]);
    (cost::estimate(&reference, &cat) - cost::estimate(&rewritten, &cat)).max(0.0)
}

/// An [`IndexedTable`] with the advisor piggybacked on the update path:
/// every insert/modify/delete funnels through, and once
/// [`AdvisorConfig::step_every`] statements accumulated, the next update
/// triggers an advisor step — the same cadence contract as the
/// `MaintenancePolicy`'s automatic recompute/condense pass, extended to
/// the whole index lifecycle.
pub struct AdvisedTable {
    inner: IndexedTable,
    advisor: Advisor,
    actions: Vec<AdvisorAction>,
}

impl AdvisedTable {
    /// Wraps a table; discovery sampling starts immediately.
    pub fn new(mut inner: IndexedTable, cfg: AdvisorConfig) -> Self {
        if !inner.sampling_enabled() {
            inner.enable_discovery_sampling(cfg.sample_cap);
        }
        AdvisedTable {
            inner,
            advisor: Advisor::new(cfg),
            actions: Vec::new(),
        }
    }

    /// Inserts rows, then possibly steps the advisor.
    pub fn insert(&mut self, rows: &[Vec<pi_storage::Value>]) -> Vec<pi_storage::RowAddr> {
        let addrs = self.inner.insert(rows);
        self.advise();
        addrs
    }

    /// Modifies rows, then possibly steps the advisor.
    pub fn modify(&mut self, pid: usize, rids: &[usize], col: usize, values: &[pi_storage::Value]) {
        self.inner.modify(pid, rids, col, values);
        self.advise();
    }

    /// Deletes rows, then possibly steps the advisor.
    pub fn delete(&mut self, pid: usize, rids: &[usize]) {
        self.inner.delete(pid, rids);
        self.advise();
    }

    fn advise(&mut self) {
        let new = self.advisor.maybe_step(&mut self.inner);
        self.actions.extend(new);
    }

    /// Forces one advisor step now.
    pub fn step(&mut self) -> Vec<AdvisorAction> {
        let new = self.advisor.step(&mut self.inner);
        self.actions.extend(new.iter().cloned());
        new
    }

    /// Every action the advisor took so far, in order.
    pub fn actions(&self) -> &[AdvisorAction] {
        &self.actions
    }

    /// The wrapped table.
    pub fn inner(&self) -> &IndexedTable {
        &self.inner
    }

    /// Mutable access to the wrapped table (updates applied here bypass
    /// the piggyback cadence until the next wrapped statement).
    pub fn inner_mut(&mut self) -> &mut IndexedTable {
        &mut self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> IndexedTable {
        self.inner
    }
}

impl pi_planner::QueryEngine for AdvisedTable {
    fn plan_query(&mut self, plan: &Plan) -> Plan {
        self.inner.plan_query(plan)
    }

    fn query(&mut self, plan: &Plan) -> pi_exec::Batch {
        self.inner.query(plan)
    }

    fn query_count(&mut self, plan: &Plan) -> usize {
        self.inner.query_count(plan)
    }

    fn query_traced(&mut self, plan: &Plan) -> (pi_exec::Batch, pi_obs::QueryTrace) {
        self.inner.query_traced(plan)
    }
}
